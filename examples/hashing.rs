//! Hashing scenario: sizing hash-table buckets.
//!
//! The paper's intro motivates balls-into-bins with hashing: items are
//! balls, buckets are bins, and the maximum load dictates the slot count
//! every bucket must reserve. We compare three designs storing the same
//! key set:
//!
//! 1. classic hashing (one-choice): buckets must be provisioned for the
//!    `Θ(log n / log log n)`-ish maximum;
//! 2. `threshold`-style placement: every bucket provably fits in
//!    `⌈m/n⌉ + 1` slots — at the price of a per-item retry during
//!    construction (cheap: Theorem 4.1);
//! 3. cuckoo hashing (`bib-reloc`): constant worst-case lookup with
//!    reallocations at insert time, the alternative the paper discusses.
//!
//! Run with:
//! ```text
//! cargo run --release --example hashing
//! ```

use balls_into_bins::core::prelude::*;
use balls_into_bins::reloc::{CuckooTable, InsertError};
use balls_into_bins::rng::seed::default_rng;

fn main() {
    let buckets = 65_536usize;
    let items = 4 * buckets as u64; // average bucket load 4
    let cfg = RunConfig::new(buckets, items).with_engine(Engine::Jump);

    println!("{items} keys into {buckets} buckets (avg load 4)\n");

    // --- one-choice vs threshold bucket sizing --------------------------
    println!(
        "{:<18} {:>9} {:>14} {:>16}",
        "scheme", "max", "slots needed", "build samples"
    );
    let one = run_protocol(&OneChoice, &cfg, 1);
    let thr = run_protocol(&Threshold, &cfg, 1);
    for out in [&one, &thr] {
        println!(
            "{:<18} {:>9} {:>14} {:>16}",
            out.protocol,
            out.max_load(),
            out.max_load() as u64 * buckets as u64,
            out.total_samples,
        );
    }
    let saved = (one.max_load() - thr.max_load()) as u64 * buckets as u64;
    let extra = thr.total_samples - one.total_samples;
    println!(
        "\nthreshold saves {saved} slots for {extra} extra construction samples\n\
         ({:.2} slots saved per extra sample).\n",
        saved as f64 / extra.max(1) as f64
    );

    // --- cuckoo hashing: reallocation cost vs load factor ---------------
    println!("cuckoo (d=2, k=4): insert cost as the table fills");
    println!("{:>12} {:>14} {:>12}", "load factor", "avg kicks", "stash");
    let mut table = CuckooTable::new(buckets / 4, 4, 2, 7).with_max_kicks(1_000);
    let mut rng = default_rng(7);
    let capacity = (buckets / 4) * 4;
    let checkpoints = [0.5, 0.8, 0.9, 0.95, 0.97];
    let mut next_cp = 0usize;
    let mut kicks_since = 0u64;
    let mut inserts_since = 0u64;
    let mut key = 0u64;
    while next_cp < checkpoints.len() {
        key += 1;
        match table.insert(key, &mut rng) {
            Ok(k) => kicks_since += k,
            Err(InsertError::KickBudgetExhausted { kicks }) => kicks_since += kicks,
            Err(InsertError::DuplicateKey) => unreachable!("keys are unique"),
        }
        inserts_since += 1;
        if table.len() as f64 / capacity as f64 >= checkpoints[next_cp] {
            println!(
                "{:>12.2} {:>14.3} {:>12}",
                table.load_factor(),
                kicks_since as f64 / inserts_since as f64,
                table.stash_len(),
            );
            kicks_since = 0;
            inserts_since = 0;
            next_cp += 1;
        }
    }
    println!("\nthe kick cost (reallocations per insert) explodes near the (2,4)");
    println!("threshold — the quantitative form of the paper's remark that");
    println!("reallocation-based schemes pay where sample-only schemes do not.");
}
