//! Quickstart: allocate balls with the paper's two protocols and read
//! off the quantities the paper is about.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use balls_into_bins::core::prelude::*;

fn main() {
    let n = 10_000usize;
    let m = 200_000u64; // ϕ = 20 balls per bin on average
    let cfg = RunConfig::new(n, m).with_engine(Engine::Jump);
    let seed = 2013; // SPAA'13

    println!(
        "n = {n} bins, m = {m} balls, max-load guarantee = ⌈m/n⌉+1 = {}",
        cfg.max_load_bound()
    );
    println!();
    println!(
        "{:<12} {:>12} {:>10} {:>9} {:>9} {:>12} {:>12}",
        "protocol", "samples", "T/m", "max", "gap", "psi", "phi"
    );

    for proto in [
        Box::new(Adaptive::paper()) as Box<dyn DynProtocol>,
        Box::new(Threshold),
        Box::new(GreedyD::new(2)),
        Box::new(OneChoice),
    ] {
        let out = run_protocol(proto.as_ref(), &cfg, seed);
        println!(
            "{:<12} {:>12} {:>10.4} {:>9} {:>9} {:>12.1} {:>12.1}",
            out.protocol,
            out.total_samples,
            out.time_ratio(),
            out.max_load(),
            out.gap(),
            out.psi(),
            out.phi(),
        );
    }

    println!();
    println!("Things to notice (the paper's headline claims):");
    println!(" * adaptive and threshold hit the ⌈m/n⌉+1 max-load bound; the others do not.");
    println!(" * threshold's sample count is barely above m (Theorem 4.1);");
    println!("   adaptive pays a small constant factor more (Theorem 3.1).");
    println!(" * adaptive's psi/gap are far smaller than threshold's: the load is smoother");
    println!("   (Corollary 3.5 vs Lemma 4.2).");
}
