//! Round-restricted parallel `greedy[d]` (Adler, Chakrabarti,
//! Mitzenmacher & Rasmussen [1]).
//!
//! The [1] model: each ball commits to `d` uniform candidate bins up
//! front; communication proceeds in `r` synchronous rounds, after which
//! *every ball must be placed* in one of its candidates. Their lower
//! bound says max load `Ω((log n / log log n)^{1/r})` for constant
//! rounds; more rounds ⇒ better balance.
//!
//! We implement the natural committed-candidates process:
//!
//! * rounds 1 … r−1: every unplaced ball asks its currently
//!   least-loaded candidate (by the *confirmed* loads it has heard);
//!   each bin admits at most `q_r` new balls per round (FIFO over a
//!   random permutation) and rejects the rest;
//! * final round: every still-unplaced ball is force-placed into its
//!   least-loaded candidate (everyone must land).
//!
//! With `d = 2` and a handful of rounds the max load lands in the
//! `O(√(log n / log log n))`-ish band between one-round (= `d`-choice
//! collision) and unrestricted `greedy[2]`.

use bib_core::protocol::{Observer, Outcome, Protocol, RunConfig};
use bib_core::scenario::Scenario;
use bib_rng::{Rng64, RngExt};

/// The round-restricted parallel greedy protocol.
#[derive(Debug, Clone, Copy)]
pub struct ParallelGreedy {
    d: u32,
    rounds: u32,
    per_round: u32,
}

impl ParallelGreedy {
    /// `d ≥ 1` candidates per ball, `rounds ≥ 1` communication rounds,
    /// and at most `per_round ≥ 1` admissions per bin per round.
    pub fn new(d: u32, rounds: u32, per_round: u32) -> Self {
        assert!(d >= 1, "need at least one candidate");
        assert!(rounds >= 1, "need at least one round");
        assert!(
            per_round >= 1,
            "bins must admit at least one ball per round"
        );
        Self {
            d,
            rounds,
            per_round,
        }
    }

    /// Candidates per ball.
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Round budget.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Convenience entry point mirroring the sequential protocols'
    /// shape: runs `m` balls into `n` bins with no observer.
    pub fn run<R: Rng64 + ?Sized>(&self, n: usize, m: u64, rng: &mut R) -> Outcome {
        self.allocate(
            &RunConfig::new(n, m),
            rng,
            &mut bib_core::protocol::NullObserver,
        )
    }
}

impl Protocol for ParallelGreedy {
    fn name(&self) -> String {
        format!(
            "parallel-greedy(d={},r={},q={})",
            self.d, self.rounds, self.per_round
        )
    }

    /// Runs the process; all `m` balls are placed by construction. The
    /// engine in `cfg` is ignored: round protocols have one execution
    /// path.
    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        let (n, m) = (cfg.n, cfg.m);
        assert!(n > 0, "need at least one bin");
        assert!(m <= u32::MAX as u64, "ball ids are u32");
        let want_stages = obs.wants_stage_ends();
        let d = self.d as usize;
        // Committed candidates, ball-major.
        let mut candidates: Vec<u32> = Vec::with_capacity(m as usize * d);
        for _ in 0..m {
            for _ in 0..d {
                candidates.push(rng.range_usize(n) as u32);
            }
        }
        let mut loads = vec![0u32; n];
        let mut unplaced: Vec<u32> = (0..m as u32).collect();
        let mut messages = 0u64;
        let mut requests: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut rounds_used = 0u32;

        let best_candidate = |ball: u32, loads: &[u32]| -> u32 {
            let cs = &candidates[ball as usize * d..(ball as usize + 1) * d];
            *cs.iter()
                .min_by_key(|&&b| loads[b as usize])
                .expect("d ≥ 1")
        };

        // Negotiation rounds (all but the last).
        for _ in 1..self.rounds {
            if unplaced.is_empty() {
                break;
            }
            rounds_used += 1;
            for r in requests.iter_mut() {
                r.clear();
            }
            for &ball in &unplaced {
                let b = best_candidate(ball, &loads);
                requests[b as usize].push(ball);
                messages += 1;
            }
            let mut placed: Vec<bool> = vec![false; m as usize];
            for (bin, reqs) in requests.iter_mut().enumerate() {
                if reqs.is_empty() {
                    continue;
                }
                // Admit a uniformly random subset of size ≤ per_round.
                rng.shuffle(reqs);
                for &ball in reqs.iter().take(self.per_round as usize) {
                    loads[bin] += 1;
                    placed[ball as usize] = true;
                    messages += 1; // accept
                }
            }
            unplaced.retain(|&b| !placed[b as usize]);
            if want_stages {
                obs.on_stage_end(rounds_used as u64, &loads, m - unplaced.len() as u64);
            }
        }

        // Final forced round — synchronous: every ball decides against
        // the loads as of the round start (no sequential information
        // advantage).
        if !unplaced.is_empty() {
            rounds_used += 1;
            let snapshot = loads.clone();
            for &ball in &unplaced {
                let b = best_candidate(ball, &snapshot);
                loads[b as usize] += 1;
                messages += 2; // request + forced accept
            }
            unplaced.clear();
            if want_stages {
                obs.on_stage_end(rounds_used as u64, &loads, m);
            }
        }

        Outcome {
            protocol: self.name(),
            n,
            m,
            total_samples: messages,
            // The worst-off ball sent one request per round it survived;
            // some ball survives to the last used round.
            max_samples_per_ball: if m > 0 { rounds_used as u64 } else { 0 },
            loads,
            scenario: Scenario::rounds(rounds_used, messages),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_rng::SplitMix64;

    #[test]
    fn places_everything_within_round_budget() {
        let mut rng = SplitMix64::new(1);
        let out = ParallelGreedy::new(2, 3, 1).run(512, 512, &mut rng);
        out.validate();
        assert!(out.rounds() <= 3);
    }

    #[test]
    fn single_round_is_pure_commitment() {
        // r = 1: every ball force-places into its least-loaded candidate
        // as seen at time zero (all-zero loads) — i.e. its first choice
        // tie-broken by the min operator; load can pile up.
        let mut rng = SplitMix64::new(2);
        let out = ParallelGreedy::new(2, 1, 1).run(256, 256, &mut rng);
        out.validate();
        assert_eq!(out.rounds(), 1);
    }

    #[test]
    fn more_rounds_never_hurt_much() {
        let n = 1 << 14;
        let maxload = |rounds: u32, seed: u64| -> u32 {
            let mut rng = SplitMix64::new(seed);
            ParallelGreedy::new(2, rounds, 1)
                .run(n, n as u64, &mut rng)
                .max_load()
        };
        // Average over a few seeds to damp noise.
        let avg =
            |rounds: u32| -> f64 { (0..5).map(|s| maxload(rounds, s) as f64).sum::<f64>() / 5.0 };
        let r1 = avg(1);
        let r3 = avg(3);
        let r6 = avg(6);
        assert!(r3 <= r1, "3 rounds ({r3}) worse than 1 ({r1})");
        assert!(r6 <= r3 + 0.5, "6 rounds ({r6}) worse than 3 ({r3})");
    }

    #[test]
    fn messages_bounded_by_rounds_times_m() {
        let mut rng = SplitMix64::new(3);
        let out = ParallelGreedy::new(2, 4, 1).run(1024, 1024, &mut rng);
        assert!(out.messages() <= 2 * 4 * 1024);
    }

    #[test]
    fn zero_balls() {
        let mut rng = SplitMix64::new(4);
        let out = ParallelGreedy::new(3, 2, 1).run(8, 0, &mut rng);
        out.validate();
        assert_eq!(out.rounds(), 0);
        assert_eq!(out.messages(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_rounds_rejected() {
        ParallelGreedy::new(2, 0, 1);
    }
}
