//! Streaming summary statistics and confidence intervals.
//!
//! The paper's Figure 3 plots *averages over 100 simulations*; the
//! experiment harness additionally reports standard errors and normal
//! confidence intervals so that the reproduced shapes can be judged
//! against run-to-run noise.

use crate::special::normal_quantile;

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable single-pass accumulation; mergeable so the parallel
/// replication harness can combine per-thread partials deterministically.
///
/// # Examples
///
/// ```
/// use bib_analysis::Welford;
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { w.push(x); }
/// assert_eq!(w.count(), 4);
/// assert!((w.mean() - 2.5).abs() < 1e-12);
/// assert!((w.sample_variance() - 5.0/3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`n−1` denominator); 0 with fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean, `s/√n`.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_stddev() / (self.count as f64).sqrt()
        }
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Two-sided normal confidence interval for the mean at the given
    /// confidence level, e.g. `0.95`. Returns `(lo, hi)`.
    ///
    /// Uses the normal approximation, which is what the 100-replicate
    /// averages of Figure 3 warrant.
    pub fn confidence_interval(&self, level: f64) -> (f64, f64) {
        assert!((0.0..1.0).contains(&level), "level must be in (0,1)");
        if self.count < 2 {
            return (self.mean, self.mean);
        }
        let z = normal_quantile(0.5 + level / 2.0);
        let half = z * self.standard_error();
        (self.mean - half, self.mean + half)
    }

    /// Two-sided **Student-t** confidence interval for the mean — the
    /// statistically correct choice at the small replicate counts
    /// (10–30) most experiments here use. Returns `(lo, hi)`.
    pub fn confidence_interval_t(&self, level: f64) -> (f64, f64) {
        assert!((0.0..1.0).contains(&level), "level must be in (0,1)");
        if self.count < 2 {
            return (self.mean, self.mean);
        }
        let df = (self.count - 1) as f64;
        let t = crate::special::student_t_quantile(df, 0.5 + level / 2.0);
        let half = t * self.standard_error();
        (self.mean - half, self.mean + half)
    }

    /// Finalises into an immutable [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            stddev: self.sample_stddev(),
            stderr: self.standard_error(),
            min: self.min,
            max: self.max,
        }
    }
}

impl std::iter::FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        for x in iter {
            w.push(x);
        }
        w
    }
}

/// Immutable summary of a sample: count, mean, spread and range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub stddev: f64,
    /// Standard error of the mean.
    pub stderr: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.6} ± {:.6} (sd {:.6}, range [{:.6}, {:.6}])",
            self.count, self.mean, self.stderr, self.stddev, self.min, self.max
        )
    }
}

/// Returns the `q`-th quantile (`0 ≤ q ≤ 1`) of a sample using linear
/// interpolation between order statistics (type-7, the R/NumPy default).
///
/// Sorts a copy of the data; panics on an empty slice.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q={q} out of [0,1]");
    let mut v = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let h = (v.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] + (h - lo as f64) * (v[hi] - v[lo])
    }
}

/// Median convenience wrapper over [`quantile`].
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

/// Ordinary least squares fit of `y = a + b·x`; returns `(a, b, r²)`.
///
/// Experiments use this to fit, e.g., threshold's excess allocation time
/// against `m^{3/4} n^{1/4}` (Theorem 4.1) or adaptive's gap against
/// `log n` (Corollary 3.5).
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "linear_fit: length mismatch");
    assert!(xs.len() >= 2, "linear_fit: need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    assert!(sxx > 0.0, "linear_fit: degenerate x values");
    let b = sxy / sxx;
    let a = my - b * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    (a, b, r2)
}

/// Power-law fit `y = c·x^α` via OLS in log-log space; returns
/// `(c, α, r²)`.
///
/// Panics if any input is non-positive (no logarithm). Used by the
/// Lemma 4.2 experiment to report the *measured* exponents of Ψ and the
/// gap against the paper's 9/8 and 1/8 lower bounds.
pub fn power_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "power_fit: length mismatch");
    let lx: Vec<f64> = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "power_fit: non-positive x {x}");
            x.ln()
        })
        .collect();
    let ly: Vec<f64> = ys
        .iter()
        .map(|&y| {
            assert!(y > 0.0, "power_fit: non-positive y {y}");
            y.ln()
        })
        .collect();
    let (a, b, r2) = linear_fit(&lx, &ly);
    (a.exp(), b, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_fit_recovers_exact_power_law() {
        let xs: Vec<f64> = (1..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.5 * x.powf(1.125)).collect();
        let (c, alpha, r2) = power_fit(&xs, &ys);
        assert!((c - 3.5).abs() < 1e-9);
        assert!((alpha - 1.125).abs() < 1e-10);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn power_fit_rejects_non_positive() {
        power_fit(&[1.0, 0.0], &[1.0, 2.0]);
    }

    #[test]
    fn welford_empty() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.standard_error(), 0.0);
    }

    #[test]
    fn welford_single_observation() {
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.min(), 42.0);
        assert_eq!(w.max(), 42.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let w: Welford = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-10);
        assert!((w.sample_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..57).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: Welford = data.iter().copied().collect();
        for split in [0usize, 1, 28, 56, 57] {
            let mut a: Welford = data[..split].iter().copied().collect();
            let b: Welford = data[split..].iter().copied().collect();
            a.merge(&b);
            assert_eq!(a.count(), whole.count());
            assert!((a.mean() - whole.mean()).abs() < 1e-10, "split={split}");
            assert!(
                (a.sample_variance() - whole.sample_variance()).abs() < 1e-9,
                "split={split}"
            );
            assert_eq!(a.min(), whole.min());
            assert_eq!(a.max(), whole.max());
        }
    }

    #[test]
    fn confidence_interval_widens_with_level() {
        let w: Welford = (0..50).map(|i| i as f64).collect();
        let (l90, h90) = w.confidence_interval(0.90);
        let (l99, h99) = w.confidence_interval(0.99);
        assert!(l99 < l90 && h99 > h90);
        assert!(l90 < w.mean() && w.mean() < h90);
    }

    #[test]
    fn t_interval_wider_than_normal_at_small_n() {
        let w: Welford = (0..8).map(|i| i as f64).collect();
        let (ln, hn) = w.confidence_interval(0.95);
        let (lt, ht) = w.confidence_interval_t(0.95);
        assert!(lt < ln && ht > hn, "t interval must be wider at n = 8");
        // And they converge for large n.
        let big: Welford = (0..5000).map(|i| (i % 100) as f64).collect();
        let (ln, hn) = big.confidence_interval(0.95);
        let (lt, ht) = big.confidence_interval_t(0.95);
        assert!((ln - lt).abs() < 1e-3 && (hn - ht).abs() < 1e-3);
    }

    #[test]
    fn quantile_and_median() {
        let data = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert!((median(&data) - 2.5).abs() < 1e-15);
        assert!((quantile(&data, 0.25) - 1.75).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let (a, b, r2) = linear_fit(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_r2_for_noise() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| {
                x + if (*x as u64).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        let (_, b, r2) = linear_fit(&xs, &ys);
        assert!(b > 0.9 && b < 1.1);
        assert!(r2 < 1.0 && r2 > 0.9);
    }

    #[test]
    fn summary_display_is_readable() {
        let w: Welford = [1.0, 2.0, 3.0].into_iter().collect();
        let s = format!("{}", w.summary());
        assert!(s.contains("n=3"));
        assert!(s.contains("mean=2"));
    }
}
