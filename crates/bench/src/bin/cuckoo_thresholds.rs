//! **E10 — cuckoo-hashing thresholds** (the §1 reallocation discussion,
//! \[8\]).
//!
//! For `d = 2` choices and bucket sizes `k ∈ {1, 2, 4, 8}`, fill a table
//! and report the average eviction ("kick") cost in load-factor bands.
//! The known (2, k) thresholds — ≈ 0.5 for k = 1, rising towards 1 for
//! larger k — show up as the load factor where the kick cost explodes
//! and the stash starts filling.
//!
//! ```text
//! cargo run --release -p bib-bench --bin cuckoo_thresholds [-- --quick --csv]
//! ```

use bib_bench::{f, ExpArgs, Table};
use bib_reloc::{CuckooTable, InsertError};
use bib_rng::SeedSequence;

fn main() {
    let args = ExpArgs::parse();
    let slots = args.pick(1usize << 16, 1usize << 12); // total capacity k·nbuckets
    let ks: Vec<usize> = args.pick(vec![1, 2, 4, 8], vec![1, 4]);
    let bands: Vec<f64> = vec![0.30, 0.40, 0.45, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.98];

    println!("# Cuckoo (d = 2) insertion cost by load-factor band; capacity {slots} slots\n");
    let mut table = Table::new(vec!["k", "band_end", "avg_kicks", "stash", "fail_frac"]);

    for &k in &ks {
        let nbuckets = slots / k;
        let mut t = CuckooTable::new(nbuckets, k, 2, args.seed).with_max_kicks(2_000);
        let mut rng = SeedSequence::new(args.seed).child(k as u64).rng();
        let mut key = 0u64;
        let mut prev_frac = 0.0f64;
        for &band in &bands {
            let target = (band * slots as f64) as usize;
            let mut kicks = 0u64;
            let mut inserts = 0u64;
            let mut fails = 0u64;
            while t.len() < target {
                key += 1;
                inserts += 1;
                match t.insert(key, &mut rng) {
                    Ok(c) => kicks += c,
                    Err(InsertError::KickBudgetExhausted { kicks: c }) => {
                        kicks += c;
                        fails += 1;
                    }
                    Err(InsertError::DuplicateKey) => unreachable!(),
                }
            }
            table.row(vec![
                k.to_string(),
                format!("{band:.2}"),
                f(kicks as f64 / inserts.max(1) as f64),
                t.stash_len().to_string(),
                f(fails as f64 / inserts.max(1) as f64),
            ]);
            prev_frac = band;
            // Past the threshold everything lands in the stash — stop
            // this k once failures dominate.
            if fails > inserts / 2 {
                break;
            }
        }
        let _ = prev_frac;
    }

    table.print(&args);
    println!("\n# Expected shape: kick cost ~0 at low load, exploding near the (2,k)");
    println!("# threshold (~0.5 for k=1, ~0.90+ for k=4, ~0.96+ for k=8); the stash");
    println!("# only starts filling past the threshold.");
}
