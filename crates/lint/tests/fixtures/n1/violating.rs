//! N1 violating fixture: narrowing cast in count arithmetic.
pub fn to_load(count: u64) -> u32 {
    count as u32
}
