//! The paper's explicit numerical constants, *computed* rather than
//! transcribed.
//!
//! The analysis of `adaptive` (Section 3) fixes ε = 1/200 and then claims
//! several numerical facts:
//!
//! * **Lemma 3.2** needs a constant `C1` large enough that
//!   `Σ_{k ≥ C1+3} Pr[Poi(1/2) = k] ≤ 10⁻¹⁰`, and uses
//!   `(1/2)(1 − 1/n)^{n−1} ≫ 1/20` for the probability that an overloaded
//!   bin absorbs two balls in a half-stage.
//! * **Lemma 3.3** needs `C1` also large enough that
//!   `Σ_{k=0}^{C1−1} Pr[Poi(199/198) = k] ≥ 1 − 2·10⁻¹⁰`, and evaluates
//!   the per-stage potential drift
//!   `κ = 1 − Σ_{k=0}^{C1−1} (Pr[Poi(199/198) = k] + 2·10⁻¹⁰)(1+ε)^{1−k}`,
//!   which the paper lower-bounds by
//!   `β − 2·10⁻⁷` with
//!   `β = 1 − e^{−199/198} (201/200) e^{(200/201)(199/198)} > 0.000012`.
//! * **Lemma 3.4** defines the potential ceiling
//!   `ρ_n = ((ε + κ)/(κ/2)) (1+ε)^{C1} n`.
//!
//! Every one of those is a finite computation; this module performs them
//! so the test suite can machine-check the paper's arithmetic and the
//! experiment harness can print the implied constants next to measured
//! data.

use crate::dist::Poisson;

/// The paper's smoothing parameter ε = 1/200 (Section 2).
pub const EPSILON: f64 = 1.0 / 200.0;

/// The Poisson rate `199/198` arising in Lemma 3.2 as the sum
/// `Poi(1/2) + Poi(100/198)`.
pub const LEMMA32_RATE: f64 = 199.0 / 198.0;

/// The additive slack `2·10⁻¹⁰` in the Lemma 3.2 tail bound.
pub const LEMMA32_SLACK: f64 = 2e-10;

/// Smallest constant `C1` satisfying *both* requirements the paper places
/// on it:
///
/// 1. `Pr[Poi(1/2) ≥ C1 + 3] ≤ 10⁻¹⁰` (proof of Lemma 3.2), and
/// 2. `Pr[Poi(199/198) ≥ C1] ≤ 2·10⁻¹⁰` (proof of Lemma 3.3).
pub fn c1() -> u64 {
    let poi_half = Poisson::new(0.5);
    let poi_rate = Poisson::new(LEMMA32_RATE);
    let mut c = 0u64;
    loop {
        let cond1 = poi_half.tail(c + 3) <= 1e-10;
        let cond2 = poi_rate.tail(c) <= 2e-10;
        if cond1 && cond2 {
            return c;
        }
        c += 1;
        assert!(c < 1_000, "C1 search diverged — distribution code is wrong");
    }
}

/// The closed-form part of the Lemma 3.3 evaluation:
/// `β = 1 − e^{−199/198} (201/200) e^{(200/201)(199/198)}`.
///
/// The paper reports `β > 0.000012`; the unit tests verify that.
pub fn lemma33_beta() -> f64 {
    let rate = LEMMA32_RATE;
    1.0 - (-rate).exp() * (201.0 / 200.0) * ((200.0 / 201.0) * rate).exp()
}

/// The exact per-stage potential drift constant of Lemma 3.3:
///
/// `κ = 1 − Σ_{k=0}^{C1−1} (Pr[Poi(199/198) = k] + 2·10⁻¹⁰)(1+ε)^{1−k}`.
///
/// The paper shows `κ ≥ β − 2·10⁻⁷ > 0`; computing the sum exactly gives a
/// (slightly) larger value, which is the one the simulation reports.
pub fn lemma33_kappa(c1: u64) -> f64 {
    let poi = Poisson::new(LEMMA32_RATE);
    let mut s = 0.0;
    for k in 0..c1 {
        let r = (1.0 + EPSILON).powi(1 - k as i32);
        s += (poi.pmf(k) + LEMMA32_SLACK) * r;
    }
    1.0 - s
}

/// The Lemma 3.4 potential ceiling `ρ_n / n = ((ε + κ)/(κ/2)) (1+ε)^{C1}`.
///
/// Multiply by `n` to get `ρ_n`. Above this ceiling the expected
/// exponential potential contracts by a factor `1 − κ/2` per stage.
pub fn rho_over_n(c1: u64, kappa: f64) -> f64 {
    assert!(kappa > 0.0, "rho_over_n: κ must be positive, got {kappa}");
    (EPSILON + kappa) / (kappa / 2.0) * (1.0 + EPSILON).powi(c1 as i32)
}

/// The Corollary 3.5 stationary bound `E[Φ(Lτ)] ≤ (1+ε)² ρ_n / (κ/2)`,
/// returned as a multiple of `n`.
pub fn corollary35_phi_over_n(c1: u64, kappa: f64) -> f64 {
    (1.0 + EPSILON).powi(2) * rho_over_n(c1, kappa) / (kappa / 2.0)
}

/// The probability that a fixed bin receives ≥ 2 of `n/2` uniform throws:
/// lower-bounded in Lemma 3.2 by `(1/2)(1 − 1/n)^{n−1}`, which the paper
/// notes is `≫ 1/20`.
pub fn lemma32_two_hit_lower_bound(n: u64) -> f64 {
    assert!(n >= 2, "need at least two bins");
    0.5 * (1.0 - 1.0 / n as f64).powi(n as i32 - 1)
}

/// The Lemma 3.2 conclusion: `Pr[Y ≥ k] ≥ Pr[Poi(199/198) ≥ k] − 2·10⁻¹⁰`
/// for the number `Y` of balls an underloaded bin receives in one stage.
/// Returns that lower bound (clamped at 0).
pub fn lemma32_receive_tail_bound(k: u64) -> f64 {
    (Poisson::new(LEMMA32_RATE).tail(k) - LEMMA32_SLACK).max(0.0)
}

/// Bundle of all derived constants, for display by the `paper_constants`
/// experiment binary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperConstants {
    /// ε = 1/200.
    pub epsilon: f64,
    /// The constant `C1` (see [`c1`]).
    pub c1: u64,
    /// Closed-form β of Lemma 3.3.
    pub beta: f64,
    /// Exact κ of Lemma 3.3.
    pub kappa: f64,
    /// `ρ_n / n` of Lemma 3.4.
    pub rho_over_n: f64,
    /// `E[Φ]/n` ceiling of Corollary 3.5.
    pub phi_over_n: f64,
}

/// Computes the full constant bundle.
pub fn constants() -> PaperConstants {
    let c1v = c1();
    let kappa = lemma33_kappa(c1v);
    PaperConstants {
        epsilon: EPSILON,
        c1: c1v,
        beta: lemma33_beta(),
        kappa,
        rho_over_n: rho_over_n(c1v, kappa),
        phi_over_n: corollary35_phi_over_n(c1v, kappa),
    }
}

impl std::fmt::Display for PaperConstants {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "epsilon      = {:.6}", self.epsilon)?;
        writeln!(f, "C1           = {}", self.c1)?;
        writeln!(f, "beta         = {:.3e}  (paper: > 0.000012)", self.beta)?;
        writeln!(
            f,
            "kappa        = {:.3e}  (paper: >= beta - 2e-7 > 2e-7)",
            self.kappa
        )?;
        writeln!(f, "rho_n / n    = {:.3e}", self.rho_over_n)?;
        write!(f, "E[Phi]/n cap = {:.3e}", self.phi_over_n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1_is_minimal_and_satisfies_both_conditions() {
        let c = c1();
        let poi_half = Poisson::new(0.5);
        let poi_rate = Poisson::new(LEMMA32_RATE);
        assert!(poi_half.tail(c + 3) <= 1e-10);
        assert!(poi_rate.tail(c) <= 2e-10);
        // Minimality: c−1 must violate at least one condition.
        assert!(c > 0);
        let prev = c - 1;
        assert!(
            poi_half.tail(prev + 3) > 1e-10 || poi_rate.tail(prev) > 2e-10,
            "C1={c} is not minimal"
        );
        // Sanity: Poisson(≈1) tails die fast; C1 should be modest.
        assert!(
            (5..40).contains(&c),
            "C1={c} is outside the plausible range"
        );
    }

    #[test]
    fn beta_matches_papers_numeric_claim() {
        let beta = lemma33_beta();
        // "an evaluation of these expressions numerically yields
        //  β > 0.000012… > 2·10⁻⁷"
        assert!(beta > 0.000_012, "beta={beta}");
        assert!(beta < 0.000_013, "beta={beta} suspiciously large");
        assert!(beta > 2e-7);
    }

    #[test]
    fn kappa_is_positive_and_dominates_papers_bound() {
        let c = c1();
        let kappa = lemma33_kappa(c);
        assert!(kappa > 0.0, "kappa={kappa}");
        // The paper's chain of inequalities shows κ ≥ β − 2·10⁻⁷; the exact
        // sum must respect that.
        assert!(kappa >= lemma33_beta() - 2e-7, "kappa={kappa}");
    }

    #[test]
    fn kappa_is_monotone_in_c1_up_to_slack() {
        // Increasing C1 adds positive pmf·r terms but each ≤ pmf(k)(1+ε);
        // since r_k → 0 the value converges; check stability.
        let c = c1();
        let a = lemma33_kappa(c);
        let b = lemma33_kappa(c + 10);
        // Each extra term is tiny: |a − b| bounded by tail + slack effects.
        assert!((a - b).abs() < 1e-6, "a={a} b={b}");
    }

    #[test]
    fn rho_and_phi_caps_are_finite_positive_constants() {
        let k = constants();
        assert!(k.rho_over_n > 0.0 && k.rho_over_n.is_finite());
        assert!(k.phi_over_n > k.rho_over_n); // the Corollary inflates ρ.
    }

    #[test]
    fn two_hit_bound_exceeds_one_twentieth() {
        // (1/2)(1−1/n)^{n−1} ≥ 1/2e > 1/20 for all n ≥ 2; check a sweep.
        for &n in &[2u64, 3, 10, 100, 10_000, 1_000_000] {
            let v = lemma32_two_hit_lower_bound(n);
            assert!(v > 1.0 / 20.0, "n={n} v={v}");
            // And it converges to 1/(2e) from above.
            assert!(v >= 0.5 / std::f64::consts::E - 1e-9, "n={n}");
        }
    }

    #[test]
    fn receive_tail_bound_shape() {
        // k = 0: probability 1 − slack; decreasing in k; ≥ 0 everywhere.
        assert!((lemma32_receive_tail_bound(0) - (1.0 - LEMMA32_SLACK)).abs() < 1e-12);
        let mut prev = f64::INFINITY;
        for k in 0..20u64 {
            let v = lemma32_receive_tail_bound(k);
            assert!(v >= 0.0 && v <= prev);
            prev = v;
        }
        // Expected number of balls for an underloaded bin is ≥ Σ_k≥1 bound
        // ≈ E[Poi(199/198)] = 199/198 > 1: the "catching up" claim.
        let mean_lb: f64 = (1..60).map(lemma32_receive_tail_bound).sum();
        assert!(mean_lb > 1.0, "mean lower bound {mean_lb} not > 1");
    }

    #[test]
    fn constants_display_contains_all_fields() {
        let s = format!("{}", constants());
        for key in ["epsilon", "C1", "beta", "kappa", "rho_n", "Phi"] {
            assert!(s.contains(key), "missing {key} in display");
        }
    }

    #[test]
    fn lemma34_contraction_is_consistent() {
        // With Φ ≥ ρ_n, E[Φ'] ≤ (1 − κ/2)Φ. Check the algebra the paper
        // performs: (ε+κ)·n·(1+ε)^{C1} ≤ (κ/2)·Φ whenever Φ ≥ ρ_n.
        let c = c1();
        let kappa = lemma33_kappa(c);
        let rho = rho_over_n(c, kappa); // per unit n
        let lhs = (EPSILON + kappa) * (1.0 + EPSILON).powi(c as i32);
        assert!(lhs <= kappa / 2.0 * rho + 1e-12);
    }
}
