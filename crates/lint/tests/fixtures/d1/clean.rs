//! D1 clean fixture: durations may be *stored*, never *measured*.
use std::time::Duration;

pub fn budget() -> Duration {
    Duration::from_millis(100)
}
