//! **E4 — Theorem 3.1**: `adaptive`'s expected allocation time is O(m).
//!
//! We sweep a grid of `(n, ϕ)` and report the normalised excess
//! `(T − m)/m`. Theorem 3.1 says this is bounded by a constant uniformly
//! in both `n` and `ϕ = m/n` — the table's columns and rows should both
//! be flat.
//!
//! ```text
//! cargo run --release -p bib-bench --bin theorem31 [-- --quick --csv]
//! ```

use bib_analysis::Welford;
use bib_bench::{f, ExpArgs, Table};
use bib_core::prelude::*;
use bib_parallel::replicate_outcomes;

fn main() {
    let args = ExpArgs::parse();
    let ns: Vec<usize> = args.pick(
        vec![1 << 10, 1 << 12, 1 << 14, 1 << 16],
        vec![1 << 8, 1 << 10],
    );
    let phis: Vec<u64> = args.pick(vec![1, 4, 16, 64], vec![1, 8]);
    let reps = args.reps_or(20, 5);

    println!(
        "# Theorem 3.1: adaptive excess samples (T - m)/m over an (n, phi) grid; {reps} reps\n"
    );
    let mut table = Table::new(vec!["n", "phi", "(T-m)/m", "ci95", "max_T/m"]);

    let mut global_max = 0.0f64;
    for &n in &ns {
        for &phi in &phis {
            let m = phi * n as u64;
            let cfg = RunConfig::new(n, m).with_engine(args.engine_or(Engine::Jump));
            let outs = replicate_outcomes(&Adaptive::paper(), &cfg, &args.replicate_spec(reps));
            let mut w = Welford::new();
            let mut worst: f64 = 0.0;
            for o in &outs {
                let r = o.excess_samples() as f64 / m as f64;
                w.push(r);
                worst = worst.max(o.time_ratio());
            }
            global_max = global_max.max(w.mean());
            table.row(vec![
                n.to_string(),
                phi.to_string(),
                f(w.mean()),
                f(1.96 * w.standard_error()),
                f(worst),
            ]);
        }
    }

    table.print(&args);
    println!(
        "\n# Expected shape: the (T-m)/m column is bounded by a constant (no growth in n or phi)."
    );
    println!(
        "# Largest observed mean normalised excess: {}",
        f(global_max)
    );
}
