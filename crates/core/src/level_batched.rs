//! The level-batched sampling engine ([`Engine::LevelBatched`]).
//!
//! Threshold-style protocols place every ball into a uniformly random
//! bin whose load is below an integer bound that is *constant over long
//! segments* of the run: the whole run for `threshold`, one stage of
//! `n` balls for `adaptive`, one batch for `adaptive/batch=b`. Within
//! such a segment the faithful process is equivalent to scanning an
//! i.i.d. uniform bin stream and accepting samples that land in a
//! non-full bin (full = load has reached the bound `t`). This module
//! simulates whole segments at once:
//!
//! 1. Let `A` be the bins with load `< t` at segment start (`k₀ = |A|`).
//!    Samples outside `A` are pure retries; samples inside `A` — the
//!    *A-hits* — drive the state.
//! 2. While many balls remain, process the next `left` A-hits as one
//!    *round*: they scatter uniformly over `A`, so the hits wasted on
//!    bins of `A` that have filled since segment start split off with
//!    one binomial draw, and the live hits split over the still-open
//!    bins as a multinomial (a chain of conditional binomial draws —
//!    the level-batched walk). Each open bin keeps `min(hits, capacity)`
//!    balls; overflow re-enters the next round, exactly as the
//!    corresponding stream samples would.
//! 3. Once fewer than ~`k₀` balls remain, batching stops paying for
//!    itself and the tail is placed ball-by-ball with the jump rule
//!    (uniform open bin + geometric sample count) — still exact.
//!
//! Step 2's rounds consume the *first* `Σ leftᵣ` A-hits of the stream
//! and are therefore distributionally exact on the final load vector:
//! conditioned on acceptance, a uniform-over-`A` sample is uniform over
//! the open bins, which is the faithful law. The integration tests
//! validate this with chi-square comparisons against [`Engine::Faithful`]
//! and exact checks on degenerate cases.
//!
//! **What is and is not preserved.** Final loads: exact. Total samples:
//! every A-hit costs `Geometric(k₀/n)` stream samples, so the segment's
//! allocation time is a negative-binomial total — drawn exactly for
//! small counts and via its CLT limit for large ones (indistinguishable
//! at the scales where batching matters). Per-ball events: gone by
//! construction — `Observer::on_ball` never fires and
//! `max_samples_per_ball` only reflects the per-ball tail. Use
//! `Faithful`/`Jump` when per-ball traces matter.

use crate::partitioned::PartitionedBins;
use crate::protocol::{drive_sequential, Engine, Observer, Outcome, Protocol, RunConfig};
use crate::sampler::place_below;
use crate::scenario::Scenario;
use bib_rng::dist::{BinomialSampler, Distribution, GeometricSampler, Normal};
use bib_rng::{Rng64, RngExt};

/// A protocol whose acceptance bound is a function of the ball index
/// alone, constant over contiguous segments — the contract the
/// level-batched driver needs.
pub trait ThresholdSchedule {
    /// Acceptance bound for ball `ball` (1-based): a bin accepts iff
    /// `load < bound`.
    fn bound(&self, cfg: &RunConfig, ball: u64) -> u32;

    /// Inclusive index of the last ball sharing `ball`'s bound
    /// (`ball ≤ segment_end ≤ cfg.m`).
    fn segment_end(&self, cfg: &RunConfig, ball: u64) -> u64;
}

/// Sample accounting for one batched segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Total bin samples consumed (allocation time of the segment).
    pub samples: u64,
    /// Largest per-ball sample count *observed* — exact for tail balls,
    /// a lower bound (1) for batched balls.
    pub max_samples_per_ball: u64,
}

/// Below this many remaining balls (relative to the segment-start
/// accepting count) a batched round costs more than per-ball placement:
/// a round pays one binomial draw per open bin, so it needs a few balls
/// per bin to amortise. Measured on the criterion `engines` bench — at
/// `left ≈ k₀` (adaptive's stages) the per-ball tail wins.
fn batch_cutoff(k0: usize) -> u64 {
    (4 * k0 as u64).max(64)
}

/// Draws the total number of uniform bin samples needed to obtain
/// `hits` hits in an accepting set of probability `p` — a sum of `hits`
/// geometrics, i.e. `hits + NegativeBinomial(hits, p)` failures. Exact
/// summation up to `exact_cutoff` hits; rounded CLT draw (mean
/// `hits/p`, variance `hits·(1−p)/p²`) beyond, clamped to the support
/// `≥ hits`. Shared by this engine (cutoff 4096) and the histogram
/// engine (cutoff 32 — it prices one round per adaptive stage, where
/// long geometric sums would dominate the collapsed hot path).
pub(crate) fn stream_samples_for_hits_bounded<R: Rng64 + ?Sized>(
    hits: u64,
    p: f64,
    exact_cutoff: u64,
    rng: &mut R,
) -> u64 {
    if hits == 0 {
        return 0;
    }
    if p >= 1.0 {
        return hits;
    }
    if hits <= exact_cutoff {
        let g = GeometricSampler::new(p);
        return (0..hits).map(|_| g.sample(rng)).sum();
    }
    let mean = hits as f64 / p;
    let sd = (hits as f64 * (1.0 - p)).sqrt() / p;
    let draw = Normal::new(mean, sd).sample(rng).round();
    // f64 → u64 casts saturate, so a deep-left-tail draw clamps to 0
    // and then to the support minimum.
    (draw as u64).max(hits)
}

/// [`stream_samples_for_hits_bounded`] at this engine's exact-sum
/// ceiling.
fn stream_samples_for_hits<R: Rng64 + ?Sized>(hits: u64, p: f64, rng: &mut R) -> u64 {
    stream_samples_for_hits_bounded(hits, p, 4096, rng)
}

/// Places `count` balls into uniformly random bins with load `< t`,
/// batched by load level. Mutates `loads` in place; exact on the final
/// load vector (see the module docs for the sample-count semantics).
///
/// Panics if no bin has load `< t`, or if `count` exceeds the total
/// remaining capacity below `t` (either indicates a threshold bug).
pub fn place_batch_below<R: Rng64 + ?Sized>(
    loads: &mut [u32],
    t: u32,
    count: u64,
    rng: &mut R,
) -> BatchStats {
    let n = loads.len();
    // Open bins with their remaining capacity below t.
    let mut open: Vec<(u32, u32)> = loads
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l < t)
        .map(|(b, &l)| (b as u32, t - l))
        .collect();
    let k0 = open.len();
    assert!(k0 > 0, "place_batch_below: no bin has load < {t}");
    let capacity: u64 = open.iter().map(|&(_, c)| c as u64).sum();
    assert!(
        count <= capacity,
        "place_batch_below: {count} balls exceed the remaining capacity {capacity} below {t}"
    );

    let mut left = count;
    let mut a_hits = 0u64; // stream samples landing in the segment-start accepting set
    let mut stale_rounds = 0u32;
    while left >= batch_cutoff(k0) {
        a_hits += left;
        // Hits on bins of A that filled earlier in this segment are
        // wasted; one binomial draw splits them off.
        let live = if open.len() == k0 {
            left
        } else {
            BinomialSampler::new(left, open.len() as f64 / k0 as f64).sample(rng)
        };
        // Multinomial split of the live hits over the open bins, as a
        // chain of conditional binomials over the round-start open list.
        let round_bins = open.len();
        let mut rem_hits = live;
        let mut placed = 0u64;
        for (i, (b, cap)) in open.iter_mut().enumerate() {
            if rem_hits == 0 {
                break;
            }
            let rem_bins = (round_bins - i) as u64;
            let h = if rem_bins == 1 {
                rem_hits
            } else {
                BinomialSampler::new(rem_hits, 1.0 / rem_bins as f64).sample(rng)
            };
            rem_hits -= h;
            let take = h.min(*cap as u64) as u32;
            loads[*b as usize] += take;
            *cap -= take;
            placed += take as u64;
        }
        open.retain(|&(_, cap)| cap > 0);
        left -= placed;
        // A round can place nothing only through extreme binomial luck;
        // bail to the (always-correct) per-ball tail if it keeps up.
        if placed == 0 {
            stale_rounds += 1;
            if stale_rounds > 32 {
                break;
            }
        } else {
            stale_rounds = 0;
        }
    }

    let mut samples = stream_samples_for_hits(a_hits, k0 as f64 / n as f64, rng);
    let mut max_samples = u64::from(count > left);
    // Per-ball tail: uniform open bin + geometric sample count, the
    // jump rule against the compact open list.
    while left > 0 {
        let k = open.len();
        debug_assert!(k > 0, "capacity check above guarantees an open bin");
        let s = if k == n {
            1
        } else {
            GeometricSampler::new(k as f64 / n as f64).sample(rng)
        };
        samples += s;
        max_samples = max_samples.max(s);
        let idx = rng.range_usize(k);
        let (b, cap) = &mut open[idx];
        loads[*b as usize] += 1;
        *cap -= 1;
        if *cap == 0 {
            open.swap_remove(idx);
        }
        left -= 1;
    }

    BatchStats {
        samples,
        max_samples_per_ball: max_samples,
    }
}

/// Runs a whole allocation under [`Engine::LevelBatched`]: walks the
/// schedule's constant-bound segments and places each with
/// [`place_batch_below`]. If the observer wants stage traces, segments
/// are additionally capped at stage boundaries so `on_stage_end` fires
/// exactly as it would under the sequential engines.
///
/// Segments too short for the round machinery to engage (fewer balls
/// than [`batch_cutoff`] of the accepting count — every stage of
/// `adaptive` at heavy load) skip it entirely: the driver keeps a
/// [`PartitionedBins`] index across segments, reads the accepting count
/// in O(1), and places such segments ball by ball with zero setup cost.
/// Previously every stage paid an O(n) open-list scan only to fall
/// through to the per-ball tail, which put a `O(m)`-with-a-bad-constant
/// floor under `adaptive`'s level-batched runs.
pub fn drive_level_batched<S, R, O>(
    name: String,
    cfg: &RunConfig,
    rng: &mut R,
    obs: &mut O,
    schedule: &S,
) -> Outcome
where
    S: ThresholdSchedule + ?Sized,
    R: Rng64 + ?Sized,
    O: Observer + ?Sized,
{
    let n64 = cfg.n as u64;
    let mut bins = PartitionedBins::new(cfg.n);
    let mut total_samples = 0u64;
    let mut max_samples = 0u64;
    let want_stages = obs.wants_stage_ends();
    let mut ball = 1u64;
    while ball <= cfg.m {
        let t = schedule.bound(cfg, ball);
        let mut end = schedule.segment_end(cfg, ball).min(cfg.m);
        debug_assert!(end >= ball, "segment_end must not precede its ball");
        if want_stages {
            end = end.min(((ball - 1) / n64 + 1) * n64);
        }
        let count = end - ball + 1;
        let k0 = bins.count_below(t);
        if count < batch_cutoff(k0) {
            // Short segment: rounds would not engage. Per-ball placement
            // on the partitioned index is O(1) per ball; the faithful
            // retry loop is the cheapest variant while most bins accept
            // (expected retries < 2), the geometric jump otherwise. The
            // two are identical in distribution (see `crate::sampler`).
            let engine = if 2 * k0 >= cfg.n {
                Engine::Faithful
            } else {
                Engine::Jump
            };
            for _ in 0..count {
                let (_, samples) = place_below(&mut bins, t, engine, rng);
                total_samples += samples;
                max_samples = max_samples.max(samples);
            }
        } else {
            let mut loads = bins.as_slice().to_vec();
            let stats = place_batch_below(&mut loads, t, count, rng);
            total_samples += stats.samples;
            max_samples = max_samples.max(stats.max_samples_per_ball);
            bins = PartitionedBins::from_loads(loads);
        }
        if want_stages && end.is_multiple_of(n64) {
            obs.on_stage_end(end / n64, bins.as_slice(), end);
        }
        ball = end + 1;
    }
    if want_stages && cfg.m > 0 && !cfg.m.is_multiple_of(n64) {
        obs.on_stage_end(cfg.m / n64 + 1, bins.as_slice(), cfg.m);
    }
    Outcome {
        protocol: name,
        n: cfg.n,
        m: cfg.m,
        total_samples,
        max_samples_per_ball: max_samples,
        loads: bins.to_load_vector().into_loads().into(),
        scenario: Scenario::default(),
    }
}

/// The shared `allocate` body of every threshold-scheduled protocol:
/// resolves [`Engine::Auto`] against the measured matrix, then
/// dispatches to the histogram driver, the level-batched driver or the
/// per-ball loop.
pub fn allocate_scheduled<P, R, O>(
    protocol: &P,
    cfg: &RunConfig,
    rng: &mut R,
    obs: &mut O,
) -> Outcome
where
    P: Protocol + ThresholdSchedule,
    R: Rng64 + ?Sized,
    O: Observer + ?Sized,
{
    // `Concurrent` has no sequential-family path: resolve it like
    // `Auto` (documented on the `Engine` enum).
    let engine = match cfg.engine {
        Engine::Auto | Engine::Concurrent => Engine::auto_scheduled(cfg.n, cfg.m),
        engine => engine,
    };
    match engine {
        Engine::Histogram => {
            crate::histogram::drive_histogram(protocol.name(), cfg, rng, obs, protocol)
        }
        Engine::LevelBatched => drive_level_batched(protocol.name(), cfg, rng, obs, protocol),
        engine => {
            // Memoize the bound per constant-threshold segment: the
            // division inside `bound` is measurable per-ball cost on
            // the retry hot loop.
            let mut seg_end = 0u64;
            let mut t = 0u32;
            drive_sequential(protocol.name(), cfg, rng, obs, move |bins, ball, rng| {
                if ball > seg_end {
                    t = protocol.bound(cfg, ball);
                    seg_end = protocol.segment_end(cfg, ball);
                }
                place_below(bins, t, engine, rng)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_rng::SplitMix64;

    #[test]
    fn batch_fills_exact_capacity() {
        // count == capacity ⇒ every bin ends exactly at t.
        let mut loads = vec![0u32; 16];
        let mut rng = SplitMix64::new(1);
        let stats = place_batch_below(&mut loads, 3, 48, &mut rng);
        assert_eq!(loads, vec![3u32; 16]);
        assert!(stats.samples >= 48);
        assert!(stats.max_samples_per_ball >= 1);
    }

    #[test]
    fn batch_respects_initial_loads() {
        let mut loads = vec![5, 0, 5, 1];
        let mut rng = SplitMix64::new(2);
        place_batch_below(&mut loads, 5, 9, &mut rng);
        // Bins 0 and 2 were full at t = 5 and must not move.
        assert_eq!(loads[0], 5);
        assert_eq!(loads[2], 5);
        assert_eq!(loads[1] + loads[3], 10);
        assert!(loads[1] <= 5 && loads[3] <= 5);
    }

    #[test]
    fn batch_zero_count_is_noop() {
        let mut loads = vec![1, 2];
        let mut rng = SplitMix64::new(3);
        let stats = place_batch_below(&mut loads, 9, 0, &mut rng);
        assert_eq!(loads, vec![1, 2]);
        assert_eq!(stats.samples, 0);
        assert_eq!(stats.max_samples_per_ball, 0);
    }

    #[test]
    fn single_bin_takes_all_samples_exactly() {
        // k₀ = n = 1 ⇒ every sample hits, so the allocation time is m.
        let mut loads = vec![0u32];
        let mut rng = SplitMix64::new(4);
        let stats = place_batch_below(&mut loads, 1000, 1000, &mut rng);
        assert_eq!(loads, vec![1000]);
        assert_eq!(stats.samples, 1000);
    }

    #[test]
    #[should_panic]
    fn batch_rejects_impossible_threshold() {
        let mut loads = vec![2, 2];
        let mut rng = SplitMix64::new(5);
        place_batch_below(&mut loads, 1, 1, &mut rng);
    }

    #[test]
    #[should_panic]
    fn batch_rejects_over_capacity() {
        let mut loads = vec![0, 0];
        let mut rng = SplitMix64::new(6);
        place_batch_below(&mut loads, 2, 5, &mut rng);
    }

    #[test]
    fn mass_conserved_across_scales() {
        for (n, count, t) in [(8usize, 700u64, 100u32), (64, 10_000, 200), (1, 17, 17)] {
            let mut loads = vec![0u32; n];
            let mut rng = SplitMix64::new(count);
            let stats = place_batch_below(&mut loads, t, count, &mut rng);
            assert_eq!(loads.iter().map(|&l| l as u64).sum::<u64>(), count);
            assert!(loads.iter().all(|&l| l <= t));
            assert!(
                stats.samples >= count,
                "samples {} < {count}",
                stats.samples
            );
        }
    }

    #[test]
    fn stream_samples_small_and_large_regimes_agree_on_mean() {
        // p = 1/4 ⇒ mean samples per hit is 4.
        let mut rng = SplitMix64::new(7);
        let small: f64 = (0..200)
            .map(|_| stream_samples_for_hits(100, 0.25, &mut rng) as f64)
            .sum::<f64>()
            / 200.0;
        let large: f64 = (0..200)
            .map(|_| stream_samples_for_hits(100_000, 0.25, &mut rng) as f64)
            .sum::<f64>()
            / 200.0;
        assert!(
            (small / 100.0 - 4.0).abs() < 0.2,
            "small-regime mean {small}"
        );
        assert!(
            (large / 100_000.0 - 4.0).abs() < 0.02,
            "large-regime mean {large}"
        );
        assert_eq!(stream_samples_for_hits(0, 0.5, &mut rng), 0);
        assert_eq!(stream_samples_for_hits(9, 1.0, &mut rng), 9);
    }
}
