//! Numerical analysis substrate for the balls-into-bins reproduction.
//!
//! The SPAA 2013 paper *Balls-into-Bins with Nearly Optimal Load
//! Distribution* (Berenbrink, Khodamoradi, Sauerwald, Stauffer) leans on a
//! toolbox of probabilistic facts: exact Poisson and binomial
//! distributions (used both in the protocol analysis and in the
//! Poissonisation argument of Lemma A.7), Chernoff/Hoeffding/Azuma-style
//! concentration bounds (Theorems A.2–A.6), a convolution/majorisation
//! lemma (Lemma A.1), and a handful of explicit numerical constants
//! (ε = 1/200, the constant `C1` of Lemma 3.2, the drift constant of
//! Lemma 3.3).
//!
//! This crate implements all of those tools from scratch so that
//!
//! * the simulation crates can report exact tail probabilities and
//!   confidence intervals, and
//! * the test suite can machine-check every numeric claim the paper makes
//!   ("an evaluation of these expressions numerically yields …").
//!
//! The crate has no dependencies and is `#![forbid(unsafe_code)]`.
//!
//! # Module map
//!
//! * [`special`] — log-gamma, regularised incomplete gamma and beta
//!   functions (the kernels behind every cdf here).
//! * [`dist`] — exact pmf/cdf/sf/quantiles for Poisson, binomial and
//!   geometric distributions.
//! * [`bounds`] — evaluators for the concentration inequalities of
//!   Appendix A (Hoeffding, Azuma, Poisson Chernoff, geometric sums).
//! * [`convolve`] — sequence convolution and the majorisation order of
//!   Lemma A.1.
//! * [`coupon`] — coupon-collector expectations (the `i/n`-threshold
//!   ablation of Section 2 is a coupon collector in disguise).
//! * [`stats`] — streaming summary statistics and confidence intervals
//!   for the experiment harness.
//! * [`ks`] — one-sample Kolmogorov–Smirnov testing for the continuous
//!   samplers.
//! * [`chisq`] — chi-square goodness-of-fit testing, used to validate the
//!   samplers in `bib-rng` against the exact distributions implemented
//!   here.
//! * [`paper`] — the paper's explicit constants, computed rather than
//!   transcribed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod chisq;
pub mod convolve;
pub mod coupon;
pub mod dist;
pub mod ks;
pub mod paper;
pub mod special;
pub mod stats;

pub use dist::{Binomial, Geometric, Poisson};
pub use stats::{Summary, Welford};
