//! The lazy-outcome contract (see `bib_core::loads`): a no-observer
//! `Engine::Histogram` run returns a *virtual* load vector — the
//! occupancy histogram plus a reconstruction seed — and every
//! histogram-expressible statistic on `Outcome` must be computable
//! without ever materializing the dense per-bin vector. When the
//! vector *is* materialized, the histogram-computed statistics must
//! agree with their dense recomputations, and materialization must be
//! a pure deterministic function of the histogram and the seed.

use bib_core::histogram::OccupancyHistogram;
use bib_core::potential::{
    gap as dense_gap, ln_exponential_potential, quadratic_potential, EPSILON,
};
use bib_core::prelude::*;
use bib_core::run::run_protocol;
use bib_core::weighted::{WeightedAdaptive, WeightedOneChoice};

/// The uniform sequential protocols the histogram engine accepts.
fn protocols() -> Vec<Box<dyn DynProtocol + Send + Sync>> {
    ["threshold", "adaptive", "one-choice", "greedy[2]"]
        .iter()
        .map(|name| bib_core::protocols::by_name(name).unwrap())
        .collect()
}

/// Checks every histogram-computed statistic of `out` against a dense
/// recomputation from `loads` (which must be `out`'s materialization).
fn assert_stats_match_dense(out: &Outcome, loads: &[u32], tag: &str) {
    assert_eq!(out.n, loads.len(), "{tag}: n");
    let total: u64 = loads.iter().map(|&l| l as u64).sum();
    assert_eq!(out.total_balls(), total, "{tag}: total balls");
    assert_eq!(
        out.max_load(),
        loads.iter().copied().max().unwrap(),
        "{tag}: max load"
    );
    assert_eq!(
        out.min_load(),
        loads.iter().copied().min().unwrap(),
        "{tag}: min load"
    );
    assert_eq!(out.gap(), dense_gap(loads), "{tag}: gap");
    let psi = quadratic_potential(loads, out.m);
    assert!(
        (out.psi() - psi).abs() <= 1e-9 * psi.max(1.0),
        "{tag}: psi {} vs dense {psi}",
        out.psi()
    );
    let ln_phi = ln_exponential_potential(loads, out.m, EPSILON);
    assert!(
        (out.ln_phi() - ln_phi).abs() <= 1e-9 * ln_phi.abs().max(1.0),
        "{tag}: ln phi {} vs dense {ln_phi}",
        out.ln_phi()
    );
    let dense_overload = loads
        .iter()
        .enumerate()
        .map(|(j, &l)| l as f64 - out.fair_share(j))
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        (out.max_overload() - dense_overload).abs() <= 1e-9 * dense_overload.abs().max(1.0),
        "{tag}: max overload {} vs dense {dense_overload}",
        out.max_overload()
    );
}

#[test]
fn histogram_runs_stay_virtual_through_every_statistic() {
    // The tentpole claim: the no-observer histogram path never pays
    // the O(n) reconstruction — not at run end, not in validate(), not
    // in any histogram-expressible statistic.
    for (n, m) in [(64usize, 64u64 * 100), (512, 512 * 12), (2048, 100)] {
        let cfg = RunConfig::new(n, m).with_engine(Engine::Histogram);
        for proto in protocols() {
            let out = run_protocol(proto.as_ref(), &cfg, 17);
            let tag = format!("{} n={n} m={m}", proto.dyn_name());
            assert!(!out.loads.is_materialized(), "{tag}: born materialized");
            out.validate();
            let _ = (
                out.total_balls(),
                out.max_load(),
                out.min_load(),
                out.gap(),
                out.psi(),
                out.ln_phi(),
                out.max_overload(),
                out.weighted_psi(),
                out.time_ratio(),
            );
            assert_eq!(out.loads.len(), n, "{tag}: len");
            assert!(
                !out.loads.is_materialized(),
                "{tag}: a histogram statistic materialized the loads"
            );
        }
    }
}

#[test]
fn histogram_statistics_match_dense_recomputation() {
    for (n, m) in [(32usize, 32u64 * 9 + 5), (256, 256 * 40)] {
        let cfg = RunConfig::new(n, m).with_engine(Engine::Histogram);
        for proto in protocols() {
            let out = run_protocol(proto.as_ref(), &cfg, 23);
            let tag = format!("{} n={n} m={m}", proto.dyn_name());
            // Materializing must not change any histogram statistic.
            let psi_before = out.psi();
            let dense = out.loads.to_vec();
            assert!(out.loads.is_materialized(), "{tag}: to_vec materializes");
            assert_stats_match_dense(&out, &dense, &tag);
            assert_eq!(out.psi(), psi_before, "{tag}: psi moved");
        }
    }
}

#[test]
fn sequential_engines_agree_between_histogram_and_dense_stats() {
    // Dense-born outcomes (Faithful / Jump / LevelBatched) go the other
    // way: the histogram view is derived from the vector, and the class
    // statistics must match the dense ones there too.
    for engine in [Engine::Faithful, Engine::Jump, Engine::LevelBatched] {
        let cfg = RunConfig::new(48, 48 * 20).with_engine(engine);
        for proto in protocols() {
            let out = run_protocol(proto.as_ref(), &cfg, 31);
            let tag = format!("{} {engine:?}", proto.dyn_name());
            assert!(out.loads.is_materialized(), "{tag}: dense-born");
            let dense = out.loads.to_vec();
            assert_stats_match_dense(&out, &dense, &tag);
        }
    }
}

#[test]
fn weighted_outcomes_are_dense_born_and_consistent() {
    // Per-bin weights pin bin identities, so weighted outcomes are
    // dense-born under every engine; the histogram view is derived.
    let n = 96usize;
    let m = 96u64 * 25;
    let weights: Vec<f64> = (0..n).map(|j| 1.0 + (j % 7) as f64).collect();
    for engine in [Engine::Faithful, Engine::Histogram] {
        let cfg = RunConfig::new(n, m).with_engine(engine);
        let out = run_protocol(&WeightedAdaptive::new(weights.clone()), &cfg, 41);
        let tag = format!("weighted-adaptive {engine:?}");
        assert!(out.loads.is_materialized(), "{tag}: dense-born");
        out.validate();
        let dense = out.loads.to_vec();
        assert_stats_match_dense(&out, &dense, &tag);
        // The weighted forms agree with one-pass dense recomputation.
        let wpsi: f64 = dense
            .iter()
            .enumerate()
            .map(|(j, &l)| {
                let d = l as f64 - out.fair_share(j);
                d * d
            })
            .sum();
        assert!(
            (out.weighted_psi() - wpsi).abs() <= 1e-9 * wpsi.max(1.0),
            "{tag}: weighted psi"
        );
        let out1 = run_protocol(&WeightedOneChoice::new(weights.clone()), &cfg, 41);
        assert!(out1.loads.is_materialized());
        out1.validate();
    }
}

#[test]
fn materialization_is_deterministic_and_independent_of_timing() {
    // One seed, three observation schedules: never materialized,
    // materialized immediately, materialized after stats ran. The
    // dense vectors must be bit-identical — materialization is a pure
    // function of (histogram, reconstruction seed).
    let cfg = RunConfig::new(512, 512 * 30).with_engine(Engine::Histogram);
    for proto in protocols() {
        let a = run_protocol(proto.as_ref(), &cfg, 57);
        let b = run_protocol(proto.as_ref(), &cfg, 57);
        let c = run_protocol(proto.as_ref(), &cfg, 57);
        let tag = proto.dyn_name();
        let eager = b.loads.to_vec();
        let _ = (c.gap(), c.psi(), c.ln_phi(), c.max_overload());
        let late = c.loads.to_vec();
        assert_eq!(eager, late, "{tag}: stat timing changed materialization");
        assert_eq!(a.loads.as_slice(), &eager[..], "{tag}: replicate differs");
        // Materializing twice is the identity.
        assert_eq!(a.loads.as_slice(), a.loads.as_slice(), "{tag}");
        // And the materialized multiset is exactly the histogram
        // (compared by occupancy classes: the engine's histogram may
        // carry zero-count padding at a different base).
        assert_eq!(
            OccupancyHistogram::from_loads(&eager)
                .levels()
                .collect::<Vec<_>>(),
            a.loads.histogram().levels().collect::<Vec<_>>(),
            "{tag}: materialization changed the multiset"
        );
    }
}

#[test]
fn virtual_and_dense_outcomes_compare_equal_on_equal_multisets() {
    // Loads equality is multiset-blind only across identical seeds:
    // a virtual outcome equals its own materialized clone.
    let cfg = RunConfig::new(128, 128 * 10).with_engine(Engine::Histogram);
    let lazy = run_protocol(&Threshold, &cfg, 99);
    let mut eager = run_protocol(&Threshold, &cfg, 99);
    assert!(!lazy.loads.is_materialized());
    let _ = eager.loads.as_slice();
    assert!(eager.loads.is_materialized());
    assert_eq!(lazy, eager, "virtual vs materialized replicate");
    assert!(
        !lazy.loads.is_materialized(),
        "equality comparison materialized the virtual side"
    );
    // (It is allowed to materialize when representations differ — the
    // fast path only fires on matching virtual reconstructions.)
    eager.loads = Loads::from_vec(vec![0; 128]);
    assert_ne!(lazy, eager);
}
