//! Reallocation-based allocation schemes.
//!
//! Section 1 of the paper contrasts its *sample-only* protocols with
//! schemes that may *move balls after placement*:
//!
//! * [`crs`] — the self-balancing approach of Czumaj, Riley & Scheideler
//!   \[6\]: an initial `greedy[2]` placement followed by iterated switches
//!   of balls between their two recorded choices. Achieves (nearly)
//!   perfect balance `⌈m/n⌉`, at the price of reallocation steps, which
//!   the paper points out "are typically expensive".
//! * [`cuckoo`] — a cuckoo-hashing substrate (d bucket choices of size
//!   k, random-walk eviction), the data-structure incarnation of
//!   reallocation that the paper cites \[8\]; it backs the hashing example
//!   and the E10 threshold experiment.
//!
//! Both record their reallocation counts separately from sample counts so
//! Table 1's cost comparison is honest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crs;
pub mod cuckoo;

pub use crs::{Crs, CrsOutcome};
pub use cuckoo::{CuckooTable, InsertError};
