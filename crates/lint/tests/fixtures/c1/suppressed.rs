//! C1 suppressed fixture.
// lint:allow(C1): spike branch, ordering argument tracked in the CAS-engine issue
use std::sync::atomic::AtomicU64;

pub fn make() -> u64 {
    // lint:allow(C1): same spike as above
    let x = AtomicU64::new(0);
    x.into_inner()
}
