//! Criterion: replication-executor scaling and parallel-protocol round
//! costs.
//!
//! On a single-core host the executor should show no regression versus
//! inline execution (its self-scheduling overhead is one atomic per
//! task); on multicore hosts the same bench shows the speedup.

use bib_core::prelude::*;
use bib_parallel::protocols::{BoundedLoad, Collision};
use bib_parallel::{par_map, replicate_outcomes, ReplicateSpec};
use bib_rng::SeedSequence;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn bench_executor(c: &mut Criterion) {
    let cfg = RunConfig::new(512, 512 * 8).with_engine(Engine::Jump);
    let reps = 16u64;
    let mut group = c.benchmark_group("parallel/replicate");
    group.throughput(Throughput::Elements(reps * cfg.m));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    replicate_outcomes(
                        &Adaptive::paper(),
                        &cfg,
                        &ReplicateSpec::new(reps, 7).with_threads(threads),
                    )
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("parallel/par_map_overhead");
    group.throughput(Throughput::Elements(1024));
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| par_map(1024, threads, |i| i as u64 * 3)),
        );
    }
    group.finish();
}

fn bench_parallel_protocols(c: &mut Criterion) {
    let n = 1usize << 14;
    let mut group = c.benchmark_group("parallel/protocols");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("bounded-load(2)", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SeedSequence::new(seed).rng();
            BoundedLoad::new(2).run(n, n as u64, &mut rng)
        })
    });
    group.bench_function("collision(1)", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SeedSequence::new(seed).rng();
            Collision::new(1).run(n, n as u64, &mut rng)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_executor, bench_parallel_protocols
}
criterion_main!(benches);
