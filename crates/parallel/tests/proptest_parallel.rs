//! Property-based tests for the parallel substrate and protocols.

use bib_core::prelude::*;
use bib_parallel::protocols::{BoundedLoad, Collision};
use bib_parallel::{par_map, replicate_outcomes, ReplicateSpec};
use bib_rng::SeedSequence;
use proptest::prelude::*;

proptest! {
    /// par_map equals sequential map for any pure function, any thread
    /// count, any size.
    #[test]
    fn par_map_equals_sequential(
        count in 0usize..300,
        threads in 1usize..9,
        mult in 1u64..1000,
    ) {
        let f = |i: usize| (i as u64).wrapping_mul(mult).wrapping_add(7);
        let seq: Vec<u64> = (0..count).map(f).collect();
        let par = par_map(count, threads, f);
        prop_assert_eq!(seq, par);
    }

    /// Replication is schedule-independent: any two thread counts give
    /// identical outcome vectors.
    #[test]
    fn replication_thread_invariance(
        n in 1usize..32,
        m in 0u64..200,
        reps in 0u64..8,
        seed in 0u64..100,
        t1 in 1usize..5,
        t2 in 1usize..5,
    ) {
        let cfg = RunConfig::new(n, m).with_engine(Engine::Jump);
        let a = replicate_outcomes(
            &Adaptive::paper(),
            &cfg,
            &ReplicateSpec::new(reps, seed).with_threads(t1),
        );
        let b = replicate_outcomes(
            &Adaptive::paper(),
            &cfg,
            &ReplicateSpec::new(reps, seed).with_threads(t2),
        );
        prop_assert_eq!(a, b);
    }

    /// Bounded-load never exceeds its cap and conserves mass, for any
    /// feasible (n, m, cap).
    #[test]
    fn bounded_load_cap_invariant(
        n in 1usize..256,
        cap in 1u32..5,
        fill in 0.0f64..=1.0,
        seed in 0u64..200,
    ) {
        let m = ((cap as u64 * n as u64) as f64 * fill) as u64;
        let mut rng = SeedSequence::new(seed).rng();
        let out = BoundedLoad::new(cap).run(n, m, &mut rng);
        out.validate();
        prop_assert!(out.loads.iter().all(|&l| l <= cap));
        if m > 0 {
            prop_assert!(out.rounds() >= 1);
            prop_assert!(out.messages() >= m);
        }
    }

    /// Collision conserves mass and terminates for any config.
    #[test]
    fn collision_invariants(
        n in 1usize..256,
        m in 0u64..512,
        c in 1u32..5,
        seed in 0u64..200,
    ) {
        let mut rng = SeedSequence::new(seed).rng();
        let out = Collision::new(c).run(n, m, &mut rng);
        out.validate();
        if m > 0 {
            // Accept + request messages at least 2 per ball.
            prop_assert!(out.messages() >= 2 * m);
            // Without the stall fallback each round adds ≤ c per bin; the
            // fallback can dump the remainder, so the sound bound is:
            prop_assert!(out.max_load() as u64 <= (c as u64) * (out.rounds() as u64) + m);
        }
        let _ = c;
    }
}
