//! Plain load vector: the canonical representation of an allocation
//! state, `L^t = (L^t_1, …, L^t_n)` in the paper's notation.

/// The load of every bin plus the running ball count.
///
/// This is the simple, always-correct structure; the throughput-oriented
/// [`crate::partitioned::PartitionedBins`] maintains the same state with
/// extra indexing and is property-tested against this one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadVector {
    loads: Vec<u32>,
    total: u64,
}

impl LoadVector {
    /// `n` empty bins. Panics if `n == 0` — the process needs somewhere
    /// to put balls.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "LoadVector: need at least one bin");
        Self {
            loads: vec![0; n],
            total: 0,
        }
    }

    /// Reconstructs a state from explicit loads (used by tests and by the
    /// reallocation schemes that edit loads directly).
    pub fn from_loads(loads: Vec<u32>) -> Self {
        assert!(!loads.is_empty(), "LoadVector: need at least one bin");
        let total = loads.iter().map(|&l| l as u64).sum();
        Self { loads, total }
    }

    /// Number of bins `n`.
    pub fn n(&self) -> usize {
        self.loads.len()
    }

    /// Number of balls placed so far (`t` in the paper).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Load of bin `i`.
    #[inline]
    pub fn load(&self, i: usize) -> u32 {
        self.loads[i]
    }

    /// Adds one ball to bin `i`.
    #[inline]
    pub fn place(&mut self, i: usize) {
        self.loads[i] += 1;
        self.total += 1;
    }

    /// Removes one ball from bin `i` (reallocation schemes only).
    /// Panics if the bin is empty.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(self.loads[i] > 0, "remove from empty bin {i}");
        self.loads[i] -= 1;
        self.total -= 1;
    }

    /// Read-only view of the loads.
    pub fn as_slice(&self) -> &[u32] {
        &self.loads
    }

    /// Consumes into the raw load vector.
    pub fn into_loads(self) -> Vec<u32> {
        self.loads
    }

    /// Maximum load.
    pub fn max_load(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Minimum load.
    pub fn min_load(&self) -> u32 {
        self.loads.iter().copied().min().unwrap_or(0)
    }

    /// Max−min load gap (the smoothness measure of Corollary 3.5 /
    /// Lemma 4.2).
    pub fn gap(&self) -> u32 {
        self.max_load() - self.min_load()
    }

    /// Number of bins with load strictly below `t` (linear scan; the
    /// partitioned structure answers this in O(1)).
    pub fn count_below(&self, t: u32) -> usize {
        self.loads.iter().filter(|&&l| l < t).count()
    }

    /// Histogram of loads: `hist[l]` = number of bins with load exactly
    /// `l`, for `l` in `0..=max_load`.
    pub fn histogram(&self) -> Vec<u64> {
        let mut hist = vec![0u64; self.max_load() as usize + 1];
        for &l in &self.loads {
            hist[l as usize] += 1;
        }
        hist
    }

    /// Total number of *holes* at the target height `h`:
    /// `Σᵢ max(h − Lᵢ, 0)`. With `h = ⌈m/n⌉ + 1` this is the quantity
    /// `W_t` driving the proof of Theorem 4.1.
    pub fn holes(&self, h: u32) -> u64 {
        self.loads.iter().map(|&l| h.saturating_sub(l) as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let lv = LoadVector::new(5);
        assert_eq!(lv.n(), 5);
        assert_eq!(lv.total(), 0);
        assert_eq!(lv.max_load(), 0);
        assert_eq!(lv.gap(), 0);
        assert_eq!(lv.count_below(1), 5);
        assert_eq!(lv.count_below(0), 0);
    }

    #[test]
    #[should_panic]
    fn zero_bins_rejected() {
        LoadVector::new(0);
    }

    #[test]
    fn place_updates_everything() {
        let mut lv = LoadVector::new(3);
        lv.place(0);
        lv.place(0);
        lv.place(2);
        assert_eq!(lv.load(0), 2);
        assert_eq!(lv.load(1), 0);
        assert_eq!(lv.load(2), 1);
        assert_eq!(lv.total(), 3);
        assert_eq!(lv.max_load(), 2);
        assert_eq!(lv.min_load(), 0);
        assert_eq!(lv.gap(), 2);
    }

    #[test]
    fn remove_inverts_place() {
        let mut lv = LoadVector::new(2);
        lv.place(1);
        lv.remove(1);
        assert_eq!(lv, LoadVector::new(2));
    }

    #[test]
    #[should_panic]
    fn remove_from_empty_panics() {
        LoadVector::new(2).remove(0);
    }

    #[test]
    fn from_loads_round_trips() {
        let lv = LoadVector::from_loads(vec![3, 0, 1]);
        assert_eq!(lv.total(), 4);
        assert_eq!(lv.as_slice(), &[3, 0, 1]);
        assert_eq!(lv.clone().into_loads(), vec![3, 0, 1]);
    }

    #[test]
    fn histogram_counts_per_level() {
        let lv = LoadVector::from_loads(vec![0, 2, 2, 1, 0]);
        assert_eq!(lv.histogram(), vec![2, 1, 2]);
        let sum: u64 = lv.histogram().iter().sum();
        assert_eq!(sum, 5);
    }

    #[test]
    fn count_below_matches_definition() {
        let lv = LoadVector::from_loads(vec![0, 1, 1, 3]);
        assert_eq!(lv.count_below(0), 0);
        assert_eq!(lv.count_below(1), 1);
        assert_eq!(lv.count_below(2), 3);
        assert_eq!(lv.count_below(4), 4);
        assert_eq!(lv.count_below(100), 4);
    }

    #[test]
    fn holes_at_target_height() {
        let lv = LoadVector::from_loads(vec![2, 0, 3]);
        // h = 3: holes = 1 + 3 + 0 = 4.
        assert_eq!(lv.holes(3), 4);
        // h = 0: everything saturates to 0.
        assert_eq!(lv.holes(0), 0);
        // Identity: holes(h) = n·h − total when h ≥ max load.
        assert_eq!(lv.holes(5), 3 * 5 - 5);
    }
}
