//! Property-based tests for the numerical analysis substrate.

use bib_analysis::convolve::{
    convolve, is_non_increasing, lemma_a1_dot_products, majorizes, majorizes_with_tol,
};
use bib_analysis::special::{beta_inc, gamma_p, gamma_q, ln_factorial, ln_gamma, normal_cdf};
use bib_analysis::stats::{linear_fit, quantile};
use bib_analysis::{Binomial, Geometric, Poisson, Welford};
use proptest::prelude::*;

proptest! {
    /// ln Γ satisfies the recurrence Γ(x+1) = x·Γ(x).
    #[test]
    fn gamma_recurrence(x in 0.05f64..500.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()), "x={x}");
    }

    /// ln k! is monotone and matches the product form for small k.
    #[test]
    fn ln_factorial_monotone(k in 0u64..10_000) {
        prop_assert!(ln_factorial(k + 1) >= ln_factorial(k));
        prop_assert!((ln_factorial(k + 1) - ln_factorial(k) - ((k + 1) as f64).ln()).abs() < 1e-8);
    }

    /// P(a,x) + Q(a,x) = 1 over a broad domain.
    #[test]
    fn gamma_pq_complement(a in 0.05f64..200.0, x in 0.0f64..400.0) {
        let s = gamma_p(a, x) + gamma_q(a, x);
        prop_assert!((s - 1.0).abs() < 1e-9, "a={a} x={x} s={s}");
    }

    /// P(a,·) is a cdf: monotone in x, 0 at 0, → 1.
    #[test]
    fn gamma_p_monotone(a in 0.1f64..100.0, x in 0.0f64..200.0, dx in 0.0f64..10.0) {
        prop_assert!(gamma_p(a, x + dx) + 1e-12 >= gamma_p(a, x));
    }

    /// Incomplete beta symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
    #[test]
    fn beta_symmetry(a in 0.1f64..50.0, b in 0.1f64..50.0, x in 0.0f64..=1.0) {
        let lhs = beta_inc(a, b, x);
        let rhs = 1.0 - beta_inc(b, a, 1.0 - x);
        prop_assert!((lhs - rhs).abs() < 1e-8, "a={a} b={b} x={x}");
    }

    /// Poisson cdf equals the pmf partial sum (cross-implementation
    /// identity: continued fraction vs direct series).
    #[test]
    fn poisson_cdf_consistency(lambda in 0.01f64..60.0, k in 0u64..80) {
        let d = Poisson::new(lambda);
        let direct: f64 = (0..=k).map(|j| d.pmf(j)).sum();
        prop_assert!((d.cdf(k) - direct).abs() < 1e-8, "λ={lambda} k={k}");
    }

    /// Binomial cdf equals the pmf partial sum.
    #[test]
    fn binomial_cdf_consistency(n in 1u64..150, p in 0.0f64..=1.0, kf in 0.0f64..=1.0) {
        let k = ((n as f64) * kf) as u64;
        let d = Binomial::new(n, p);
        let direct: f64 = (0..=k).map(|j| d.pmf(j)).sum();
        prop_assert!((d.cdf(k) - direct).abs() < 1e-8, "n={n} p={p} k={k}");
    }

    /// Geometric: sf(k) = (1−p)^k exactly matches 1 − cdf(k).
    #[test]
    fn geometric_sf_cdf(p in 0.01f64..=1.0, k in 0u64..200) {
        let g = Geometric::new(p);
        prop_assert!((g.sf(k) - (1.0 - g.cdf(k))).abs() < 1e-10);
    }

    /// Normal cdf is monotone and symmetric.
    #[test]
    fn normal_cdf_properties(x in -8.0f64..8.0, dx in 0.0f64..2.0) {
        prop_assert!(normal_cdf(x + dx) + 1e-12 >= normal_cdf(x));
        prop_assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-10);
    }

    /// Convolution of probability vectors is a probability vector, and
    /// the sum's tail majorises each summand's tail shifted by 0 (i.e.
    /// X + Y stochastically dominates X when Y ≥ 0).
    #[test]
    fn convolution_properties(
        p in prop::collection::vec(0.0f64..1.0, 1..12),
        q in prop::collection::vec(0.0f64..1.0, 1..12),
    ) {
        let sp: f64 = p.iter().sum();
        let sq: f64 = q.iter().sum();
        prop_assume!(sp > 0.0 && sq > 0.0);
        let p: Vec<f64> = p.iter().map(|x| x / sp).collect();
        let q: Vec<f64> = q.iter().map(|x| x / sq).collect();
        let c = convolve(&p, &q);
        let total: f64 = c.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert_eq!(c.len(), p.len() + q.len() - 1);
        // Stochastic dominance: P[X+Y ≥ j] ≥ P[X ≥ j] (Y ≥ 0 a.s.).
        prop_assert!(majorizes_with_tol(&c, &p, 1e-9));
    }

    /// Lemma A.1 verified on random instances: whenever the premises
    /// hold, the conclusion holds.
    #[test]
    fn lemma_a1_random_instances(
        q in prop::collection::vec(0.0f64..1.0, 2..10),
        shift in prop::collection::vec(0.0f64..0.3, 2..10),
        r0 in 0.1f64..5.0,
        decay in 0.3f64..1.0,
    ) {
        // Build p by moving mass upward from q (guarantees p majorises q
        // after normalising consistently): p_k = q_k adjusted by pushing
        // `shift` mass from cell k to cell k+1.
        let len = q.len().min(shift.len());
        let s: f64 = q[..len].iter().sum();
        prop_assume!(s > 0.0);
        let q: Vec<f64> = q[..len].iter().map(|x| x / s).collect();
        let mut p = q.clone();
        p.push(0.0);
        for k in 0..len {
            let moved = (q[k] * shift[k]).min(p[k]);
            p[k] -= moved;
            p[k + 1] += moved;
        }
        // Non-increasing r.
        let r: Vec<f64> = (0..p.len()).map(|k| r0 * decay.powi(k as i32)).collect();
        prop_assert!(majorizes(&p, &q));
        prop_assert!(is_non_increasing(&r));
        let (dp, dq) = lemma_a1_dot_products(&p, &q, &r);
        prop_assert!(dp <= dq + 1e-9, "dp={dp} dq={dq}");
    }

    /// Welford merge associativity/equivalence on arbitrary splits.
    #[test]
    fn welford_merge_any_split(
        data in prop::collection::vec(-1e6f64..1e6, 1..100),
        cut in 0usize..100,
    ) {
        let cut = cut.min(data.len());
        let whole: Welford = data.iter().copied().collect();
        let mut left: Welford = data[..cut].iter().copied().collect();
        let right: Welford = data[cut..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (left.sample_variance() - whole.sample_variance()).abs()
                < 1e-5 * (1.0 + whole.sample_variance().abs())
        );
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantile_monotone(
        data in prop::collection::vec(-1e3f64..1e3, 1..50),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let a = quantile(&data, lo);
        let b = quantile(&data, hi);
        prop_assert!(a <= b + 1e-12);
        let mn = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let mx = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= mn - 1e-12 && b <= mx + 1e-12);
    }

    /// Linear fit recovers exact affine relationships.
    #[test]
    fn linear_fit_exact(a in -100.0f64..100.0, b in -100.0f64..100.0, n in 3usize..50) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| a + b * x).collect();
        let (ah, bh, r2) = linear_fit(&xs, &ys);
        prop_assert!((ah - a).abs() < 1e-6 * (1.0 + a.abs()));
        prop_assert!((bh - b).abs() < 1e-6 * (1.0 + b.abs()));
        prop_assert!(r2 > 1.0 - 1e-9 || b.abs() < 1e-9);
    }
}
