//! The committed allowlist: `lint.toml` at the workspace root.
//!
//! Grandfathered findings are declared per `(rule, file)` with a hard
//! `max` count and a mandatory reason:
//!
//! ```toml
//! [[allow]]
//! rule = "N1"
//! file = "crates/core/src/histogram.rs"
//! max = 24
//! reason = "occupancy-class indices are bounded by the load range"
//! ```
//!
//! Semantics are deliberately ratcheting: a file may carry at most
//! `max` findings of that rule (so new violations in an allowlisted
//! file still fail), and an entry that matches *zero* findings is
//! itself an error (so the allowlist can only shrink as debt is paid
//! down). The parser covers exactly the TOML subset above — `[[allow]]`
//! tables with string and integer scalars — because the environment
//! has no registry access for a real TOML crate.

use crate::rules::{Finding, RULE_IDS};
use std::collections::BTreeMap;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule identifier the entry covers.
    pub rule: String,
    /// Workspace-relative file the entry covers.
    pub file: String,
    /// Maximum number of findings tolerated for `(rule, file)`.
    pub max: u32,
    /// Why the findings are sound (required, non-empty).
    pub reason: String,
}

/// Parses the `lint.toml` subset. Returns entries or a message naming
/// the offending line.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    struct Partial {
        rule: Option<String>,
        file: Option<String>,
        max: Option<u32>,
        reason: Option<String>,
        line: usize,
    }
    let mut entries = Vec::new();
    let mut current: Option<Partial> = None;
    let finish = |p: Partial, entries: &mut Vec<AllowEntry>| -> Result<(), String> {
        let at = p.line;
        let entry = AllowEntry {
            rule: p
                .rule
                .ok_or(format!("[[allow]] at line {at}: missing `rule`"))?,
            file: p
                .file
                .ok_or(format!("[[allow]] at line {at}: missing `file`"))?,
            max: p
                .max
                .ok_or(format!("[[allow]] at line {at}: missing `max`"))?,
            reason: p
                .reason
                .ok_or(format!("[[allow]] at line {at}: missing `reason`"))?,
        };
        if !RULE_IDS.contains(&entry.rule.as_str()) {
            return Err(format!(
                "[[allow]] at line {at}: unknown rule `{}` (known: {RULE_IDS:?})",
                entry.rule
            ));
        }
        if entry.reason.trim().is_empty() {
            return Err(format!("[[allow]] at line {at}: empty `reason`"));
        }
        if entry.max == 0 {
            return Err(format!(
                "[[allow]] at line {at}: max = 0 allows nothing; delete the entry"
            ));
        }
        entries.push(entry);
        Ok(())
    };
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = current.take() {
                finish(p, &mut entries)?;
            }
            current = Some(Partial {
                rule: None,
                file: None,
                max: None,
                reason: None,
                line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint.toml line {lineno}: expected `key = value`"));
        };
        let Some(p) = current.as_mut() else {
            return Err(format!(
                "lint.toml line {lineno}: `{}` outside an [[allow]] table",
                key.trim()
            ));
        };
        let value = value.trim();
        match key.trim() {
            "rule" => p.rule = Some(parse_string(value, lineno)?),
            "file" => p.file = Some(parse_string(value, lineno)?),
            "reason" => p.reason = Some(parse_string(value, lineno)?),
            "max" => {
                p.max = Some(value.parse().map_err(|_| {
                    format!("lint.toml line {lineno}: `max` must be a positive integer")
                })?)
            }
            other => {
                return Err(format!("lint.toml line {lineno}: unknown key `{other}`"));
            }
        }
    }
    if let Some(p) = current.take() {
        finish(p, &mut entries)?;
    }
    Ok(entries)
}

/// Strips a `#` comment that is not inside a basic string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Parses a basic TOML string (`"…"` with `\"` and `\\` escapes).
fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or(format!("lint.toml line {lineno}: expected a \"string\""))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Applies the allowlist: findings covered by an entry (count ≤ max)
/// are suppressed; over-budget groups keep all their findings with a
/// note; entries matching nothing become `allowlist` findings so the
/// file ratchets monotonically toward empty.
pub fn apply_allowlist(findings: Vec<Finding>, entries: &[AllowEntry]) -> Vec<Finding> {
    let mut groups: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    let mut out = Vec::new();
    for f in findings {
        let key = (f.rule.to_string(), f.file.clone());
        if entries.iter().any(|e| e.rule == key.0 && e.file == key.1) {
            groups.entry(key).or_default().push(f);
        } else {
            out.push(f);
        }
    }
    for e in entries {
        let key = (e.rule.clone(), e.file.clone());
        match groups.remove(&key) {
            None => out.push(Finding {
                rule: "allowlist",
                file: "lint.toml".to_string(),
                line: 0,
                message: format!(
                    "stale entry: no {} findings in {} — delete it (the allowlist only ratchets \
                     down)",
                    e.rule, e.file
                ),
            }),
            Some(group) if group.len() as u32 > e.max => {
                let over = group.len();
                for mut f in group {
                    f.message = format!(
                        "{} [allowlisted max {} exceeded: {} findings]",
                        f.message, e.max, over
                    );
                    out.push(f);
                }
            }
            Some(_) => {} // grandfathered
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn parses_entries_and_comments() {
        let toml = r#"
# grandfathered
[[allow]]
rule = "N1" # trailing comment
file = "crates/core/src/x.rs"
max = 3
reason = "indices bounded by construction"
"#;
        let e = parse_allowlist(toml).expect("parses");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].rule, "N1");
        assert_eq!(e[0].max, 3);
    }

    #[test]
    fn rejects_missing_fields_and_unknown_rules() {
        assert!(parse_allowlist("[[allow]]\nrule = \"N1\"\n").is_err());
        let bad = "[[allow]]\nrule = \"Z9\"\nfile = \"a\"\nmax = 1\nreason = \"r\"\n";
        assert!(parse_allowlist(bad)
            .expect_err("unknown rule")
            .contains("Z9"));
        assert!(parse_allowlist("x = 1\n").is_err());
        let zero = "[[allow]]\nrule = \"N1\"\nfile = \"a\"\nmax = 0\nreason = \"r\"\n";
        assert!(parse_allowlist(zero).is_err());
    }

    #[test]
    fn allowlist_suppresses_up_to_max() {
        let entries = vec![AllowEntry {
            rule: "N1".to_string(),
            file: "a.rs".to_string(),
            max: 2,
            reason: "r".to_string(),
        }];
        let kept = apply_allowlist(vec![f("N1", "a.rs", 1), f("N1", "a.rs", 2)], &entries);
        assert!(kept.is_empty());
    }

    #[test]
    fn allowlist_over_budget_reports_all() {
        let entries = vec![AllowEntry {
            rule: "N1".to_string(),
            file: "a.rs".to_string(),
            max: 1,
            reason: "r".to_string(),
        }];
        let kept = apply_allowlist(
            vec![f("N1", "a.rs", 1), f("N1", "a.rs", 2), f("P1", "b.rs", 3)],
            &entries,
        );
        assert_eq!(kept.len(), 3);
        assert!(kept.iter().any(|x| x.message.contains("max 1 exceeded")));
    }

    #[test]
    fn stale_entries_are_findings() {
        let entries = vec![AllowEntry {
            rule: "D2".to_string(),
            file: "gone.rs".to_string(),
            max: 1,
            reason: "r".to_string(),
        }];
        let kept = apply_allowlist(vec![], &entries);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "allowlist");
    }
}
