//! Stale-information extension: `adaptive` with batched count updates.
//!
//! The paper notes that `adaptive` requires each ball to know how many
//! balls have been placed — "comparable to the (d,k)-memory model, where
//! every ball communicates with the ball that comes right after it". In
//! a distributed dispatcher that knowledge is often *stale*: the running
//! count is synchronised only every `b` balls. This module models that:
//! ball `i` uses the acceptance bound of ball `i' = ⌊(i−1)/b⌋·b + 1`
//! (the first ball of its batch), i.e. the count frozen at the last
//! batch boundary.
//!
//! Properties (proved by the same arguments as the paper's, provided
//! `b ≤ n`):
//!
//! * feasibility: within a batch the bound is that of a ball ≤ `i`, and
//!   at most `i − 1` balls are placed, so an accepting bin always exists
//!   (if all bins had `load ≥ ⌈i'/n⌉ + 1` then `i − 1 ≥ n⌈i'/n⌉ + n ≥
//!   i' + n ≥ i`, a contradiction for `b ≤ n`);
//! * max-load: the bound never exceeds the fresh-count bound, so the
//!   `⌈m/n⌉ + 1` guarantee is preserved *exactly*;
//! * cost: staleness only shrinks the accepting set, so allocation time
//!   weakly increases with `b` — the `batched_adaptive` experiment
//!   quantifies by how much.

use crate::level_batched::{allocate_scheduled, ThresholdSchedule};
use crate::protocol::{Observer, Outcome, Protocol, RunConfig};
use crate::protocols::Adaptive;
use bib_rng::Rng64;

/// `adaptive` with the ball count synchronised every `b` balls.
#[derive(Debug, Clone, Copy)]
pub struct BatchedAdaptive {
    batch: u64,
}

impl BatchedAdaptive {
    /// Batch size `b ≥ 1`. `b = 1` is exactly the paper's `adaptive`.
    pub fn new(batch: u64) -> Self {
        assert!(batch >= 1, "batch size must be ≥ 1");
        Self { batch }
    }

    /// The batch size.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// The stale ball index whose bound ball `i` uses.
    pub fn stale_index(&self, i: u64) -> u64 {
        debug_assert!(i >= 1);
        (i - 1) / self.batch * self.batch + 1
    }
}

impl ThresholdSchedule for BatchedAdaptive {
    fn bound(&self, cfg: &RunConfig, ball: u64) -> u32 {
        Adaptive::paper().acceptance_bound(cfg.n, self.stale_index(ball))
    }

    fn segment_end(&self, _cfg: &RunConfig, ball: u64) -> u64 {
        // The stale index — hence the bound — is frozen for the batch.
        self.stale_index(ball) + self.batch - 1
    }
}

impl Protocol for BatchedAdaptive {
    fn name(&self) -> String {
        format!("adaptive/batch={}", self.batch)
    }

    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        assert!(
            self.batch <= cfg.n as u64,
            "feasibility requires batch size ({}) ≤ n ({})",
            self.batch,
            cfg.n
        );
        let mut out = allocate_scheduled(self, cfg, rng, obs);
        out.scenario = crate::scenario::Scenario::batched(self.batch);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Engine, NullObserver};
    use crate::run::run_protocol;
    use bib_rng::SplitMix64;

    #[test]
    fn stale_index_structure() {
        let b = BatchedAdaptive::new(4);
        assert_eq!(b.stale_index(1), 1);
        assert_eq!(b.stale_index(4), 1);
        assert_eq!(b.stale_index(5), 5);
        assert_eq!(b.stale_index(9), 9);
        assert_eq!(b.stale_index(12), 9);
    }

    #[test]
    fn batch_one_equals_adaptive_exactly() {
        let cfg = RunConfig::new(32, 321).with_engine(Engine::Jump);
        let b1 = BatchedAdaptive::new(1);
        let mut r1 = SplitMix64::new(5);
        let mut r2 = SplitMix64::new(5);
        let a = b1.allocate(&cfg, &mut r1, &mut NullObserver);
        let b = Adaptive::paper().allocate(&cfg, &mut r2, &mut NullObserver);
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.total_samples, b.total_samples);
    }

    #[test]
    fn max_load_guarantee_survives_staleness() {
        for batch in [1u64, 7, 16, 64] {
            let cfg = RunConfig::new(64, 1000).with_engine(Engine::Jump);
            for seed in 0..5u64 {
                let out = run_protocol(&BatchedAdaptive::new(batch), &cfg, seed);
                out.validate();
                assert!(
                    out.max_load() as u64 <= cfg.max_load_bound(),
                    "batch={batch} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn staleness_weakly_increases_cost() {
        // Mean over replicates: T(b=n) ≥ T(b=1) − noise.
        let n = 256usize;
        let cfg = RunConfig::new(n, 16 * n as u64).with_engine(Engine::Jump);
        let mean_t = |batch: u64| -> f64 {
            (0..10u64)
                .map(|s| run_protocol(&BatchedAdaptive::new(batch), &cfg, s).total_samples as f64)
                .sum::<f64>()
                / 10.0
        };
        let fresh = mean_t(1);
        let stale = mean_t(n as u64);
        assert!(
            stale > fresh * 0.98,
            "stale {stale} unexpectedly below fresh {fresh}"
        );
    }

    #[test]
    #[should_panic]
    fn batch_larger_than_n_rejected() {
        let cfg = RunConfig::new(8, 100);
        let mut rng = SplitMix64::new(1);
        BatchedAdaptive::new(9).allocate(&cfg, &mut rng, &mut NullObserver);
    }
}
