//! **E2 — Figure 3(a)**: average allocation time ("runtime") vs `m` for
//! `adaptive` and `threshold`.
//!
//! The paper plots the average over 100 simulations of the total number
//! of bin choices, for `m·10⁻⁴` on the x-axis. We reproduce the same
//! series (plus 95% confidence intervals) with `n = 10⁴` bins.
//!
//! Expected shape: threshold's curve hugs the diagonal (runtime → m,
//! Theorem 4.1); adaptive's is a line with a slightly larger slope
//! (runtime → c·m for a small constant c, Theorem 3.1).
//!
//! ```text
//! cargo run --release -p bib-bench --bin figure3a [-- --quick --csv]
//! ```

use bib_bench::{f, ExpArgs, Table};
use bib_core::prelude::*;
use bib_parallel::replicate_outcomes;

fn main() {
    let args = ExpArgs::parse();
    let n = args.pick(10_000usize, 1_000usize);
    let reps = args.reps_or(100, 10);
    // m from 2·10⁵ to 10⁶ step 10⁵ at n = 10⁴ (scaled in quick mode).
    let ms: Vec<u64> = (2..=10).map(|k| k as u64 * 10 * n as u64).collect();

    println!("# Figure 3(a): average allocation time, n = {n}, {reps} replicates\n");
    let mut table = Table::new(vec![
        "m_e4",
        "adaptive_T_e4",
        "adaptive_ci95",
        "threshold_T_e4",
        "threshold_ci95",
        "adaptive_T/m",
        "threshold_T/m",
    ]);

    for &m in &ms {
        let cfg = RunConfig::new(n, m).with_engine(args.engine_or(Engine::Jump));
        let spec = args.replicate_spec(reps);
        let ada = replicate_outcomes(&Adaptive::paper(), &cfg, &spec);
        let thr = replicate_outcomes(&Threshold, &cfg, &spec);
        let sa = bib_parallel::replicate::summarize_metric(&ada, |o| o.total_samples as f64);
        let st = bib_parallel::replicate::summarize_metric(&thr, |o| o.total_samples as f64);
        table.row(vec![
            f(m as f64 * 1e-4),
            f(sa.mean * 1e-4),
            f(1.96 * sa.stderr * 1e-4),
            f(st.mean * 1e-4),
            f(1.96 * st.stderr * 1e-4),
            f(sa.mean / m as f64),
            f(st.mean / m as f64),
        ]);
    }

    table.print(&args);
    println!(
        "\n# Expected shape: threshold_T/m -> 1 from above; adaptive_T/m -> small constant > 1."
    );
}
