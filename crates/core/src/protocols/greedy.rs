//! `greedy[d]` — Azar, Broder, Karlin & Upfal's d-choice process.
//!
//! Every ball samples `d` uniform bins (with replacement) and joins the
//! least loaded, so allocation time is exactly `d·m` samples. For
//! `m = n` the maximum load is `ln ln n / ln d + O(1)` w.h.p. [4]; in the
//! heavily loaded case `m/n + ln ln n / ln d + O(1)` [5] — the "power of
//! two choices". Compared to the paper's protocols it spends `d×` the
//! samples yet cannot reach the `⌈m/n⌉ + 1` guarantee.

use crate::histogram::{drive_histogram, HistogramSchedule, HistogramSegment, LandingRule};
use crate::protocol::{drive_sequential, Engine, Observer, Outcome, Protocol, RunConfig};
use bib_rng::{Rng64, RngExt};

/// Tie-breaking rule when several sampled bins share the minimum load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Choose uniformly among the tied bins (the standard symmetric
    /// rule).
    #[default]
    Random,
    /// Choose the first sampled among the tied bins (cheap, slightly
    /// asymmetric; exposed for the ablation flag in the Table 1 binary).
    FirstSampled,
}

/// The `greedy[d]` protocol.
#[derive(Debug, Clone, Copy)]
pub struct GreedyD {
    d: u32,
    tie: TieBreak,
}

impl GreedyD {
    /// `d` choices with random tie-breaking; panics if `d == 0`.
    pub fn new(d: u32) -> Self {
        assert!(d >= 1, "greedy[d] needs d ≥ 1");
        Self {
            d,
            tie: TieBreak::Random,
        }
    }

    /// Overrides the tie-breaking rule.
    pub fn with_tie_break(mut self, tie: TieBreak) -> Self {
        self.tie = tie;
        self
    }

    /// The number of choices `d`.
    pub fn d(&self) -> u32 {
        self.d
    }
}

impl HistogramSchedule for GreedyD {
    fn histogram_segment(&self, cfg: &RunConfig, _ball: u64) -> HistogramSegment {
        // The least loaded of d uniform samples is a pure function of
        // the occupancy CDF, and both tie-break rules land in the same
        // load class — so the histogram engine covers every variant.
        HistogramSegment {
            rule: LandingRule::LeastOfD(self.d),
            end: cfg.m,
        }
    }
}

impl Protocol for GreedyD {
    fn name(&self) -> String {
        match self.tie {
            TieBreak::Random => format!("greedy[{}]", self.d),
            TieBreak::FirstSampled => format!("greedy[{}]/first", self.d),
        }
    }

    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        // `Concurrent` has no fixed-sample path: resolve it like
        // `Auto` (documented on the `Engine` enum).
        let engine = match cfg.engine {
            Engine::Auto | Engine::Concurrent => Engine::auto_fixed(cfg.n, cfg.m),
            engine => engine,
        };
        if engine == Engine::Histogram {
            // The d-choice landing class is computable from the
            // histogram CDF, which makes greedy feasible at m = n²
            // scales for the first time (see `crate::histogram`).
            return drive_histogram(self.name(), cfg, rng, obs, self);
        }
        let d = self.d;
        let tie = self.tie;
        drive_sequential(self.name(), cfg, rng, obs, move |bins, _ball, rng| {
            let n = bins.n();
            let mut best = rng.range_usize(n);
            let mut best_load = bins.load(best);
            let mut ties = 1u32;
            for _ in 1..d {
                let c = rng.range_usize(n);
                let l = bins.load(c);
                if l < best_load {
                    best = c;
                    best_load = l;
                    ties = 1;
                } else if l == best_load && tie == TieBreak::Random {
                    // Reservoir-style uniform choice among tied minima.
                    ties += 1;
                    if rng.range_u64(ties as u64) == 0 {
                        best = c;
                    }
                }
            }
            bins.place(best);
            (best, d as u64)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::NullObserver;
    use crate::protocols::OneChoice;
    use bib_rng::SplitMix64;

    #[test]
    fn allocation_time_is_exactly_dm() {
        for d in [1u32, 2, 3, 5] {
            let cfg = RunConfig::new(16, 200);
            let mut rng = SplitMix64::new(d as u64);
            let out = GreedyD::new(d).allocate(&cfg, &mut rng, &mut NullObserver);
            out.validate();
            assert_eq!(out.total_samples, 200 * d as u64, "d={d}");
            assert_eq!(out.max_samples_per_ball, d as u64);
        }
    }

    #[test]
    fn greedy1_is_one_choice_in_disguise() {
        // d = 1 must behave exactly like the single-choice process given
        // the same random stream.
        let cfg = RunConfig::new(32, 300);
        let mut r1 = SplitMix64::new(42);
        let mut r2 = SplitMix64::new(42);
        let a = GreedyD::new(1).allocate(&cfg, &mut r1, &mut NullObserver);
        let b = OneChoice.allocate(&cfg, &mut r2, &mut NullObserver);
        assert_eq!(a.loads, b.loads);
    }

    #[test]
    fn two_choices_beat_one_on_max_load() {
        // Power of two choices: at m = n the max load should (with high
        // probability at this size) be strictly below one-choice's.
        let n = 4096usize;
        let cfg = RunConfig::new(n, n as u64);
        let mut rng = SplitMix64::new(7);
        let one = OneChoice.allocate(&cfg, &mut rng, &mut NullObserver);
        let two = GreedyD::new(2).allocate(&cfg, &mut rng, &mut NullObserver);
        assert!(
            two.max_load() < one.max_load(),
            "greedy[2] max {} !< one-choice max {}",
            two.max_load(),
            one.max_load()
        );
        assert!(two.max_load() <= 4, "greedy[2] max load {}", two.max_load());
    }

    #[test]
    fn tie_break_variants_run_and_name_correctly() {
        let g = GreedyD::new(2).with_tie_break(TieBreak::FirstSampled);
        assert_eq!(g.name(), "greedy[2]/first");
        let cfg = RunConfig::new(8, 64);
        let mut rng = SplitMix64::new(9);
        let out = g.allocate(&cfg, &mut rng, &mut NullObserver);
        out.validate();
    }

    #[test]
    #[should_panic]
    fn zero_choices_rejected() {
        GreedyD::new(0);
    }
}
