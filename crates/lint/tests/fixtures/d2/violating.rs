//! D2 violating fixture: hash-order iteration in an Outcome crate.
use std::collections::HashMap;

pub fn tally(keys: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
    }
    counts.into_iter().collect() // nondeterministic order
}
