//! Shared harness for the experiment binaries.
//!
//! Every table and figure of the paper has a binary under `src/bin/`
//! (see DESIGN.md §4 for the experiment index). This small library holds
//! what they share: command-line handling and aligned-table/CSV output.
//!
//! All binaries accept:
//!
//! * `--quick` — shrink sizes/replicates for a fast smoke run;
//! * `--seed <u64>` — master seed (default 2013);
//! * `--reps <u64>` — override the replicate count;
//! * `--engine <faithful|jump|level-batched|histogram|auto>` — override
//!   the simulation engine (threshold-style protocols support all five;
//!   `one-choice`/`greedy[d]` and the weighted family additionally
//!   understand `histogram` and `auto`);
//! * `--threads <n>` — worker threads for replicated/parallel cells
//!   (default: machine parallelism; `1` forces serial execution). On a
//!   single-replicate parallel-round run the threads move *inside* the
//!   run: the concurrent engine shares one placement across workers;
//! * `--racy` — opt out of the concurrent engine's deterministic mode:
//!   placements are ordered by true contention (statistically validated
//!   against the faithful path, but not bit-reproducible). Serial
//!   engines ignore it;
//! * `--out <path>` — write the tables (in the chosen format) to a file
//!   instead of stdout; commentary stays on stdout. Multiple tables
//!   append in order;
//! * `--csv` — emit machine-readable CSV instead of an aligned table;
//! * `--no-loads` — histogram-only sweep mode: every statistic comes
//!   from the occupancy histogram and the binary asserts that no
//!   outcome ever materializes its dense per-bin vector, so memory
//!   stays independent of `n` (the `n = 10⁹` regime).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bib_core::protocol::Engine;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpArgs {
    /// Shrink the experiment for a smoke run.
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
    /// Replicate-count override.
    pub reps: Option<u64>,
    /// Engine override for threshold-style protocols.
    pub engine: Option<Engine>,
    /// Worker-thread override for replicated cells (`Some(1)` = serial).
    pub threads: Option<usize>,
    /// Concurrent engine: racy (contention-ordered) instead of the
    /// deterministic per-chunk-stream mode.
    pub racy: bool,
    /// Table output path (`None` = stdout).
    pub out: Option<String>,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
    /// Histogram-only sweep mode: the binary must compute every
    /// statistic from the occupancy histogram and assert that no
    /// outcome ever materializes its dense load vector — the mode that
    /// makes `n = 10⁹` sweeps memory-independent of `n`.
    pub no_loads: bool,
    /// Whether the `--out` file has been started (first emit truncates,
    /// later emits append) — interior state so a long run never leaves
    /// a destroyed file behind before it has something to write.
    out_started: std::cell::Cell<bool>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self::new()
    }
}

impl ExpArgs {
    /// The defaults every binary starts from (seed 2013, full sizes,
    /// stdout tables).
    pub fn new() -> Self {
        Self {
            quick: false,
            seed: 2013,
            reps: None,
            engine: None,
            threads: None,
            racy: false,
            out: None,
            csv: false,
            no_loads: false,
            out_started: std::cell::Cell::new(false),
        }
    }

    /// Parses `std::env::args`, panicking with a usage message on
    /// unknown flags (these are internal tools; fail loudly).
    pub fn parse() -> Self {
        Self::parse_with(|_, _| false)
    }

    /// [`ExpArgs::parse`] with an escape hatch for binary-specific
    /// flags: `extra(flag, args)` returns `true` if it consumed the
    /// flag (pulling any value from `args` itself).
    pub fn parse_with<F>(mut extra: F) -> Self
    where
        F: FnMut(&str, &mut std::env::Args) -> bool,
    {
        let mut out = Self::new();
        let mut args = std::env::args();
        args.next(); // program name
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--racy" => out.racy = true,
                "--csv" => out.csv = true,
                "--no-loads" => out.no_loads = true,
                "--seed" => {
                    out.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs a u64");
                }
                "--reps" => {
                    out.reps = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--reps needs a u64"),
                    );
                }
                "--engine" => {
                    out.engine =
                        Some(args.next().and_then(|v| v.parse().ok()).expect(
                            "--engine needs faithful, jump, level-batched, histogram or auto",
                        ));
                }
                "--threads" => {
                    out.threads = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--threads needs a positive integer"),
                    );
                }
                "--out" => {
                    out.out = Some(args.next().expect("--out needs a path"));
                }
                other => {
                    if !extra(other, &mut args) {
                        panic!(
                            "unknown flag {other}; supported: --quick --csv --no-loads \
                             --racy --seed <u64> --reps <u64> \
                             --engine <faithful|jump|level-batched|histogram|auto|concurrent> \
                             --threads <n> --out <path>"
                        )
                    }
                }
            }
        }
        out
    }

    /// Picks the replicate count: explicit `--reps` wins, else `quick`
    /// vs `full` defaults.
    pub fn reps_or(&self, full: u64, quick: u64) -> u64 {
        self.reps.unwrap_or(if self.quick { quick } else { full })
    }

    /// Picks the engine: explicit `--engine` wins, else the experiment's
    /// default.
    pub fn engine_or(&self, default: Engine) -> Engine {
        self.engine.unwrap_or(default)
    }

    /// Worker threads for replicated cells: explicit `--threads` wins,
    /// else machine parallelism.
    pub fn threads_or_available(&self) -> usize {
        self.threads.unwrap_or_else(bib_parallel::available_threads)
    }

    /// A [`bib_parallel::ReplicateSpec`] honouring `--threads`.
    pub fn replicate_spec(&self, reps: u64) -> bib_parallel::ReplicateSpec {
        let spec = bib_parallel::ReplicateSpec::new(reps, self.seed);
        match self.threads {
            Some(t) => spec.with_threads(t),
            None => spec,
        }
    }

    /// The [`RunConfig`](bib_core::protocol::RunConfig) for one
    /// parallel-round cell. With more than one replicate, `--threads`
    /// parallelizes the replicates and each run stays serial. With
    /// exactly one replicate the threads move *inside* the run: the
    /// config carries the thread count, and the default engine is
    /// promoted to `Auto` so the round family resolves it to the
    /// concurrent single-run engine (an explicit `--engine` still
    /// wins). `--racy` is forwarded either way — serial engines ignore
    /// it.
    pub fn round_run_config(
        &self,
        n: usize,
        m: u64,
        reps: u64,
        default: Engine,
    ) -> bib_core::protocol::RunConfig {
        let threads = self.threads_or_available();
        let single = reps == 1 && threads > 1;
        let engine = self.engine_or(if single { Engine::Auto } else { default });
        let mut cfg = bib_core::protocol::RunConfig::new(n, m)
            .with_engine(engine)
            .with_racy(self.racy);
        if single {
            cfg = cfg.with_threads(threads);
        }
        cfg
    }

    /// One human-readable line naming the execution path
    /// [`ExpArgs::round_run_config`] selected, for experiment headers.
    pub fn round_path_header(&self, reps: u64, default: Engine) -> String {
        let threads = self.threads_or_available();
        let single = reps == 1 && threads > 1;
        let engine = self.engine_or(if single { Engine::Auto } else { default });
        let concurrent =
            matches!(engine, Engine::Concurrent) || (single && matches!(engine, Engine::Auto));
        if concurrent {
            let mode = if self.racy { "racy" } else { "deterministic" };
            format!("# path: concurrent single-run engine, {threads} threads, {mode} mode")
        } else {
            format!(
                "# path: {} engine per run, replicates across {threads} thread(s)",
                engine.name()
            )
        }
    }

    /// In `--no-loads` mode, asserts that `out` never materialized its
    /// dense load vector (no-op otherwise). Sweep binaries call this on
    /// every outcome they fold into a table, making the histogram-only
    /// claim an enforced invariant rather than a hope.
    pub fn assert_lazy(&self, out: &bib_core::protocol::Outcome, ctx: &str) {
        if self.no_loads {
            assert!(
                !out.loads.is_materialized(),
                "--no-loads: {ctx} materialized its load vector"
            );
        }
    }

    /// Picks any size parameter by mode.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Emits one rendered table (or any other payload) to the sink the
    /// flags selected: written to `--out` if given (first emit truncates,
    /// the rest of the run appends — so an interrupted run never leaves
    /// an emptied file behind), stdout otherwise.
    pub fn emit(&self, payload: &str) {
        match &self.out {
            None => print!("{payload}"),
            Some(path) => {
                use std::io::Write as _;
                let first = !self.out_started.replace(true);
                let mut f = std::fs::OpenOptions::new()
                    .create(true)
                    .truncate(first)
                    .append(!first)
                    .write(true)
                    .open(path)
                    .unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
                f.write_all(payload.as_bytes())
                    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            }
        }
    }
}

/// An aligned text table that can also render as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders aligned text (right-aligned numeric-ish cells).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut s = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        s.push_str(&fmt_row(&self.headers, &widths));
        s.push('\n');
        s.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&fmt_row(row, &widths));
            s.push('\n');
        }
        s
    }

    /// Renders CSV (no quoting; cells are numeric or simple tokens).
    pub fn csv(&self) -> String {
        let mut s = self.headers.join(",");
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.join(","));
            s.push('\n');
        }
        s
    }

    /// Emits in the format selected by `args`, to stdout or `--out`.
    pub fn print(&self, args: &ExpArgs) {
        if args.csv {
            args.emit(&self.csv());
        } else {
            args.emit(&self.render());
        }
    }
}

/// Formats a float compactly for table cells.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = Table::new(vec!["a", "long_header"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["300", "4"]);
        let txt = t.render();
        assert!(txt.contains("long_header"));
        assert!(txt.lines().count() == 4);
        let csv = t.csv();
        assert_eq!(csv, "a,long_header\n1,2\n300,4\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn row_arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn args_defaults_and_pick() {
        let a = ExpArgs::new();
        assert_eq!(a.seed, 2013);
        assert_eq!(a.reps_or(100, 5), 100);
        assert_eq!(a.pick(10, 1), 10);
        assert_eq!(a.engine_or(Engine::Jump), Engine::Jump);
        assert!(a.threads.is_none());
        assert!(a.out.is_none());
        let e = ExpArgs {
            engine: Some(Engine::LevelBatched),
            ..ExpArgs::new()
        };
        assert_eq!(e.engine_or(Engine::Jump), Engine::LevelBatched);
        let q = ExpArgs {
            quick: true,
            ..ExpArgs::new()
        };
        assert_eq!(q.reps_or(100, 5), 5);
        assert_eq!(q.pick(10, 1), 1);
        let r = ExpArgs {
            reps: Some(7),
            ..ExpArgs::new()
        };
        assert_eq!(r.reps_or(100, 5), 7);
    }

    #[test]
    fn replicate_spec_honours_threads() {
        let a = ExpArgs {
            threads: Some(3),
            ..ExpArgs::new()
        };
        let spec = a.replicate_spec(10);
        assert_eq!(spec.threads, Some(3));
        assert_eq!(spec.reps, 10);
        assert_eq!(spec.seed, 2013);
        let b = ExpArgs::new();
        assert_eq!(b.replicate_spec(4).threads, None);
    }

    #[test]
    fn round_run_config_moves_threads_inside_single_replicate_runs() {
        let a = ExpArgs {
            threads: Some(8),
            racy: true,
            ..ExpArgs::new()
        };
        // One replicate: the run itself is threaded and the default
        // engine is promoted to Auto (which the round family resolves
        // to the concurrent engine at threads > 1).
        let single = a.round_run_config(1024, 1024, 1, Engine::Faithful);
        assert_eq!(single.engine, Engine::Auto);
        assert_eq!(single.threads, 8);
        assert!(single.racy);
        assert!(a
            .round_path_header(1, Engine::Faithful)
            .contains("concurrent single-run engine, 8 threads, racy"));
        // Several replicates: threads parallelize replicates, each run
        // keeps the experiment's default serial engine.
        let multi = a.round_run_config(1024, 1024, 10, Engine::Faithful);
        assert_eq!(multi.engine, Engine::Faithful);
        assert_eq!(multi.threads, 1);
        assert!(a
            .round_path_header(10, Engine::Faithful)
            .contains("faithful engine per run"));
        // An explicit --engine always wins over the promotion.
        let forced = ExpArgs {
            threads: Some(8),
            engine: Some(Engine::Histogram),
            ..ExpArgs::new()
        };
        let cfg = forced.round_run_config(1024, 1024, 1, Engine::Faithful);
        assert_eq!(cfg.engine, Engine::Histogram);
    }

    #[test]
    fn emit_truncates_on_first_write_then_appends() {
        let path = std::env::temp_dir().join(format!("bib_bench_out_{}", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        // Stale content from a previous run survives until the first
        // emit (an interrupted run must not leave an emptied file) …
        std::fs::write(&path, "stale\n").unwrap();
        let a = ExpArgs {
            out: Some(path_str.clone()),
            csv: true,
            ..ExpArgs::new()
        };
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["1"]);
        t.print(&a);
        t.print(&a);
        // … and then the first write replaced it, later writes append.
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "x\n1\nx\n1\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1.5), "1.5000");
        assert!(f(1.23e9).contains('e'));
        assert!(f(1e-9).contains('e'));
    }
}
