//! C2 suppressed fixture.
// ORDERING: the counter publishes nothing; Relaxed on both edges.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn claim(x: &AtomicU64, cap: u64) -> bool {
    // lint:allow(C2): spike branch, termination argument tracked in the CAS-engine issue
    x.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        (v < cap).then_some(v + 1)
    })
    .is_ok()
}
