//! Round-restricted parallel `greedy[d]` (Adler, Chakrabarti,
//! Mitzenmacher & Rasmussen [1]).
//!
//! The [1] model: each ball commits to `d` uniform candidate bins up
//! front; communication proceeds in `r` synchronous rounds, after which
//! *every ball must be placed* in one of its candidates. Their lower
//! bound says max load `Ω((log n / log log n)^{1/r})` for constant
//! rounds; more rounds ⇒ better balance.
//!
//! We implement the natural committed-candidates process:
//!
//! * rounds 1 … r−1: every unplaced ball asks its currently
//!   least-loaded candidate (by the *confirmed* loads it has heard);
//!   each bin admits at most `q_r` new balls per round (FIFO over a
//!   random permutation) and rejects the rest;
//! * final round: every still-unplaced ball is force-placed into its
//!   least-loaded candidate (everyone must land).
//!
//! With `d = 2` and a handful of rounds the max load lands in the
//! `O(√(log n / log log n))`-ish band between one-round (= `d`-choice
//! collision) and unrestricted `greedy[2]`.

use super::round_occupancy::{resolve_round_engine, RoundTrace};
use bib_core::histogram::{occupancy_profile, split_binomial, OccupancyHistogram};
use bib_core::protocol::{Engine, Observer, Outcome, Protocol, RunConfig};
use bib_core::scenario::Scenario;
use bib_rng::{Rng64, RngExt};
use std::collections::BTreeMap;

/// The round-restricted parallel greedy protocol.
#[derive(Debug, Clone, Copy)]
pub struct ParallelGreedy {
    d: u32,
    rounds: u32,
    per_round: u32,
}

impl ParallelGreedy {
    /// `d ≥ 1` candidates per ball, `rounds ≥ 1` communication rounds,
    /// and at most `per_round ≥ 1` admissions per bin per round.
    pub fn new(d: u32, rounds: u32, per_round: u32) -> Self {
        assert!(d >= 1, "need at least one candidate");
        assert!(rounds >= 1, "need at least one round");
        assert!(
            per_round >= 1,
            "bins must admit at least one ball per round"
        );
        Self {
            d,
            rounds,
            per_round,
        }
    }

    /// Candidates per ball.
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Round budget.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Convenience entry point mirroring the sequential protocols'
    /// shape: runs `m` balls into `n` bins with no observer.
    pub fn run<R: Rng64 + ?Sized>(&self, n: usize, m: u64, rng: &mut R) -> Outcome {
        self.allocate(
            &RunConfig::new(n, m),
            rng,
            &mut bib_core::protocol::NullObserver,
        )
    }
}

impl Protocol for ParallelGreedy {
    fn name(&self) -> String {
        format!(
            "parallel-greedy(d={},r={},q={})",
            self.d, self.rounds, self.per_round
        )
    }

    /// Runs the process; all `m` balls are placed by construction.
    ///
    /// The engine in `cfg` resolves by the parallel family's fixed rule
    /// (see [`super`]): `Faithful`/`Jump` run the per-contact rounds,
    /// `Histogram`/`LevelBatched` the round-occupancy engine,
    /// `Concurrent` the sharded multi-thread engine
    /// ([`super::concurrent`]), `Auto` the measured cutoff
    /// [`Engine::auto_parallel`] (promoted to `Concurrent` when
    /// `cfg.threads > 1`).
    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        match resolve_round_engine(cfg.engine, cfg.n, cfg.m, cfg.threads) {
            Engine::Histogram => self.allocate_round_occupancy(cfg, rng, obs),
            Engine::Concurrent => super::concurrent::parallel_greedy(
                self.d,
                self.rounds,
                self.per_round,
                self.name(),
                cfg,
                rng,
                obs,
            ),
            _ => self.allocate_faithful(cfg, rng, obs),
        }
    }
}

impl ParallelGreedy {
    /// The faithful committed-candidates path. Requester lists are
    /// cleared through the touched-bin list and the placement flags are
    /// allocated once (a placed ball never returns), so per-round cost
    /// is `O(unplaced)`, not `O(n)`.
    fn allocate_faithful<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        let (n, m) = (cfg.n, cfg.m);
        assert!(n > 0, "need at least one bin");
        assert!(m <= u32::MAX as u64, "ball ids are u32");
        let want_stages = obs.wants_stage_ends();
        let d = self.d as usize;
        // Committed candidates, ball-major.
        let mut candidates: Vec<u32> = Vec::with_capacity(m as usize * d);
        for _ in 0..m {
            for _ in 0..d {
                candidates.push(rng.range_usize(n) as u32);
            }
        }
        let mut loads = vec![0u32; n];
        let mut unplaced: Vec<u32> = (0..m as u32).collect();
        let mut messages = 0u64;
        // Per-bin requester lists plus the bins touched this round, both
        // reused: only touched lists are read and cleared.
        let mut requests: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut touched: Vec<u32> = Vec::new();
        // Placement flags by ball id, allocated once for the whole run.
        let mut placed: Vec<bool> = vec![false; m as usize];
        let mut rounds_used = 0u32;

        let best_candidate = |ball: u32, loads: &[u32]| -> u32 {
            let cs = &candidates[ball as usize * d..(ball as usize + 1) * d];
            *cs.iter()
                .min_by_key(|&&b| loads[b as usize])
                .expect("d ≥ 1")
        };

        // Negotiation rounds (all but the last).
        for _ in 1..self.rounds {
            if unplaced.is_empty() {
                break;
            }
            rounds_used += 1;
            for &ball in &unplaced {
                let b = best_candidate(ball, &loads);
                if requests[b as usize].is_empty() {
                    touched.push(b);
                }
                requests[b as usize].push(ball);
                messages += 1;
            }
            for &bin in &touched {
                let reqs = &mut requests[bin as usize];
                // Admit a uniformly random subset of size ≤ per_round.
                rng.shuffle(reqs);
                for &ball in reqs.iter().take(self.per_round as usize) {
                    loads[bin as usize] += 1;
                    placed[ball as usize] = true;
                    messages += 1; // accept
                }
                reqs.clear();
            }
            touched.clear();
            unplaced.retain(|&b| !placed[b as usize]);
            if want_stages {
                obs.on_stage_end(rounds_used as u64, &loads, m - unplaced.len() as u64);
            }
        }

        // Final forced round — synchronous: every ball decides against
        // the loads as of the round start (no sequential information
        // advantage).
        if !unplaced.is_empty() {
            rounds_used += 1;
            let snapshot = loads.clone();
            for &ball in &unplaced {
                let b = best_candidate(ball, &snapshot);
                loads[b as usize] += 1;
                messages += 2; // request + forced accept
            }
            unplaced.clear();
            if want_stages {
                obs.on_stage_end(rounds_used as u64, &loads, m);
            }
        }

        Outcome {
            protocol: self.name(),
            n,
            m,
            total_samples: messages,
            // The worst-off ball sent one request per round it survived;
            // some ball survives to the last used round.
            max_samples_per_ball: if m > 0 { rounds_used as u64 } else { 0 },
            loads: loads.into(),
            scenario: Scenario::rounds(rounds_used, messages),
        }
    }

    /// The round-occupancy path: the **pinned-cohort** model over
    /// histogram state.
    ///
    /// A ball's request target — the least loaded of its `d` committed
    /// candidates — is resolved through the minimum of uniform *ranks*
    /// over the load-sorted bins, and the per-ball candidate memory the
    /// histogram cannot carry is approximated by one load-bearing piece
    /// of structure: every rejected ball stays **pinned** to the bin
    /// that rejected it. State is the global occupancy histogram plus
    /// cells `(load ℓ, s pinned survivors) → bins`; a round proceeds as
    ///
    /// 1. **defection** — each pinned ball abandons its pin iff the
    ///    minimum of `d−1` conditioned candidate ranks lands strictly
    ///    below its pin's class (the pin wins ties, as the faithful
    ///    tie-break does; the candidates are drawn from bins of load
    ///    `≥ ℓ − q`, because surviving a contested bin means the ball's
    ///    last decision preferred the pin at load `ℓ − q` over them),
    ///    resolved per cell with an exact binomial-pmf chain over
    ///    per-bin defector counts;
    /// 2. **fresh requests** — free balls split over the classes by the
    ///    min-of-`d` CDF chain (`P(min rank ∈ [a, a+c)) = ((n−a)/n)^d −
    ///    ((n−a−c)/n)^d`), defectors by the min-of-`d−1` chain
    ///    truncated to classes below their old pin; within a class the
    ///    intake splits over pinned cells and unpinned bins by bin
    ///    count, and per-bin multiplicities come from
    ///    [`occupancy_profile`];
    /// 3. **admission** — a bin with `s` pinned and `f` fresh
    ///    requesters admits `min(s + f, per_round)` (everything in the
    ///    forced final round), its load grows by that many, and the
    ///    remainder stays pinned to it at its new load.
    ///
    /// Classes are processed in descending load order so mid-round
    /// promotions never land in a class still awaiting its intake.
    ///
    /// What is exact: round 1 (all candidates exchangeable), the whole
    /// `rounds ≤ 2` process (survivors' non-chosen candidates really
    /// are fresh uniform bins — this is what reproduces the faithful
    /// pile-up of rejected cohorts on contested bins), and every draw
    /// below the profile/split thresholds. Deeper rounds re-draw the
    /// `d−1` non-pinned candidates each round instead of remembering
    /// them; the residual error is bounded by the equivalence suite.
    fn allocate_round_occupancy<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        let (n, m) = (cfg.n, cfg.m);
        assert!(n > 0, "need at least one bin");
        assert!(m <= u32::MAX as u64, "ball ids are u32");
        let mut hist = OccupancyHistogram::new(n);
        let trace = RoundTrace::new(n, rng, obs);
        let mut messages = 0u64;
        let mut rounds_used = 0u32;
        // Pinned cells: (load, survivors) → bins. BTreeMap so the
        // iteration order — and with it the rng stream — is
        // deterministic.
        let mut pinned: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        let mut free = m;
        let mut cells: Vec<u64> = Vec::new();

        for round in 1..=self.rounds {
            let pinned_balls: u64 = pinned.iter().map(|(&(_, s), &b)| s as u64 * b).sum();
            let unplaced = free + pinned_balls;
            if unplaced == 0 {
                break;
            }
            rounds_used += 1;
            let forced = round == self.rounds;
            messages += if forced { 2 * unplaced } else { unplaced };
            let placed =
                self.engine_round(&mut hist, &mut pinned, &mut free, forced, &mut cells, rng);
            if !forced {
                messages += placed; // accepts
            }
            trace.stage_end(obs, rounds_used, &hist, m - (unplaced - placed));
        }

        Outcome {
            protocol: self.name(),
            n,
            m,
            total_samples: messages,
            max_samples_per_ball: if m > 0 { rounds_used as u64 } else { 0 },
            loads: trace.finish(&hist, rng),
            scenario: Scenario::rounds(rounds_used, messages),
        }
    }

    /// One engine round over `(hist, pinned, free)`. Returns the number
    /// of balls placed; on a forced round that is every unplaced ball.
    fn engine_round<R: Rng64 + ?Sized>(
        &self,
        hist: &mut OccupancyHistogram,
        pinned: &mut BTreeMap<(u32, u32), u64>,
        free: &mut u64,
        forced: bool,
        cells: &mut Vec<u64>,
        rng: &mut R,
    ) -> u64 {
        let n = hist.n();
        // Frozen round-start classes with rank prefixes.
        let classes: Vec<(u32, u64, u64)> = {
            let mut rank = 0u64;
            hist.levels()
                .map(|(l, c)| {
                    let entry = (l, c, rank);
                    rank += c;
                    entry
                })
                .collect()
        };
        let below_of = |load: u32| -> u64 {
            classes
                .iter()
                .take_while(|&&(l, _, _)| l < load)
                .map(|&(_, c, _)| c)
                .sum()
        };

        // 1. Defections (no-op for d = 1: there is no fresh candidate).
        // A surviving cohort's bin admitted exactly `per_round` at its
        // last contested round, so the ball's last decision saw its pin
        // at load `ℓ − q` — and chose it, which conditions the `d−1`
        // other candidates to bins of load ≥ `ℓ − q` (loads only grow,
        // so that floor still holds now). The ball defects iff the
        // least of those conditioned candidates now sits strictly below
        // `ℓ`; defectors are grouped by `(floor, ceiling)` because
        // their target law is the min-of-(d−1) restricted to that band.
        let mut defectors: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        if self.d > 1 {
            let old = std::mem::take(pinned);
            for ((l, s), b) in old {
                let floor = l.saturating_sub(self.per_round);
                let den = n - below_of(floor);
                let band = below_of(l) - below_of(floor);
                let p = if den == 0 {
                    0.0
                } else {
                    1.0 - (1.0 - band as f64 / den as f64).powf(self.d as f64 - 1.0)
                };
                if p <= 0.0 {
                    *pinned.entry((l, s)).or_insert(0) += b;
                    continue;
                }
                // Distribute the cell's bins over per-bin defector
                // counts k ~ Binomial(s, p) with a conditional chain.
                let mut rem_b = b;
                let mut pmf = (1.0 - p).powi(s as i32);
                let mut tail = 1.0f64;
                for k in 0..=s {
                    if rem_b == 0 {
                        break;
                    }
                    let nk = if k == s {
                        rem_b
                    } else {
                        let hazard = if tail <= pmf {
                            1.0
                        } else {
                            (pmf / tail).clamp(0.0, 1.0)
                        };
                        split_binomial(rem_b, hazard, rng)
                    };
                    if nk > 0 {
                        rem_b -= nk;
                        if k > 0 {
                            *defectors.entry((floor, l)).or_insert(0) += k as u64 * nk;
                        }
                        if k < s {
                            *pinned.entry((l, s - k)).or_insert(0) += nk;
                        }
                        // k == s: the bin lost every survivor — it is a
                        // plain unpinned bin again, no cell to keep.
                    }
                    tail = (tail - pmf).max(0.0);
                    pmf *= p / (1.0 - p) * (s - k) as f64 / (k + 1) as f64;
                }
            }
        }

        // 2. Fresh requests → per-class intake. Free balls follow the
        // min-of-d law over every class; defectors the min-of-(d−1)
        // law over the `[floor, ∞)` band, truncated strictly below
        // their old pin. The min-rank probability over a band of `den`
        // bins whose ranks start at `base`:
        // `P(min ∈ [a, a+c)) = ((den−(a−base))/den)^d −
        // ((den−(a+c−base))/den)^d`.
        let mut intake = vec![0u64; classes.len()];
        let mut split_group =
            |count: u64, lo: usize, hi: usize, base: u64, den: u64, d: f64, rng: &mut R| {
                let denf = den as f64;
                let min_prob = |a: u64, c: u64| -> f64 {
                    ((denf - (a - base) as f64) / denf).powf(d)
                        - ((denf - (a + c - base) as f64) / denf).powf(d)
                };
                // Conditional binomial chain over classes[lo..hi].
                let mut rem = count;
                let mut tail: f64 = classes[lo..hi]
                    .iter()
                    .map(|&(_, c, a)| min_prob(a, c))
                    .sum();
                for (i, &(_, c, a)) in classes[lo..hi].iter().enumerate() {
                    if rem == 0 {
                        break;
                    }
                    let p = min_prob(a, c);
                    let h = if lo + i + 1 == hi {
                        rem
                    } else {
                        let frac = if tail > 0.0 {
                            (p / tail).clamp(0.0, 1.0)
                        } else {
                            1.0
                        };
                        split_binomial(rem, frac, rng)
                    };
                    intake[lo + i] += h;
                    rem -= h;
                    tail -= p;
                }
            };
        if *free > 0 {
            split_group(*free, 0, classes.len(), 0, n, self.d as f64, rng);
            *free = 0;
        }
        for (&(floor, l), &count) in defectors.iter() {
            let lo = classes.partition_point(|&(cl, _, _)| cl < floor);
            let hi = classes.partition_point(|&(cl, _, _)| cl < l);
            debug_assert!(hi > lo, "defector with nothing below its pin");
            let base = below_of(floor);
            split_group(count, lo, hi, base, n - base, self.d as f64 - 1.0, rng);
        }

        // 3. Resolve admissions per class, descending load (promotions
        // only move bins upward, past every class still awaiting its
        // intake). Pinned cells request their own bin even with no
        // fresh intake, so every surviving cell is visited.
        let admit_cap = if forced {
            u64::MAX
        } else {
            self.per_round as u64
        };
        let mut placed = 0u64;
        let old_pinned = std::mem::take(pinned);
        for i in (0..classes.len()).rev() {
            let (l, c, _) = classes[i];
            let mut h = intake[i];
            // Cells of this class, with their bin counts frozen.
            let class_cells: Vec<(u32, u64)> = old_pinned
                .range((l, 0)..(l, u32::MAX))
                .map(|(&(_, s), &b)| (s, b))
                .collect();
            let pinned_bins: u64 = class_cells.iter().map(|&(_, b)| b).sum();
            debug_assert!(pinned_bins <= c);
            // Split the fresh intake over the class's subgroups by bin
            // count (requests are uniform within the class).
            let mut bins_rem = c;
            for (s, b) in class_cells {
                let f_cell = if bins_rem == b {
                    h
                } else {
                    split_binomial(h, b as f64 / bins_rem as f64, rng)
                };
                bins_rem -= b;
                h -= f_cell;
                // Per-bin fresh multiplicities over the cell's bins; a
                // bin with s pinned and f fresh admits min(s+f, cap).
                occupancy_profile(b, f_cell, cells, rng);
                for (f, &nf_bins) in cells.iter().enumerate() {
                    if nf_bins == 0 {
                        continue;
                    }
                    let req = s as u64 + f as u64;
                    let adm = req.min(admit_cap);
                    if adm > 0 {
                        hist.promote(l, nf_bins, adm as u32);
                        placed += adm * nf_bins;
                    }
                    let survivors = req - adm;
                    if survivors > 0 {
                        *pinned
                            .entry((l + adm as u32, survivors as u32))
                            .or_insert(0) += nf_bins;
                    }
                }
            }
            // Unpinned remainder of the class.
            if h > 0 {
                occupancy_profile(bins_rem, h, cells, rng);
                for (f, &nf_bins) in cells.iter().enumerate().skip(1) {
                    if nf_bins == 0 {
                        continue;
                    }
                    let adm = (f as u64).min(admit_cap);
                    hist.promote(l, nf_bins, adm as u32);
                    placed += adm * nf_bins;
                    let survivors = f as u64 - adm;
                    if survivors > 0 {
                        *pinned
                            .entry((l + adm as u32, survivors as u32))
                            .or_insert(0) += nf_bins;
                    }
                }
            }
        }
        placed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_rng::SplitMix64;

    #[test]
    fn places_everything_within_round_budget() {
        let mut rng = SplitMix64::new(1);
        let out = ParallelGreedy::new(2, 3, 1).run(512, 512, &mut rng);
        out.validate();
        assert!(out.rounds() <= 3);
    }

    #[test]
    fn single_round_is_pure_commitment() {
        // r = 1: every ball force-places into its least-loaded candidate
        // as seen at time zero (all-zero loads) — i.e. its first choice
        // tie-broken by the min operator; load can pile up.
        let mut rng = SplitMix64::new(2);
        let out = ParallelGreedy::new(2, 1, 1).run(256, 256, &mut rng);
        out.validate();
        assert_eq!(out.rounds(), 1);
    }

    #[test]
    fn more_rounds_never_hurt_much() {
        let n = 1 << 14;
        let maxload = |rounds: u32, seed: u64| -> u32 {
            let mut rng = SplitMix64::new(seed);
            ParallelGreedy::new(2, rounds, 1)
                .run(n, n as u64, &mut rng)
                .max_load()
        };
        // Average over a few seeds to damp noise.
        let avg =
            |rounds: u32| -> f64 { (0..5).map(|s| maxload(rounds, s) as f64).sum::<f64>() / 5.0 };
        let r1 = avg(1);
        let r3 = avg(3);
        let r6 = avg(6);
        assert!(r3 <= r1, "3 rounds ({r3}) worse than 1 ({r1})");
        assert!(r6 <= r3 + 0.5, "6 rounds ({r6}) worse than 3 ({r3})");
    }

    #[test]
    fn messages_bounded_by_rounds_times_m() {
        let mut rng = SplitMix64::new(3);
        let out = ParallelGreedy::new(2, 4, 1).run(1024, 1024, &mut rng);
        assert!(out.messages() <= 2 * 4 * 1024);
    }

    #[test]
    fn zero_balls() {
        let mut rng = SplitMix64::new(4);
        let out = ParallelGreedy::new(3, 2, 1).run(8, 0, &mut rng);
        out.validate();
        assert_eq!(out.rounds(), 0);
        assert_eq!(out.messages(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_rounds_rejected() {
        ParallelGreedy::new(2, 0, 1);
    }
}
