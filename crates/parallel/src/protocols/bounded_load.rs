//! Lenzen–Wattenhofer-style bounded-load parallel allocation [12].
//!
//! Reproduction note (see DESIGN.md §2): the published protocol's exact
//! contact schedule is tuned for the `log* n + O(1)` constant; we
//! implement the operational core — *bins accept at most `cap` balls
//! ever; unplaced balls contact `k_r` bins in round `r` with `k_r`
//! doubling; each bin with spare capacity accepts one uniformly random
//! requester per round* — which reproduces the qualitative behaviour:
//! max load exactly ≤ `cap`, a round count that grows extremely slowly
//! with `n`, and O(1) messages per ball.

use bib_core::protocol::{Observer, Outcome, Protocol, RunConfig};
use bib_core::scenario::Scenario;
use bib_rng::{Rng64, RngExt};

/// The bounded-load parallel protocol.
///
/// # Examples
///
/// ```
/// use bib_parallel::protocols::BoundedLoad;
/// use bib_rng::SeedSequence;
///
/// let mut rng = SeedSequence::new(1).rng();
/// let out = BoundedLoad::new(2).run(256, 256, &mut rng); // m = n
/// out.validate();
/// assert!(out.max_load() <= 2);        // by construction
/// assert!(out.rounds() <= 10);         // ~log* n
/// assert!(out.messages_per_ball() < 8.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BoundedLoad {
    cap: u32,
    /// Safety limit on rounds (the process must finish far earlier).
    max_rounds: u32,
}

impl BoundedLoad {
    /// Bins accept at most `cap ≥ 1` balls.
    pub fn new(cap: u32) -> Self {
        assert!(cap >= 1, "bin capacity must be ≥ 1");
        Self {
            cap,
            max_rounds: 64,
        }
    }

    /// The per-bin capacity.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// Convenience entry point mirroring the sequential protocols'
    /// shape: runs `m` balls into `n` bins with no observer.
    pub fn run<R: Rng64 + ?Sized>(&self, n: usize, m: u64, rng: &mut R) -> Outcome {
        self.allocate(
            &RunConfig::new(n, m),
            rng,
            &mut bib_core::protocol::NullObserver,
        )
    }
}

impl Protocol for BoundedLoad {
    fn name(&self) -> String {
        format!("bounded-load(cap={})", self.cap)
    }

    /// Runs the process; panics if `m > cap·n` (capacity infeasible) or
    /// if the safety round limit is exceeded (indicates a bug, not bad
    /// luck — 64 rounds is astronomically beyond `log* n`). The engine
    /// in `cfg` is ignored: round protocols have one execution path.
    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        let (n, m) = (cfg.n, cfg.m);
        assert!(n > 0, "need at least one bin");
        assert!(
            m <= self.cap as u64 * n as u64,
            "m = {m} exceeds total capacity {}",
            self.cap as u64 * n as u64
        );
        let want_stages = obs.wants_stage_ends();
        let mut loads = vec![0u32; n];
        // Balls still unplaced, by id.
        let mut unplaced: Vec<u32> = (0..m as u32).collect();
        let mut messages = 0u64;
        let mut rounds = 0u32;
        // Per-bin requester lists, reused across rounds.
        let mut requests: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut contacts = 1usize; // k_r: doubles each round
        let mut contacts_cum = 0u64; // Σ k_r — a surviving ball's sent total
        let mut max_contacts = 0u64;

        while !unplaced.is_empty() {
            rounds += 1;
            assert!(
                rounds <= self.max_rounds,
                "bounded-load protocol failed to converge in {} rounds",
                self.max_rounds
            );
            contacts_cum += contacts as u64;
            for r in requests.iter_mut() {
                r.clear();
            }
            // Phase 1: contacts.
            for &ball in &unplaced {
                for _ in 0..contacts {
                    let b = rng.range_usize(n);
                    requests[b].push(ball);
                    messages += 1;
                }
            }
            // Phase 2: each bin with spare capacity accepts one uniformly
            // random requester. A ball may receive several acceptances;
            // it takes the first by bin order (any deterministic rule
            // works — the bin keeps its slot only if the ball commits).
            let mut accepted_bin: Vec<Option<u32>> = vec![None; m as usize];
            for (bin, reqs) in requests.iter().enumerate() {
                if loads[bin] >= self.cap || reqs.is_empty() {
                    continue;
                }
                let ball = *rng.choose(reqs);
                messages += 1; // the accept message
                if accepted_bin[ball as usize].is_none() {
                    accepted_bin[ball as usize] = Some(bin as u32);
                    loads[bin] += 1;
                }
            }
            // Phase 3: commit placements. Any ball placed this round has
            // sent `contacts_cum` contacts so far — the per-ball max.
            let before = unplaced.len();
            unplaced.retain(|&ball| accepted_bin[ball as usize].is_none());
            if unplaced.len() < before {
                max_contacts = contacts_cum;
            }
            contacts = (contacts * 2).min(n);
            if want_stages {
                obs.on_stage_end(rounds as u64, &loads, m - unplaced.len() as u64);
            }
        }

        Outcome {
            protocol: self.name(),
            n,
            m,
            total_samples: messages,
            max_samples_per_ball: max_contacts,
            loads,
            scenario: Scenario::rounds(rounds, messages),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_rng::SplitMix64;

    #[test]
    fn max_load_never_exceeds_cap() {
        for seed in 0..5u64 {
            let mut rng = SplitMix64::new(seed);
            let out = BoundedLoad::new(2).run(256, 256, &mut rng);
            out.validate();
            assert!(out.max_load() <= 2, "seed {seed}: {}", out.max_load());
        }
    }

    #[test]
    fn all_balls_placed_at_full_capacity() {
        // m = cap·n is the tight case: every slot must fill.
        let mut rng = SplitMix64::new(7);
        let out = BoundedLoad::new(2).run(64, 128, &mut rng);
        out.validate();
        assert_eq!(out.loads, vec![2u32; 64]);
    }

    #[test]
    fn rounds_grow_very_slowly() {
        // log*-ish: going from n = 2⁸ to n = 2¹⁶ should add at most a
        // few rounds.
        let mut rng = SplitMix64::new(8);
        let small = BoundedLoad::new(2).run(1 << 8, 1 << 8, &mut rng);
        let big = BoundedLoad::new(2).run(1 << 16, 1 << 16, &mut rng);
        assert!(small.rounds() <= 12, "small rounds {}", small.rounds());
        assert!(
            big.rounds() <= small.rounds() + 4,
            "{} vs {}",
            big.rounds(),
            small.rounds()
        );
    }

    #[test]
    fn messages_linear_in_m() {
        let mut rng = SplitMix64::new(9);
        let out = BoundedLoad::new(2).run(1 << 14, 1 << 14, &mut rng);
        assert!(
            out.messages_per_ball() < 12.0,
            "messages per ball {}",
            out.messages_per_ball()
        );
        // The unified record mirrors messages into the allocation time.
        assert_eq!(out.total_samples, out.messages());
        assert!(out.max_samples_per_ball >= 1);
    }

    #[test]
    fn round_observer_fires_once_per_round() {
        use bib_core::protocol::StageTrace;
        let cfg = RunConfig::new(128, 128);
        let mut rng = SplitMix64::new(12);
        let mut trace = StageTrace::new();
        let out = BoundedLoad::new(2).allocate(&cfg, &mut rng, &mut trace);
        out.validate();
        assert_eq!(trace.stages.len(), out.rounds() as usize);
        assert_eq!(trace.stages, (1..=out.rounds() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn zero_balls() {
        let mut rng = SplitMix64::new(10);
        let out = BoundedLoad::new(2).run(8, 0, &mut rng);
        out.validate();
        assert_eq!(out.rounds(), 0);
        assert_eq!(out.messages(), 0);
    }

    #[test]
    #[should_panic]
    fn infeasible_capacity_rejected() {
        let mut rng = SplitMix64::new(11);
        BoundedLoad::new(1).run(4, 5, &mut rng);
    }
}
