//! **E12 — the paper's numeric constants**, computed and checked against
//! a direct simulation of Lemma 3.2.
//!
//! Prints ε, C1, β, κ, ρ_n/n and the Corollary 3.5 ceiling (all computed
//! in `bib-analysis::paper`), then *empirically* verifies the Lemma 3.2
//! claim: starting a stage from a load vector with an underloaded bin,
//! the number of balls `Y` that bin receives satisfies
//! `Pr[Y ≥ k] ≥ Pr[Poi(199/198) ≥ k] − 2·10⁻¹⁰` for `0 ≤ k ≤ C1`.
//!
//! ```text
//! cargo run --release -p bib-bench --bin paper_constants [-- --quick]
//! ```

use bib_analysis::paper;
use bib_bench::{f, ExpArgs, Table};
use bib_core::partitioned::PartitionedBins;
use bib_core::protocol::Engine;
use bib_core::sampler::place_below;
use bib_rng::SeedSequence;

fn main() {
    let args = ExpArgs::parse();
    let consts = paper::constants();
    println!("# Derived constants (Section 3):\n{consts}\n");

    // --- Empirical check of Lemma 3.2 -----------------------------------
    // Configuration: stage τ with one underloaded bin (load τ+2−C1 ≈ deep
    // hole), everyone else balanced at τ. Run the stage (n balls with
    // acceptance bound τ+2) and histogram Y = balls landing in bin 0.
    let n = args.pick(4_096usize, 512usize);
    let reps = args.reps_or(40_000, 4_000);
    let tau = consts.c1 as u32 + 4;
    let hole_load = tau + 2 - consts.c1 as u32;

    let mut template = vec![tau; n];
    template[0] = hole_load;
    // Keep the stage mass consistent: the paper conditions on an
    // arbitrary fixed vector; ours has t = n·τ − C1 + 2 balls, which is
    // fine (only the threshold τ+2 matters for stage τ+1).
    let bound = tau + 2;

    let mut counts = vec![0u64; consts.c1 as usize + 3];
    let mut rng = SeedSequence::new(args.seed).child_str("lemma32").rng();
    for _ in 0..reps {
        let mut bins = PartitionedBins::from_loads(template.clone());
        let mut y = 0u64;
        for _ in 0..n {
            let (bin, _) = place_below(&mut bins, bound, Engine::Jump, &mut rng);
            if bin == 0 {
                y += 1;
            }
        }
        let idx = (y as usize).min(counts.len() - 1);
        counts[idx] += 1;
    }

    println!("# Lemma 3.2 check: stage from a C1-deep hole, n = {n}, {reps} stage sims");
    let mut table = Table::new(vec!["k", "empirical P[Y>=k]", "paper lower bound"]);
    let mut tail = reps;
    let mut ok = true;
    for k in 0..=consts.c1 {
        let emp = tail as f64 / reps as f64;
        let bound_k = paper::lemma32_receive_tail_bound(k);
        // 4-sigma statistical slack on the empirical frequency, plus the
        // rule-of-three floor (with zero observations out of N sims the
        // true probability can still be ~3/N).
        let slack = 4.0 * (emp * (1.0 - emp) / reps as f64).sqrt() + 3.0 / reps as f64;
        if emp + slack < bound_k {
            ok = false;
        }
        table.row(vec![k.to_string(), f(emp), f(bound_k)]);
        if (k as usize) < counts.len() {
            tail -= counts[k as usize];
        }
    }
    table.print(&args);
    println!(
        "\n# Lemma 3.2 empirical tail dominates the paper's bound at every k <= C1: {}",
        if ok { "YES" } else { "NO (violation!)" }
    );
    let mean_y: f64 = counts
        .iter()
        .enumerate()
        .map(|(k, &c)| k as f64 * c as f64)
        .sum::<f64>()
        / reps as f64;
    println!(
        "# Mean balls received by the underloaded bin: {} (paper: slightly > 1 — it catches up; E[Poi(199/198)] = {})",
        f(mean_y),
        f(199.0 / 198.0)
    );
}
