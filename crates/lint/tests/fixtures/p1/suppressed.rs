//! P1 suppressed fixture.
pub fn head(xs: &[u32]) -> u32 {
    // lint:allow(P1): prototype path, real error handling lands with the Result refactor
    *xs.first().unwrap()
}
