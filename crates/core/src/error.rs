//! Typed protocol failures.
//!
//! Infeasible configurations and exhausted work budgets used to abort
//! with `panic!`/`assert!` deep inside the drivers, which is the wrong
//! surface for a long-running service: a caller that can *choose* a
//! different configuration (shed the request, fall back to a weaker
//! protocol, report a non-zero exit) needs the failure as a value.
//! [`ProtocolError`] is that value. The panicking entry points remain —
//! [`Protocol::allocate`](crate::protocol::Protocol::allocate) keeps
//! its infallible signature for the simulation harness — but they are
//! now thin `unwrap`s over the fallible `try_*` paths, so the panic
//! message and the typed error can never disagree.

/// A protocol-level failure that a caller can handle instead of crash
/// on: the configuration is infeasible, a round or kick budget ran
/// out, or a streaming placement could not be completed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// More balls than total capacity: `m > Σ_j cap_j` can never be
    /// placed by any bounded-load scheme.
    InfeasibleCapacity {
        /// Balls requested.
        m: u64,
        /// Total capacity of all bins.
        capacity: u64,
    },
    /// A round-synchronous driver exhausted its round budget without
    /// placing every ball.
    Unconverged {
        /// Protocol display name.
        protocol: String,
        /// The exhausted round budget.
        rounds: u64,
    },
    /// A cuckoo insertion exhausted its kick budget (the abort-and-
    /// rehash signal of the relocation literature).
    KickBudgetExhausted {
        /// Kicks spent before giving up.
        kicks: u64,
    },
    /// The key being inserted is already present.
    DuplicateKey,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::InfeasibleCapacity { m, capacity } => {
                write!(f, "infeasible: m = {m} exceeds total capacity {capacity}")
            }
            ProtocolError::Unconverged { protocol, rounds } => {
                write!(f, "{protocol} failed to converge in {rounds} rounds")
            }
            ProtocolError::KickBudgetExhausted { kicks } => {
                write!(f, "cuckoo kick budget exhausted after {kicks} kicks")
            }
            ProtocolError::DuplicateKey => write!(f, "key already present"),
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        assert_eq!(
            ProtocolError::InfeasibleCapacity { m: 5, capacity: 4 }.to_string(),
            "infeasible: m = 5 exceeds total capacity 4"
        );
        assert_eq!(
            ProtocolError::Unconverged {
                protocol: "bounded-load[1]".into(),
                rounds: 64
            }
            .to_string(),
            "bounded-load[1] failed to converge in 64 rounds"
        );
        assert_eq!(
            ProtocolError::KickBudgetExhausted { kicks: 9 }.to_string(),
            "cuckoo kick budget exhausted after 9 kicks"
        );
    }
}
