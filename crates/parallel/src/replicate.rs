//! Parallel replication of protocol runs — the "average of 100
//! simulations" machinery behind Figure 3.
//!
//! Replicate `r` always uses the stream derived by
//! `bib_core::run::replicate_seed(master, protocol_name, r)`, so the
//! outcome vector is bit-identical to the sequential
//! `bib_core::run::run_replicates` no matter how many threads execute it
//! (there is an integration test asserting exactly that).

use crate::executor::{available_threads, par_map};
use bib_core::protocol::{NullObserver, Outcome, Protocol, RunConfig};
use bib_core::run::replicate_seed;
use bib_rng::SeedSequence;

/// What to replicate and how hard to push the machine.
#[derive(Debug, Clone, Copy)]
pub struct ReplicateSpec {
    /// Number of independent replicates.
    pub reps: u64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads (`None` = machine parallelism).
    pub threads: Option<usize>,
}

impl ReplicateSpec {
    /// `reps` replicates under `seed`, machine-default threads.
    pub fn new(reps: u64, seed: u64) -> Self {
        Self {
            reps,
            seed,
            threads: None,
        }
    }

    /// Overrides the thread count (use `Some(1)` for strictly sequential
    /// execution).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }
}

/// Runs `spec.reps` independent replicates of `protocol` under `cfg` in
/// parallel and returns the outcomes in replicate order.
///
/// Generic over the protocol so each worker's allocation loop is fully
/// monomorphized; boxed suites pass `&(dyn DynProtocol + Sync)`.
pub fn replicate_outcomes<P: Protocol + Sync + ?Sized>(
    protocol: &P,
    cfg: &RunConfig,
    spec: &ReplicateSpec,
) -> Vec<Outcome> {
    let threads = spec.threads.unwrap_or_else(available_threads);
    let name = protocol.name();
    par_map(spec.reps as usize, threads, |rep| {
        let s = replicate_seed(spec.seed, &name, rep as u64);
        let mut rng = SeedSequence::new(s).rng();
        let out = protocol.allocate(cfg, &mut rng, &mut NullObserver);
        out.validate();
        out
    })
}

/// Summary statistics over a metric of replicated outcomes.
///
/// Convenience used by every experiment binary: maps each outcome to a
/// scalar and accumulates a [`bib_analysis::Welford`].
pub fn summarize_metric<F>(outcomes: &[Outcome], metric: F) -> bib_analysis::Summary
where
    F: Fn(&Outcome) -> f64,
{
    let mut w = bib_analysis::Welford::new();
    for o in outcomes {
        w.push(metric(o));
    }
    w.summary()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_core::protocols::{Adaptive, Threshold};
    use bib_core::run::run_replicates;

    #[test]
    fn parallel_equals_sequential_bit_for_bit() {
        let cfg = RunConfig::new(32, 320);
        let seq = run_replicates(&Adaptive::paper(), &cfg, 11, 8);
        for threads in [1usize, 2, 7] {
            let par = replicate_outcomes(
                &Adaptive::paper(),
                &cfg,
                &ReplicateSpec::new(8, 11).with_threads(threads),
            );
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn zero_reps_is_empty() {
        let cfg = RunConfig::new(4, 4);
        let out = replicate_outcomes(&Threshold, &cfg, &ReplicateSpec::new(0, 1));
        assert!(out.is_empty());
    }

    #[test]
    fn summaries_aggregate_metrics() {
        let cfg = RunConfig::new(16, 160);
        let outs = replicate_outcomes(&Threshold, &cfg, &ReplicateSpec::new(10, 3));
        let s = summarize_metric(&outs, |o| o.time_ratio());
        assert_eq!(s.count, 10);
        assert!(s.mean >= 1.0, "time ratio mean {}", s.mean);
        let g = summarize_metric(&outs, |o| o.gap() as f64);
        assert!(g.min >= 0.0);
    }
}
