//! C1 clean fixture: the ordering argument lives next to the code.
// ORDERING: the counter is a pure event tally; no other memory is
// published through it, so Relaxed is sufficient.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(x: &AtomicU64) -> u64 {
    // ORDERING: Relaxed — see the contract above; uniqueness only.
    x.fetch_add(1, Ordering::Relaxed)
}
