//! Core library of the balls-into-bins reproduction: the `adaptive` and
//! `threshold` protocols of Berenbrink, Khodamoradi, Sauerwald & Stauffer
//! (SPAA 2013), every baseline they are compared against, and the load
//! structures, potential functions and run harness underneath.
//!
//! # The paper in one paragraph
//!
//! `m` balls are placed into `n` bins by repeated uniform sampling. The
//! **threshold** protocol (Czumaj–Stemann) re-samples until it finds a bin
//! with load `< m/n + 1`; the paper's new **adaptive** protocol re-samples
//! until the load is `< i/n + 1` where `i` is the ball's index, so the
//! number of balls need not be known in advance. Both achieve the almost
//! optimal maximum load `⌈m/n⌉ + 1` with only `O(m)` total samples
//! (Theorems 3.1 and 4.1), and `adaptive` additionally keeps the load
//! vector *smooth*: max−min gap `O(log n)` (Corollary 3.5) versus
//! polynomial in `n` for `threshold` at `m = n²` (Lemma 4.2).
//!
//! # Crate layout
//!
//! * [`bins`] — plain load vector and histogram.
//! * [`partitioned`] — bins grouped by load with O(1) placement and O(1)
//!   "count / pick a bin below a threshold" queries; the engine room of
//!   the fast simulation path.
//! * [`sampler`] — the per-ball retry engines (faithful per-sample loop
//!   vs. geometric jump), distributionally identical.
//! * [`level_batched`] — the third engine: whole constant-threshold
//!   segments placed with binomial level splits, exact on final loads,
//!   built for the `m = n²` regime.
//! * [`histogram`] — the fourth engine: the bin dimension collapsed to
//!   the occupancy histogram `counts[load]`, rounds costing
//!   `O(#distinct loads)` independent of `n`; also accelerates
//!   `one-choice` and `greedy[d]` through their CDF landing laws.
//! * [`potential`] — the quadratic Ψ and exponential Φ potentials and gap
//!   metrics from Section 2.
//! * [`protocol`] — the [`protocol::Protocol`] trait, run configuration,
//!   outcome record and observers.
//! * [`protocols`] — `adaptive`, `threshold` and all Table 1 baselines:
//!   one-choice, `greedy[d]`, `left[d]`, `(d,k)`-memory.
//! * [`run`] — seeding and replication helpers.
//!
//! # Quickstart
//!
//! ```
//! use bib_core::prelude::*;
//!
//! let cfg = RunConfig::new(1_000, 10_000);      // n bins, m balls
//! let outcome = run_protocol(&Adaptive::paper(), &cfg, 42);
//! assert_eq!(outcome.total_balls(), 10_000);
//! // The defining guarantee: max load ≤ ⌈m/n⌉ + 1.
//! assert!(outcome.max_load() as u64 <= 10 + 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batched;
pub mod bins;
pub mod choices;
pub mod error;
pub mod faults;
pub mod histogram;
pub mod level_batched;
pub mod loads;
pub mod partitioned;
pub mod poissonized;
pub mod potential;
pub mod protocol;
pub mod protocols;
pub mod run;
pub mod sampler;
pub mod scenario;
pub mod stream;
pub mod weighted;

/// Convenient glob-import surface for examples and downstream crates.
pub mod prelude {
    pub use crate::batched::BatchedAdaptive;
    pub use crate::bins::LoadVector;
    pub use crate::error::ProtocolError;
    pub use crate::faults::{BinState, FaultEvent, FaultKind, FaultPlan};
    pub use crate::histogram::{HistogramSchedule, OccupancyHistogram};
    pub use crate::level_batched::ThresholdSchedule;
    pub use crate::loads::Loads;
    pub use crate::partitioned::PartitionedBins;
    pub use crate::potential::{exponential_potential, gap, quadratic_potential};
    pub use crate::protocol::{
        DynProtocol, Engine, NullObserver, Observer, Outcome, Protocol, RunConfig,
    };
    pub use crate::protocols::{
        Adaptive, GreedyD, LeftD, Memory, OneChoice, OnePlusBeta, Threshold, ThresholdSlack,
        TieBreak,
    };
    pub use crate::run::{run_protocol, run_replicates};
    pub use crate::scenario::{scenario_protocol, Family, Scenario, WeightedSchedule, Workload};
    pub use crate::stream::{
        serve, LatencyTail, RetryPolicy, StreamProtocol, StreamReport, StreamSpec, TickStats,
    };
    pub use crate::weighted::{WeightedAdaptive, WeightedOneChoice};
}
