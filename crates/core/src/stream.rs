//! The streaming allocator: churn, faults, retry/backoff, graceful
//! degradation.
//!
//! Every other engine in this crate runs one-shot batch allocation.
//! This module is the long-running counterpart the ROADMAP's "online
//! allocation service" item asks for: balls *arrive and depart* over
//! virtual time (ticks), bins fail and recover mid-run, and the system
//! is judged at steady state — sustained operations per tick, the
//! gap/max-load time series, and per-placement latency tails.
//!
//! # The collapsed state
//!
//! The driver is histogram-first, like the batch histogram engine: bins
//! never exist individually, only as occupancy classes. Health
//! partitions the fleet into three [`OccupancyHistogram`]s — accepting
//! (alive + slow), draining, dead — plus a scalar count of slow bins
//! (slow bins answer correctly but late, so they stay inside the
//! accepting histogram and only change the *sample cost* of a contact,
//! never the placement law; slowness and load are independent by
//! exchangeability). An **arrival** is one placement attempt under the
//! family's law; a **departure** is a *downward split* on the occupancy
//! histogram ([`OccupancyHistogram::demote`]): each resident ball
//! departs independently with probability `depart_prob` per tick, so a
//! class of `c` bins at load `ℓ` splits multinomially over the
//! `Binomial(ℓ, p)` per-bin departure law — exact, and `O(ℓ)` per
//! class instead of `O(n)` per tick.
//!
//! # Faults, retries, shedding
//!
//! A [`FaultPlan`](crate::faults::FaultPlan) is consulted at every tick
//! boundary; engines consult the resulting class partition on every
//! contact. A probe that lands on a dead or draining bin costs the
//! sample and forces a re-draw. One placement *attempt* may spend up to
//! `probe_budget` samples; a failed attempt backs off
//! `min(2^(attempts−1), backoff_cap)` ticks (capped exponential
//! backoff in rounds) and retries, up to `retry_budget` attempts, after
//! which the ball is **shed** — counted on the
//! [`Outcome`](crate::protocol::Outcome), never silent. When the alive
//! fraction drops below `fallback_alive_frac`, multi-probe families
//! (greedy[d], adaptive, threshold) **fall back** to one-choice — the
//! first accepting contact wins — trading balance for guaranteed
//! progress; every fallback placement is counted too. Degraded, never
//! wedged.
//!
//! # Determinism and observability
//!
//! The whole trajectory is a pure function of `(seed, spec, cfg)`:
//! arrivals, departures, fault splits and placements all draw from
//! seed-derived streams. Observers: the stream driver does not emit
//! per-ball [`Observer`](crate::protocol::Observer) events (a collapsed
//! driver has no bin identities and a steady-state run has no single
//! "stage"); its observability surface is [`StreamReport`] — the
//! per-tick [`TickStats`] series and the [`LatencyTail`] histogram —
//! plus the stream counters on the final `Outcome`. The concurrent
//! (dense, sharded) counterpart lives in `bib-parallel::stream`; this
//! driver ignores `RunConfig::engine` by the documented aliasing rule
//! that the collapsed serial path *is* the stream engine of this crate.

use crate::faults::{FaultKind, FaultPlan};
use crate::histogram::{rounded_normal_count, split_binomial, OccupancyHistogram};
use crate::loads::Loads;
use crate::protocol::{Observer, Outcome, Protocol, RunConfig};
use crate::scenario::{strict_int_bound, Family, Scenario};
use bib_rng::dist::{Distribution, PoissonSampler};
use bib_rng::{Rng64, RngExt, SeedSequence};

/// Retry, backoff and degradation policy of the streaming driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Samples one placement attempt may spend before failing.
    pub probe_budget: u32,
    /// Placement attempts per ball (including the first) before the
    /// ball is shed.
    pub retry_budget: u32,
    /// Cap on the exponential backoff delay, in ticks: attempt `k`
    /// (1-based) retries after `min(2^(k−1), backoff_cap)` ticks.
    pub backoff_cap: u32,
    /// When the accepting fraction of the fleet drops below this,
    /// multi-probe families degrade to one-choice.
    pub fallback_alive_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            probe_budget: 16,
            retry_budget: 4,
            backoff_cap: 8,
            fallback_alive_frac: 0.5,
        }
    }
}

/// A streaming workload: how long the run is, how balls churn, which
/// faults strike, and how placements retry.
///
/// The total *expected* arrivals come from `RunConfig::m`: arrivals per
/// tick are `Poisson(m / ticks)` (or exactly `m / ticks` with
/// deterministic arrivals), so the same `(n, m)` pair the batch engines
/// take describes the stream's scale.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// Virtual time steps.
    pub ticks: u64,
    /// Per-ball per-tick departure probability.
    pub depart_prob: f64,
    /// Poisson arrivals (`true`, default) or an exact deterministic
    /// `m / ticks` split (`false`).
    pub poisson: bool,
    /// Scheduled bin faults.
    pub faults: FaultPlan,
    /// Retry/backoff/degradation policy.
    pub retry: RetryPolicy,
}

impl StreamSpec {
    /// A fault-free Poisson stream with the default retry policy.
    pub fn new(ticks: u64, depart_prob: f64) -> Self {
        assert!(ticks > 0, "a stream needs at least one tick");
        assert!(
            (0.0..=1.0).contains(&depart_prob),
            "depart_prob {depart_prob} outside [0, 1]"
        );
        Self {
            ticks,
            depart_prob,
            poisson: true,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
        }
    }

    /// Switches to deterministic (exactly `m / ticks` per tick)
    /// arrivals.
    pub fn deterministic(mut self) -> Self {
        self.poisson = false;
        self
    }

    /// Attaches a fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Cumulative per-tick stream statistics (one record per tick).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickStats {
    /// Tick index (0-based).
    pub tick: u64,
    /// Balls resident across the whole fleet (frozen ones included).
    pub in_system: u64,
    /// Max−min load over the *accepting* bins (0 when none accept).
    pub gap: u32,
    /// Max load over the accepting bins.
    pub max_load: u32,
    /// Accepting fraction of the fleet, in parts per million (an
    /// integer so the record stays `Eq` for bit-identity tests).
    pub alive_ppm: u32,
    /// Balls placed so far (cumulative).
    pub placed: u64,
    /// Balls departed so far (cumulative).
    pub departed: u64,
    /// Balls shed so far (cumulative).
    pub shed: u64,
    /// Fallback placements so far (cumulative).
    pub fallbacks: u64,
    /// Samples drawn so far (cumulative).
    pub samples: u64,
}

/// Per-placement latency (samples per placed ball) as a saturating
/// histogram: cell `k` counts balls that needed `k+1` samples, the last
/// cell "that many or more".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyTail {
    buckets: Vec<u64>,
    count: u64,
}

impl LatencyTail {
    const CELLS: usize = 64;

    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; Self::CELLS],
            count: 0,
        }
    }

    /// Records one placed ball that needed `samples` (≥ 1) samples.
    pub fn record(&mut self, samples: u64) {
        let idx = ((samples.max(1) - 1) as usize).min(Self::CELLS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Merges another tail into this one.
    pub fn merge(&mut self, other: &LatencyTail) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Placed balls recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample count `s` such that at least `q·count` balls
    /// needed ≤ `s` samples; the last cell reports as `CELLS` ("≥ 64").
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return i as u64 + 1;
            }
        }
        Self::CELLS as u64
    }
}

impl Default for LatencyTail {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything a `serve` run reports: the final [`Outcome`] (with the
/// stream counters on its scenario), the per-tick series, the latency
/// tail, and the wall-clock time for sustained-throughput numbers.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Final outcome; `m` is the balls resident at the end and the
    /// scenario carries `arrivals`/`departed`/`shed`/`fallbacks`.
    pub outcome: Outcome,
    /// One record per tick.
    pub series: Vec<TickStats>,
    /// Samples-per-placement histogram.
    pub latency: LatencyTail,
    /// Wall-clock duration of the run.
    pub wall: std::time::Duration,
}

impl StreamReport {
    /// Completed operations: placements plus departures (shed balls
    /// are not operations the system completed).
    pub fn ops(&self) -> u64 {
        let s = &self.outcome.scenario;
        (s.arrivals - s.shed) + s.departed
    }

    /// Sustained completed operations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.ops() as f64 / secs
    }
}

/// The streaming protocol: a [`Family`] placement law driven by a
/// [`StreamSpec`] workload. Implements [`Protocol`], so it flows
/// through `run_protocol`/`replicate_outcomes` like every batch
/// protocol; `RunConfig::m` is the expected total arrivals.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamProtocol {
    spec: StreamSpec,
    family: Family,
}

impl StreamProtocol {
    /// Builds the cell.
    pub fn new(spec: StreamSpec, family: Family) -> Self {
        Self { spec, family }
    }

    /// The workload spec.
    pub fn spec(&self) -> &StreamSpec {
        &self.spec
    }

    /// The placement family.
    pub fn family(&self) -> Family {
        self.family
    }
}

impl Protocol for StreamProtocol {
    fn name(&self) -> String {
        stream_name(self.family)
    }

    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, _obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        drive(&self.spec, self.family, cfg, rng, None, None)
    }
}

/// Canonical stream protocol name for a family: `stream-adaptive`,
/// `stream-greedy[2]`, ….
pub fn stream_name(family: Family) -> String {
    match family {
        Family::Greedy(d) => format!("stream-greedy[{d}]"),
        f => format!("stream-{}", f.label()),
    }
}

/// Runs a stream to completion with full observability: per-tick
/// series, latency tail, wall-clock throughput. Seeding follows the
/// harness discipline (`SeedSequence(seed).child_str(name)`), so a
/// `serve` run and a `run_protocol` run with the same seed produce the
/// same trajectory.
pub fn serve(spec: &StreamSpec, family: Family, cfg: &RunConfig, seed: u64) -> StreamReport {
    let mut rng = SeedSequence::new(seed)
        .child_str(&stream_name(family))
        .rng();
    let mut series = Vec::new();
    let mut latency = LatencyTail::new();
    // lint:allow(D1): the wall clock is serve mode's observable (sustained ops/sec), never an input to the deterministic outcome
    let start = std::time::Instant::now();
    let outcome = drive(
        spec,
        family,
        cfg,
        &mut rng,
        Some(&mut series),
        Some(&mut latency),
    );
    let wall = start.elapsed();
    outcome.validate();
    StreamReport {
        outcome,
        series,
        latency,
        wall,
    }
}

/// Fresh arrivals at `tick` of a stream expecting `m` balls over
/// `ticks` ticks: `Poisson(m/ticks)` (exact Knuth sampler at small
/// rates, the moment-matched rounded-normal count above λ = 256,
/// clamped to ±6σ) or the deterministic even split. Shared by the
/// serial collapsed driver and the concurrent dense driver so the two
/// model the same arrival process.
pub fn arrival_count<R: Rng64 + ?Sized>(
    m: u64,
    ticks: u64,
    tick: u64,
    poisson: bool,
    rng: &mut R,
) -> u64 {
    if !poisson {
        return m / ticks + u64::from(tick < m % ticks);
    }
    let lambda = m as f64 / ticks as f64;
    if lambda <= 0.0 {
        0
    } else if lambda < 256.0 {
        PoissonSampler::new(lambda).sample(rng)
    } else {
        let sd = lambda.sqrt();
        let lo = (lambda - 6.0 * sd).max(0.0) as u64;
        // lint:allow(N1): λ + 6√λ is far below u64::MAX for any m
        let hi = (lambda + 6.0 * sd).ceil() as u64;
        rounded_normal_count(lambda, lambda, lo, hi, rng)
    }
}

/// The fleet, partitioned by health. Slow bins live inside `accept`
/// (same placement law, doubled contact cost) and are only counted.
struct Classes {
    accept: OccupancyHistogram,
    drain: OccupancyHistogram,
    dead: OccupancyHistogram,
    slow: u64,
}

impl Classes {
    fn fresh(n: usize) -> Self {
        Self {
            accept: OccupancyHistogram::new(n),
            drain: OccupancyHistogram::empty(),
            dead: OccupancyHistogram::empty(),
            slow: 0,
        }
    }
}

/// Moves a `frac`-Binomial split of every class of `from` into `to`.
fn move_fraction<R: Rng64 + ?Sized>(
    from: &mut OccupancyHistogram,
    to: &mut OccupancyHistogram,
    frac: f64,
    rng: &mut R,
) {
    if from.n() == 0 {
        return;
    }
    let levels: Vec<(u32, u64)> = from.levels().collect();
    for (l, c) in levels {
        let x = if frac >= 1.0 {
            c
        } else {
            split_binomial(c, frac, rng)
        };
        from.remove_bins(l, x);
        to.add_bins(l, x);
    }
}

/// Applies every fault event due at `tick` to the collapsed state.
/// Event draws come from per-event seed-derived streams
/// ([`FaultPlan::event_rng`]), so the fault trajectory is independent
/// of the placement stream.
fn apply_faults(classes: &mut Classes, plan: &FaultPlan, tick: u64) {
    for idx in plan.due_at(tick) {
        let kind = plan.events()[idx].kind;
        let frac = plan.events()[idx].frac;
        let mut rng = plan.event_rng(idx);
        match kind {
            FaultKind::Crash => {
                classes.slow -= split_binomial(classes.slow, frac, &mut rng);
                move_fraction(&mut classes.accept, &mut classes.dead, frac, &mut rng);
                move_fraction(&mut classes.drain, &mut classes.dead, frac, &mut rng);
            }
            FaultKind::Drain => {
                classes.slow -= split_binomial(classes.slow, frac, &mut rng);
                move_fraction(&mut classes.accept, &mut classes.drain, frac, &mut rng);
            }
            FaultKind::Slow => {
                let plain = classes.accept.n() - classes.slow;
                classes.slow += split_binomial(plain, frac, &mut rng);
            }
            FaultKind::Recover => {
                classes.slow -= split_binomial(classes.slow, frac, &mut rng);
                move_fraction(&mut classes.drain, &mut classes.accept, frac, &mut rng);
                move_fraction(&mut classes.dead, &mut classes.accept, frac, &mut rng);
            }
        }
    }
}

/// One tick of churn on `hist`: every resident ball departs
/// independently with probability `p` — the downward split. A class of
/// `c` bins at load `ℓ` splits multinomially over the per-bin
/// `Binomial(ℓ, p)` departure counts via a conditional binomial chain
/// (exact). Returns the number of departed balls.
pub fn departure_split<R: Rng64 + ?Sized>(
    hist: &mut OccupancyHistogram,
    p: f64,
    rng: &mut R,
) -> u64 {
    if hist.n() == 0 || p <= 0.0 || hist.total_balls() == 0 {
        return 0;
    }
    let levels: Vec<(u32, u64)> = hist.levels().collect();
    if p >= 1.0 {
        let mut departed = 0u64;
        for (l, c) in levels {
            if l > 0 {
                hist.demote(l, c, l);
                departed += l as u64 * c;
            }
        }
        return departed;
    }
    let q = 1.0 - p;
    let mut departed = 0u64;
    // Ascending class order: demoted bins land in classes already
    // processed, so no bin departs twice in one tick.
    for (l, c) in levels {
        if l == 0 {
            continue;
        }
        let exp = i32::try_from(l).expect("load level fits i32");
        let mut pmf = q.powi(exp); // P[K = 0]
        let mut rem_bins = c;
        let mut rem_prob = 1.0f64;
        // K = 0 keeps its bins in place.
        let stay = if rem_prob > pmf {
            split_binomial(rem_bins, (pmf / rem_prob).clamp(0.0, 1.0), rng)
        } else {
            rem_bins
        };
        rem_bins -= stay;
        rem_prob -= pmf;
        for k in 1..=l {
            if rem_bins == 0 {
                break;
            }
            pmf *= (l - k + 1) as f64 / k as f64 * (p / q);
            let x = if k == l || rem_prob <= pmf {
                rem_bins
            } else {
                split_binomial(rem_bins, (pmf / rem_prob).clamp(0.0, 1.0), rng)
            };
            if x > 0 {
                hist.demote(l, x, k);
                departed += x * k as u64;
            }
            rem_bins -= x;
            rem_prob -= pmf;
        }
    }
    departed
}

/// The acceptance law one attempt runs under.
#[derive(Clone, Copy)]
enum Style {
    /// First accepting contact wins (one-choice, and the degradation
    /// fallback).
    Uniform,
    /// Accept a contact iff its load is strictly below the bound.
    Below(u32),
    /// Least loaded of `d` accepting contacts.
    LeastOf(u32),
}

/// Uniform-by-count class pick over the accepting histogram (the class
/// of one uniformly random accepting bin).
fn pick_class<R: Rng64 + ?Sized>(accept: &OccupancyHistogram, rng: &mut R) -> u32 {
    let mut r = rng.range_u64(accept.n());
    let mut chosen = accept.max_load();
    for (l, c) in accept.levels() {
        if r < c {
            chosen = l;
            break;
        }
        r -= c;
    }
    chosen
}

/// Runs one placement attempt. `Ok(samples)` placed a ball (already
/// promoted into the accepting histogram); `Err(samples)` exhausted the
/// probe budget.
fn place_attempt<R: Rng64 + ?Sized>(
    classes: &mut Classes,
    style: Style,
    budget: u64,
    rng: &mut R,
) -> Result<u64, u64> {
    let dead_n = classes.dead.n();
    let drain_n = classes.drain.n();
    let refusing = dead_n + drain_n;
    let n_total = refusing + classes.accept.n();
    let mut samples = 0u64;
    let mut best: Option<u32> = None;
    let mut found = 0u32;
    while samples < budget {
        // Contact a uniformly random bin; dead and draining bins cost
        // the probe and force a re-draw.
        if refusing > 0 && rng.range_u64(n_total) < refusing {
            samples += 1;
            continue;
        }
        let accept_n = classes.accept.n();
        if accept_n == 0 {
            // Nothing can accept: every contact is wasted.
            samples += 1;
            continue;
        }
        // Slow bins are exchangeable within the accepting class: the
        // contact is slow with probability slow/accept_n and then
        // costs one extra sample.
        let cost = if classes.slow > 0 && rng.bernoulli(classes.slow as f64 / accept_n as f64) {
            2
        } else {
            1
        };
        samples += cost;
        let class = pick_class(&classes.accept, rng);
        match style {
            Style::Uniform => {
                classes.accept.promote(class, 1, 1);
                return Ok(samples);
            }
            Style::Below(t) => {
                if class < t {
                    classes.accept.promote(class, 1, 1);
                    return Ok(samples);
                }
            }
            Style::LeastOf(d) => {
                best = Some(best.map_or(class, |b| b.min(class)));
                found += 1;
                if found >= d {
                    let b = best.expect("greedy candidate");
                    classes.accept.promote(b, 1, 1);
                    return Ok(samples);
                }
            }
        }
    }
    Err(samples)
}

/// A ball awaiting a retry: attempts so far and samples already spent.
#[derive(Clone, Copy)]
struct Pending {
    attempts: u32,
    samples: u64,
}

struct Counters {
    arrivals: u64,
    placed: u64,
    departed: u64,
    shed: u64,
    fallbacks: u64,
    in_system: u64,
    total_samples: u64,
    max_samples: u64,
}

/// The collapsed serial stream driver. `series`/`latency` are optional
/// so the `Protocol::allocate` path pays nothing for observability.
fn drive<R: Rng64 + ?Sized>(
    spec: &StreamSpec,
    family: Family,
    cfg: &RunConfig,
    rng: &mut R,
    mut series: Option<&mut Vec<TickStats>>,
    mut latency: Option<&mut LatencyTail>,
) -> Outcome {
    assert!(cfg.n > 0, "stream: need at least one bin");
    assert!(spec.ticks > 0, "stream: need at least one tick");
    let retry = spec.retry;
    assert!(retry.probe_budget >= 1, "probe budget must be ≥ 1");
    assert!(retry.retry_budget >= 1, "retry budget must be ≥ 1");
    assert!(
        (0.0..=1.0).contains(&retry.fallback_alive_frac),
        "fallback threshold outside [0, 1]"
    );
    let n_total = cfg.n as u64;
    let budget = retry.probe_budget as u64;
    let mut classes = Classes::fresh(cfg.n);
    let mut c = Counters {
        arrivals: 0,
        placed: 0,
        departed: 0,
        shed: 0,
        fallbacks: 0,
        in_system: 0,
        total_samples: 0,
        max_samples: 0,
    };

    // Backoff ring: slot (tick % len) holds the balls due at that tick.
    let ring_len = retry.backoff_cap.max(1) as usize + 1;
    let mut ring: Vec<Vec<Pending>> = vec![Vec::new(); ring_len];

    for tick in 0..spec.ticks {
        apply_faults(&mut classes, &spec.faults, tick);
        let accept_n = classes.accept.n();
        let fallback = !matches!(family, Family::OneChoice)
            && (accept_n as f64) < retry.fallback_alive_frac * n_total as f64;

        // Due retries first (they have been waiting), then arrivals.
        let due = std::mem::take(&mut ring[(tick % ring_len as u64) as usize]);
        let arrivals = arrival_count(cfg.m, spec.ticks, tick, spec.poisson, rng);
        c.arrivals += arrivals;

        let balls = due.into_iter().chain(std::iter::repeat_n(
            Pending {
                attempts: 0,
                samples: 0,
            },
            arrivals as usize,
        ));
        for mut ball in balls {
            let style = if classes.accept.n() == 0 || fallback {
                Style::Uniform
            } else {
                match family {
                    Family::OneChoice => Style::Uniform,
                    Family::Greedy(d) => Style::LeastOf(d.max(1)),
                    Family::Adaptive => Style::Below(strict_int_bound(
                        (c.in_system + 1) as f64 / classes.accept.n() as f64 + 1.0,
                    )),
                    Family::Threshold => Style::Below(strict_int_bound(
                        cfg.m as f64 / classes.accept.n() as f64 + 1.0,
                    )),
                }
            };
            match place_attempt(&mut classes, style, budget, rng) {
                Ok(samples) => {
                    ball.samples += samples;
                    c.total_samples += samples;
                    c.placed += 1;
                    c.in_system += 1;
                    c.max_samples = c.max_samples.max(ball.samples);
                    if fallback {
                        c.fallbacks += 1;
                    }
                    if let Some(lat) = latency.as_deref_mut() {
                        lat.record(ball.samples);
                    }
                }
                Err(samples) => {
                    ball.samples += samples;
                    c.total_samples += samples;
                    ball.attempts += 1;
                    c.max_samples = c.max_samples.max(ball.samples);
                    if ball.attempts >= retry.retry_budget {
                        c.shed += 1;
                    } else {
                        let delay = (1u64 << (ball.attempts - 1).min(31))
                            .min(retry.backoff_cap.max(1) as u64);
                        let slot = ((tick + delay) % ring_len as u64) as usize;
                        ring[slot].push(ball);
                    }
                }
            }
        }

        // Churn: the downward split. Draining bins keep departing;
        // dead bins are frozen.
        c.departed += departure_split(&mut classes.accept, spec.depart_prob, rng);
        c.departed += departure_split(&mut classes.drain, spec.depart_prob, rng);
        c.in_system = c.placed - c.departed;

        if let Some(s) = series.as_deref_mut() {
            let (gap, max_load) = if classes.accept.n() > 0 {
                (
                    classes.accept.max_load() - classes.accept.min_load(),
                    classes.accept.max_load(),
                )
            } else {
                (0, 0)
            };
            s.push(TickStats {
                tick,
                in_system: c.in_system,
                gap,
                max_load,
                alive_ppm: u32::try_from(classes.accept.n() * 1_000_000 / n_total)
                    .expect("alive fraction in parts-per-million fits u32"),
                placed: c.placed,
                departed: c.departed,
                shed: c.shed,
                fallbacks: c.fallbacks,
                samples: c.total_samples,
            });
        }
    }

    // Balls still waiting for a retry slot when the run ends are shed
    // (their samples are already accounted).
    for slot in &mut ring {
        c.shed += slot.len() as u64;
        slot.clear();
    }

    // Merge the health classes back into one fleet histogram.
    let mut merged = classes.accept.clone();
    for (l, cnt) in classes.drain.levels() {
        merged.add_bins(l, cnt);
    }
    for (l, cnt) in classes.dead.levels() {
        merged.add_bins(l, cnt);
    }
    debug_assert_eq!(merged.n(), n_total, "fleet not conserved");
    debug_assert_eq!(merged.total_balls(), c.in_system, "stream mass drift");

    let alive_frac = classes.accept.n() as f64 / n_total as f64;
    let recon_seed = rng.next_u64();
    Outcome {
        protocol: stream_name(family),
        n: cfg.n,
        m: c.in_system,
        total_samples: c.total_samples,
        max_samples_per_ball: c.max_samples,
        loads: Loads::from_histogram(merged, recon_seed),
        scenario: Scenario::stream(
            spec.ticks,
            c.arrivals,
            c.departed,
            c.shed,
            c.fallbacks,
            alive_frac,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Engine;
    use crate::run::run_protocol;

    #[test]
    fn demote_is_promotes_inverse() {
        let mut h = OccupancyHistogram::from_loads(&[3, 3, 5, 7]);
        h.demote(5, 1, 2);
        assert_eq!(h.count(3), 3);
        h.demote(3, 3, 3);
        assert_eq!(h.count(0), 3);
        assert_eq!(h.min_load(), 0);
        assert_eq!(h.max_load(), 7);
        assert_eq!(h.total_balls(), (3 + 3 + 5 + 7) - 2 - 9);
        h.check_invariants();
        // Back up again: promote is still exact after base slid down.
        h.promote(0, 3, 3);
        assert_eq!(h.count(3), 3);
        h.check_invariants();
    }

    #[test]
    fn departure_split_conserves_mass() {
        let mut rng = SeedSequence::new(9).rng();
        let mut h = OccupancyHistogram::from_loads(&vec![8u32; 500]);
        let before = h.total_balls();
        let gone = departure_split(&mut h, 0.25, &mut rng);
        assert_eq!(h.total_balls(), before - gone);
        h.check_invariants();
        // Binomial(4000, 0.25): comfortably inside ±5σ.
        assert!((800..1200).contains(&gone), "gone = {gone}");
        // p = 1 empties the histogram.
        let rest = h.total_balls();
        assert_eq!(departure_split(&mut h, 1.0, &mut rng), rest);
        assert_eq!(h.total_balls(), 0);
    }

    #[test]
    fn zero_churn_stream_places_every_ball() {
        let spec = StreamSpec::new(64, 0.0).deterministic();
        let p = StreamProtocol::new(spec, Family::Adaptive);
        let cfg = RunConfig::new(256, 2_560).with_engine(Engine::Auto);
        let out = run_protocol(&p, &cfg, 5);
        assert_eq!(out.m, 2_560);
        assert_eq!(out.scenario.arrivals, 2_560);
        assert_eq!(out.scenario.shed, 0);
        assert_eq!(out.scenario.label(), "stream");
        // The adaptive guarantee carries over at zero churn.
        assert!(out.max_load() <= 11, "max = {}", out.max_load());
    }

    #[test]
    fn churn_reaches_a_drifting_steady_state() {
        // λ = 512/tick against μ = 0.05/ball/tick → ~10240 resident.
        let spec = StreamSpec::new(400, 0.05);
        let cfg = RunConfig::new(1_024, 400 * 512);
        let report = serve(&spec, Family::Adaptive, &cfg, 17);
        let resident = report.outcome.m as f64;
        assert!(
            (7_000.0..14_000.0).contains(&resident),
            "resident = {resident}"
        );
        assert_eq!(report.outcome.scenario.shed, 0);
        assert_eq!(report.series.len(), 400);
        // Steady state: the last-quarter gap stays small (adaptive
        // keeps the load vector smooth).
        let tail_gap = report.series[300..].iter().map(|s| s.gap).max().unwrap();
        assert!(tail_gap <= 16, "tail gap = {tail_gap}");
        assert!(report.latency.count() > 0);
        assert!(report.latency.quantile(0.5) >= 1);
    }

    #[test]
    fn mass_failure_sheds_and_recovers() {
        let faults = FaultPlan::mass_failure(120, 0.5, 200, 77);
        let retry = RetryPolicy {
            probe_budget: 4,
            retry_budget: 2,
            backoff_cap: 4,
            fallback_alive_frac: 0.6,
        };
        let spec = StreamSpec::new(400, 0.05)
            .with_faults(faults)
            .with_retry(retry);
        let cfg = RunConfig::new(1_024, 400 * 512);
        let report = serve(&spec, Family::Greedy(2), &cfg, 23);
        let s = &report.outcome.scenario;
        // The crash window wastes probes: some balls shed or fell back.
        assert!(s.shed + s.fallbacks > 0, "faults left no trace");
        // Everyone is back by the end.
        assert_eq!(s.alive_frac, 1.0);
        report.outcome.validate();
    }

    #[test]
    fn latency_tail_quantiles() {
        let mut t = LatencyTail::new();
        for s in [1u64, 1, 1, 2, 2, 3, 100] {
            t.record(s);
        }
        assert_eq!(t.count(), 7);
        assert_eq!(t.quantile(0.5), 2);
        assert_eq!(t.quantile(0.99), 64); // saturating cell
        assert_eq!(LatencyTail::new().quantile(0.5), 0);
    }
}
