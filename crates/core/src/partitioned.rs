//! Bins partitioned by load: O(1) placement, O(1) threshold queries.
//!
//! The retry loop of `threshold`/`adaptive` needs two queries fast:
//! *how many* bins currently accept a ball (load below the threshold),
//! and *pick one* of them uniformly. This structure keeps a permutation
//! of the bins grouped by load (ascending), with one boundary index per
//! load level, so both queries and ball placement are O(1).
//!
//! Because loads only ever increase during an allocation run, groups only
//! ever shrink from the left, which keeps the bookkeeping a single swap
//! per placement — the standard technique for simulating balanced
//! allocations at scale (needed here for the `m = n²` runs of Lemma 4.2).

use crate::bins::LoadVector;
use bib_rng::{Rng64, RngExt};

/// Load vector with a grouped-by-load index.
///
/// # Examples
///
/// ```
/// use bib_core::partitioned::PartitionedBins;
/// use bib_rng::SplitMix64;
///
/// let mut bins = PartitionedBins::new(4);
/// bins.place(0);
/// bins.place(0);
/// bins.place(2);
/// assert_eq!(bins.count_below(1), 2);      // bins 1 and 3 are empty
/// assert_eq!(bins.max_load(), 2);
/// let mut rng = SplitMix64::new(1);
/// let open = bins.choose_below(2, &mut rng); // any bin with load < 2
/// assert!(open != 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedBins {
    loads: Vec<u32>,
    /// Bins sorted ascending by load (stable within a group only up to
    /// swaps).
    order: Vec<u32>,
    /// `pos[b]` = index of bin `b` in `order`.
    pos: Vec<u32>,
    /// `boundary[l]` = index in `order` of the first bin with load ≥ `l`.
    /// `boundary[0] = 0`; the vector always has `max_load + 2` entries so
    /// `boundary[max_load + 1] = n` exists.
    boundary: Vec<u32>,
    total: u64,
}

impl PartitionedBins {
    /// `n` empty bins; panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "PartitionedBins: need at least one bin");
        assert!(n <= u32::MAX as usize, "PartitionedBins: too many bins");
        Self {
            loads: vec![0; n],
            order: (0..n as u32).collect(),
            pos: (0..n as u32).collect(),
            boundary: vec![0, n as u32],
            total: 0,
        }
    }

    /// Builds the index from explicit loads (counting sort, O(n + max)).
    pub fn from_loads(loads: Vec<u32>) -> Self {
        assert!(!loads.is_empty(), "PartitionedBins: need at least one bin");
        let n = loads.len();
        let max = loads.iter().copied().max().unwrap_or(0) as usize;
        let mut counts = vec![0u32; max + 2];
        for &l in &loads {
            counts[l as usize + 1] += 1;
        }
        // Prefix-sum: counts[l] = first order-index of load-l group.
        for l in 1..counts.len() {
            counts[l] += counts[l - 1];
        }
        let boundary = counts.clone();
        let mut order = vec![0u32; n];
        let mut cursor = counts;
        let mut pos = vec![0u32; n];
        for (b, &l) in loads.iter().enumerate() {
            let idx = cursor[l as usize];
            order[idx as usize] = b as u32;
            pos[b] = idx;
            cursor[l as usize] += 1;
        }
        let total = loads.iter().map(|&l| l as u64).sum();
        Self {
            loads,
            order,
            pos,
            boundary,
            total,
        }
    }

    /// Number of bins.
    pub fn n(&self) -> usize {
        self.loads.len()
    }

    /// Balls placed so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Load of bin `b`.
    #[inline]
    pub fn load(&self, b: usize) -> u32 {
        self.loads[b]
    }

    /// Current maximum load (O(1): the boundary vector's height).
    pub fn max_load(&self) -> u32 {
        // boundary has max_load + 2 entries, but trailing groups can be
        // empty only transiently — they never are, because an entry is
        // appended exactly when a bin first reaches the new maximum and
        // loads never decrease.
        (self.boundary.len() - 2) as u32
    }

    /// Number of bins with load strictly below `t` — O(1).
    #[inline]
    pub fn count_below(&self, t: u32) -> usize {
        let t = t as usize;
        if t >= self.boundary.len() {
            self.n()
        } else {
            self.boundary[t] as usize
        }
    }

    /// Uniformly random bin among those with load `< t` — O(1).
    /// Panics if no bin qualifies.
    #[inline]
    pub fn choose_below<R: Rng64 + ?Sized>(&self, t: u32, rng: &mut R) -> usize {
        let k = self.count_below(t);
        assert!(k > 0, "choose_below: no bin has load < {t}");
        self.order[rng.range_usize(k)] as usize
    }

    /// Adds one ball to bin `b` — O(1).
    #[inline]
    pub fn place(&mut self, b: usize) {
        let l = self.loads[b] as usize;
        // The load-l group spans order[boundary[l] .. boundary[l+1]).
        let last = self.boundary[l + 1] - 1;
        let p = self.pos[b];
        debug_assert!(p <= last && p >= self.boundary[l]);
        // Swap bin b to the end of its group…
        let other = self.order[last as usize];
        self.order.swap(p as usize, last as usize);
        self.pos[b] = last;
        self.pos[other as usize] = p;
        // …and absorb that slot into the (l+1)-group.
        self.boundary[l + 1] = last;
        self.loads[b] += 1;
        self.total += 1;
        // New global maximum ⇒ extend the boundary vector.
        if l + 2 == self.boundary.len() {
            self.boundary.push(self.n() as u32);
        }
    }

    /// Read-only view of the loads.
    pub fn as_slice(&self) -> &[u32] {
        &self.loads
    }

    /// Snapshot as a plain [`LoadVector`].
    pub fn to_load_vector(&self) -> LoadVector {
        LoadVector::from_loads(self.loads.clone())
    }

    /// Internal consistency check (tests and debug assertions): the
    /// grouped order, positions and boundaries all describe `loads`.
    pub fn check_invariants(&self) {
        let n = self.n();
        assert_eq!(self.order.len(), n);
        assert_eq!(self.pos.len(), n);
        assert_eq!(self.boundary[0], 0);
        assert_eq!(
            *self
                .boundary
                .last()
                .expect("boundary always holds at least the leading 0"),
            n as u32
        );
        // pos inverts order.
        for (idx, &b) in self.order.iter().enumerate() {
            assert_eq!(self.pos[b as usize] as usize, idx);
        }
        // order is sorted by load and boundaries delimit the groups.
        for idx in 1..n {
            assert!(
                self.loads[self.order[idx - 1] as usize] <= self.loads[self.order[idx] as usize]
            );
        }
        for (l, w) in self.boundary.windows(2).enumerate() {
            for idx in w[0]..w[1] {
                assert_eq!(
                    self.loads[self.order[idx as usize] as usize] as usize, l,
                    "bin in wrong group"
                );
            }
        }
        assert_eq!(
            self.total,
            self.loads.iter().map(|&l| l as u64).sum::<u64>()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_rng::SplitMix64;

    #[test]
    fn new_all_below_one() {
        let pb = PartitionedBins::new(4);
        pb.check_invariants();
        assert_eq!(pb.count_below(1), 4);
        assert_eq!(pb.count_below(0), 0);
        assert_eq!(pb.max_load(), 0);
    }

    #[test]
    fn place_sequence_keeps_invariants() {
        let mut pb = PartitionedBins::new(5);
        for b in [0usize, 0, 3, 3, 3, 1, 4, 0] {
            pb.place(b);
            pb.check_invariants();
        }
        assert_eq!(pb.load(0), 3);
        assert_eq!(pb.load(3), 3);
        assert_eq!(pb.load(2), 0);
        assert_eq!(pb.total(), 8);
        assert_eq!(pb.max_load(), 3);
        assert_eq!(pb.count_below(3), 3); // bins 1, 2, 4
        assert_eq!(pb.count_below(1), 1); // bin 2
    }

    #[test]
    fn count_below_matches_naive_under_random_ops() {
        let mut pb = PartitionedBins::new(16);
        let mut naive = crate::bins::LoadVector::new(16);
        let mut rng = SplitMix64::new(77);
        use bib_rng::RngExt;
        for _ in 0..2000 {
            let b = rng.range_usize(16);
            pb.place(b);
            naive.place(b);
            let t = rng.range_u64(12) as u32;
            assert_eq!(pb.count_below(t), naive.count_below(t));
        }
        pb.check_invariants();
        assert_eq!(pb.as_slice(), naive.as_slice());
    }

    #[test]
    fn choose_below_returns_only_qualifying_bins() {
        let mut pb = PartitionedBins::new(8);
        // Load bins 0..4 to height 2.
        for b in 0..4 {
            pb.place(b);
            pb.place(b);
        }
        let mut rng = SplitMix64::new(88);
        for _ in 0..500 {
            let b = pb.choose_below(1, &mut rng);
            assert!(b >= 4, "bin {b} has load {}", pb.load(b));
        }
        for _ in 0..500 {
            let b = pb.choose_below(2, &mut rng);
            assert!(pb.load(b) < 2);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn choose_below_is_uniform_over_group() {
        let mut pb = PartitionedBins::new(4);
        pb.place(0); // bin 0 has load 1, others 0
        let mut rng = SplitMix64::new(99);
        let mut counts = [0u32; 4];
        for _ in 0..30_000 {
            counts[pb.choose_below(1, &mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        for b in 1..4 {
            assert!(
                (9_000..11_000).contains(&counts[b]),
                "bin {b}: {}",
                counts[b]
            );
        }
    }

    #[test]
    #[should_panic]
    fn choose_below_empty_panics() {
        let pb = PartitionedBins::new(3);
        let mut rng = SplitMix64::new(1);
        pb.choose_below(0, &mut rng);
    }

    #[test]
    fn from_loads_matches_incremental() {
        let loads = vec![2u32, 0, 1, 2, 5, 0];
        let pb = PartitionedBins::from_loads(loads.clone());
        pb.check_invariants();
        assert_eq!(pb.as_slice(), loads.as_slice());
        assert_eq!(pb.max_load(), 5);
        assert_eq!(pb.count_below(2), 3);
        assert_eq!(pb.total(), 10);
    }

    #[test]
    fn to_load_vector_round_trip() {
        let mut pb = PartitionedBins::new(3);
        pb.place(1);
        pb.place(1);
        pb.place(2);
        let lv = pb.to_load_vector();
        assert_eq!(lv.as_slice(), &[0, 2, 1]);
        assert_eq!(lv.total(), 3);
    }

    #[test]
    fn single_bin() {
        let mut pb = PartitionedBins::new(1);
        for i in 0..10 {
            assert_eq!(pb.count_below(i + 1), 1);
            pb.place(0);
            pb.check_invariants();
        }
        assert_eq!(pb.load(0), 10);
        assert_eq!(pb.max_load(), 10);
    }
}
