//! Cross-validation of our samplers against the `rand` crate
//! (dev-dependency only) and against exact pmfs from `bib-analysis`.
//!
//! All tests use fixed seeds and generous tolerances: they detect
//! implementation mistakes (off-by-one supports, biased ranges), not
//! random flukes.

use bib_analysis::chisq::{chi_square_gof, chi_square_uniform};
use bib_analysis::{Binomial as ExactBinomial, Poisson as ExactPoisson};
use bib_rng::dist::{BinomialSampler, Distribution, PoissonSampler};
use bib_rng::{RngExt, SplitMix64, Xoshiro256PlusPlus};
use rand::{Rng, SeedableRng};

/// Our uniform-range sampler and rand's must agree in distribution:
/// compare bucket histograms of both through a two-sample chi-square
/// style check.
#[test]
fn range_sampler_agrees_with_rand() {
    const N: u64 = 37; // awkward non-power-of-two range
    const SAMPLES: usize = 200_000;
    let mut ours = Xoshiro256PlusPlus::seed_from_u64(99);
    let mut theirs = rand::rngs::StdRng::seed_from_u64(99);
    let mut h_ours = vec![0u64; N as usize];
    let mut h_theirs = vec![0u64; N as usize];
    for _ in 0..SAMPLES {
        h_ours[ours.range_u64(N) as usize] += 1;
        h_theirs[theirs.gen_range(0..N) as usize] += 1;
    }
    // Each histogram must individually pass uniformity.
    assert!(chi_square_uniform(&h_ours).p_value > 1e-4, "ours biased");
    assert!(
        chi_square_uniform(&h_theirs).p_value > 1e-4,
        "rand biased?!"
    );
    // And their difference must be noise: per-cell |a−b| ≤ 6σ.
    for (i, (&a, &b)) in h_ours.iter().zip(&h_theirs).enumerate() {
        let diff = (a as f64 - b as f64).abs();
        let sigma = ((a + b) as f64).sqrt();
        assert!(diff < 6.0 * sigma + 1.0, "cell {i}: {a} vs {b}");
    }
}

/// Bernoulli frequencies agree with rand's at several probabilities.
#[test]
fn bernoulli_agrees_with_rand() {
    const SAMPLES: usize = 100_000;
    for (i, &p) in [0.1f64, 0.5, 0.9].iter().enumerate() {
        let mut ours = SplitMix64::new(7 + i as u64);
        let mut theirs = rand::rngs::StdRng::seed_from_u64(7 + i as u64);
        let a = (0..SAMPLES).filter(|_| ours.bernoulli(p)).count() as f64;
        let b = (0..SAMPLES).filter(|_| theirs.gen_bool(p)).count() as f64;
        let sigma = (SAMPLES as f64 * p * (1.0 - p)).sqrt();
        assert!(
            (a - SAMPLES as f64 * p).abs() < 5.0 * sigma,
            "ours off at p={p}"
        );
        assert!((a - b).abs() < 7.0 * sigma, "disagreement at p={p}");
    }
}

/// f64 conversion matches rand's distributional contract ([0,1),
/// mean 1/2, variance 1/12).
#[test]
fn f64_moments() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
    let n = 200_000;
    let xs: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    assert!((var - 1.0 / 12.0).abs() < 0.002, "var {var}");
    assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
}

/// The Poisson sampler passes GOF against the exact pmf at the exact
/// rates the paper uses (1/2, 100/198, 199/198) plus a large rate.
#[test]
fn poisson_gof_at_paper_rates() {
    for (i, &lam) in [0.5f64, 100.0 / 198.0, 199.0 / 198.0, 64.0]
        .iter()
        .enumerate()
    {
        let d = PoissonSampler::new(lam);
        let exact = ExactPoisson::new(lam);
        let hi = exact.quantile(1.0 - 1e-7) + 3;
        let mut obs = vec![0u64; hi as usize + 1];
        let mut overflow = 0u64;
        let mut rng = SplitMix64::new(1000 + i as u64);
        let n = 120_000;
        for _ in 0..n {
            let k = d.sample(&mut rng);
            if k <= hi {
                obs[k as usize] += 1;
            } else {
                overflow += 1;
            }
        }
        let probs: Vec<f64> = (0..=hi).map(|k| exact.pmf(k)).collect();
        let r = chi_square_gof(&obs, &probs, overflow, 5.0);
        assert!(
            r.p_value > 1e-4,
            "λ={lam}: χ²={} p={}",
            r.statistic,
            r.p_value
        );
    }
}

/// The binomial sampler passes GOF at the Lemma 3.2 shape Bin(n/2, 1/n).
#[test]
fn binomial_gof_at_lemma32_shape() {
    let n_bins = 1u64 << 12;
    let d = BinomialSampler::new(n_bins / 2, 1.0 / n_bins as f64);
    let exact = ExactBinomial::new(n_bins / 2, 1.0 / n_bins as f64);
    let hi = 12u64;
    let mut obs = vec![0u64; hi as usize + 1];
    let mut overflow = 0u64;
    let mut rng = SplitMix64::new(2024);
    for _ in 0..120_000 {
        let k = d.sample(&mut rng);
        if k <= hi {
            obs[k as usize] += 1;
        } else {
            overflow += 1;
        }
    }
    let probs: Vec<f64> = (0..=hi).map(|k| exact.pmf(k)).collect();
    let r = chi_square_gof(&obs, &probs, overflow, 5.0);
    assert!(r.p_value > 1e-4, "p={}", r.p_value);
    // And the tail that Lemma 3.2 bounds: empirical Pr[X ≥ 2] vs 1/20.
    let ge2: u64 = obs[2..].iter().sum::<u64>() + overflow;
    assert!(ge2 as f64 / 120_000.0 > 1.0 / 20.0);
}

/// `sample_distinct` (Floyd's algorithm) is uniform over k-subsets:
/// the overlap with a fixed set is hypergeometric; chi-square GOF.
#[test]
fn sample_distinct_is_hypergeometric() {
    use bib_analysis::dist::Hypergeometric;
    let (n, s, k) = (20usize, 8u64, 6usize);
    let d = Hypergeometric::new(n as u64, s, k as u64);
    let mut rng = SplitMix64::new(777);
    let reps = 60_000;
    let mut obs = vec![0u64; k + 1];
    for _ in 0..reps {
        let sample = rng.sample_distinct(n, k);
        let hits = sample.iter().filter(|&&x| (x as u64) < s).count();
        obs[hits] += 1;
    }
    let probs: Vec<f64> = (0..=k as u64).map(|x| d.pmf(x)).collect();
    let r = chi_square_gof(&obs, &probs, 0, 5.0);
    assert!(r.p_value > 1e-4, "χ²={} p={}", r.statistic, r.p_value);
}

/// Kolmogorov–Smirnov tests for the continuous samplers against their
/// exact cdfs.
#[test]
fn ks_tests_for_continuous_samplers() {
    use bib_analysis::ks::ks_test;
    use bib_analysis::special::normal_cdf;
    use bib_rng::dist::{Exponential, Normal};
    const N: usize = 20_000;

    // Uniform f64 conversion.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(31);
    let u: Vec<f64> = (0..N).map(|_| rng.next_f64()).collect();
    let r = ks_test(&u, |x| x.clamp(0.0, 1.0));
    assert!(
        r.p_value > 1e-4,
        "uniform: D={} p={}",
        r.statistic,
        r.p_value
    );

    // Exponential(1.7).
    let d = Exponential::new(1.7);
    let e: Vec<f64> = (0..N).map(|_| d.sample(&mut rng)).collect();
    let r = ks_test(&e, |x| (1.0 - (-1.7 * x).exp()).clamp(0.0, 1.0));
    assert!(
        r.p_value > 1e-4,
        "exponential: D={} p={}",
        r.statistic,
        r.p_value
    );

    // Normal(−2, 3).
    let d = Normal::new(-2.0, 3.0);
    let g: Vec<f64> = (0..N).map(|_| d.sample(&mut rng)).collect();
    let r = ks_test(&g, |x| normal_cdf((x + 2.0) / 3.0));
    assert!(
        r.p_value > 1e-4,
        "normal: D={} p={}",
        r.statistic,
        r.p_value
    );
}

/// All three generator families pass KS uniformity on next_f64 — the
/// simulation layer is generator-independent in distribution.
#[test]
fn ks_uniformity_across_generator_families() {
    use bib_analysis::ks::ks_test;
    const N: usize = 20_000;
    let collect = |mut f: Box<dyn FnMut() -> f64>| -> Vec<f64> { (0..N).map(|_| f()).collect() };
    let mut a = SplitMix64::new(41);
    let mut b = bib_rng::Xoshiro256StarStar::seed_from_u64(42);
    let mut c = bib_rng::Pcg32::new(43, 9);
    for (name, data) in [
        ("splitmix", collect(Box::new(move || a.next_f64()))),
        ("xoshiro**", collect(Box::new(move || b.next_f64()))),
        ("pcg32", collect(Box::new(move || c.next_f64()))),
    ] {
        let r = ks_test(&data, |x| x.clamp(0.0, 1.0));
        assert!(
            r.p_value > 1e-4,
            "{name}: D={} p={}",
            r.statistic,
            r.p_value
        );
    }
}

/// Different generator families agree on derived-distribution moments
/// (generator independence of the simulation layer).
#[test]
fn generator_families_agree_on_moments() {
    let n = 100_000;
    let mean_of =
        |mut f: Box<dyn FnMut() -> f64>| -> f64 { (0..n).map(|_| f()).sum::<f64>() / n as f64 };
    let mut a = Xoshiro256PlusPlus::seed_from_u64(5);
    let mut b = bib_rng::Xoshiro256StarStar::seed_from_u64(6);
    let mut c = bib_rng::Pcg32::new(7, 3);
    let ma = mean_of(Box::new(move || a.range_u64(1000) as f64));
    let mb = mean_of(Box::new(move || b.range_u64(1000) as f64));
    let mc = mean_of(Box::new(move || c.range_u64(1000) as f64));
    for (name, m) in [("xo++", ma), ("xo**", mb), ("pcg", mc)] {
        assert!((m - 499.5).abs() < 3.0, "{name}: mean {m}");
    }
}
