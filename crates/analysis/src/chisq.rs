//! Chi-square goodness-of-fit testing.
//!
//! Used by `bib-rng`'s statistical test suite to validate every sampler
//! against the exact distributions in [`crate::dist`], with fixed seeds
//! so the tests are deterministic.

use crate::special::gamma_q;

/// Result of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquare {
    /// The χ² statistic `Σ (observed − expected)² / expected`.
    pub statistic: f64,
    /// Degrees of freedom (number of cells − 1, after pooling).
    pub dof: u64,
    /// Upper-tail p-value `Pr[χ²_dof ≥ statistic]`.
    pub p_value: f64,
}

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom: `Pr[X ≥ x] = Q(dof/2, x/2)`.
pub fn chi_square_sf(dof: u64, x: f64) -> f64 {
    assert!(dof > 0, "chi_square_sf: dof must be positive");
    assert!(x >= 0.0, "chi_square_sf: x must be non-negative");
    gamma_q(dof as f64 / 2.0, x / 2.0)
}

/// Pearson chi-square goodness-of-fit test of observed counts against
/// expected probabilities.
///
/// Cells with expected count below `min_expected` (use 5.0 for textbook
/// validity) are pooled into their right neighbour; any residual
/// probability mass not covered by `probs` is pooled into a final
/// overflow cell together with `overflow_count` observations.
///
/// Panics if fewer than two effective cells remain.
pub fn chi_square_gof(
    observed: &[u64],
    probs: &[f64],
    overflow_count: u64,
    min_expected: f64,
) -> ChiSquare {
    assert_eq!(
        observed.len(),
        probs.len(),
        "chi_square_gof: length mismatch"
    );
    let n: u64 = observed.iter().sum::<u64>() + overflow_count;
    assert!(n > 0, "chi_square_gof: no observations");
    let covered: f64 = probs.iter().sum();
    assert!(
        covered <= 1.0 + 1e-9,
        "chi_square_gof: probabilities sum to {covered} > 1"
    );

    // Build (observed, expected) cells, then pool small expectations.
    let mut cells: Vec<(f64, f64)> = observed
        .iter()
        .zip(probs)
        .map(|(&o, &p)| (o as f64, p * n as f64))
        .collect();
    let leftover = (1.0 - covered).max(0.0);
    cells.push((overflow_count as f64, leftover * n as f64));

    let mut pooled: Vec<(f64, f64)> = Vec::with_capacity(cells.len());
    let mut acc = (0.0, 0.0);
    for (o, e) in cells {
        acc.0 += o;
        acc.1 += e;
        if acc.1 >= min_expected {
            pooled.push(acc);
            acc = (0.0, 0.0);
        }
    }
    if acc.1 > 0.0 || acc.0 > 0.0 {
        // Merge the trailing remainder into the last pooled cell.
        if let Some(last) = pooled.last_mut() {
            last.0 += acc.0;
            last.1 += acc.1;
        } else {
            pooled.push(acc);
        }
    }
    assert!(
        pooled.len() >= 2,
        "chi_square_gof: need at least two cells after pooling, got {}",
        pooled.len()
    );

    let statistic: f64 = pooled
        .iter()
        .map(|&(o, e)| {
            debug_assert!(e > 0.0, "pooled expected must be positive");
            (o - e) * (o - e) / e
        })
        .sum();
    let dof = (pooled.len() - 1) as u64;
    ChiSquare {
        statistic,
        dof,
        p_value: chi_square_sf(dof, statistic),
    }
}

/// Convenience: chi-square uniformity test over `k` equiprobable cells.
pub fn chi_square_uniform(observed: &[u64]) -> ChiSquare {
    let k = observed.len();
    assert!(k >= 2, "chi_square_uniform: need at least two cells");
    let probs = vec![1.0 / k as f64; k];
    chi_square_gof(observed, &probs, 0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf_known_values() {
        // Pr[χ²₁ ≥ 3.841] ≈ 0.05; Pr[χ²₂ ≥ x] = e^{−x/2}.
        assert!((chi_square_sf(1, 3.841_458_820_694_124) - 0.05).abs() < 1e-6);
        for &x in &[0.5, 1.0, 5.0] {
            assert!((chi_square_sf(2, x) - (-x / 2.0f64).exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_perfect_fit_has_zero_statistic() {
        let r = chi_square_uniform(&[100, 100, 100, 100]);
        assert_eq!(r.statistic, 0.0);
        assert_eq!(r.dof, 3);
        assert!((r.p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_gross_misfit_is_rejected() {
        let r = chi_square_uniform(&[1000, 10, 10, 10]);
        assert!(r.p_value < 1e-10, "p={}", r.p_value);
    }

    #[test]
    fn gof_with_overflow_cell() {
        // Geometric(1/2) on {1,2,3}, overflow beyond.
        let probs = [0.5, 0.25, 0.125];
        let observed = [512u64, 256, 128];
        let overflow = 128u64; // ≈ remaining mass 0.125 · 1024
        let r = chi_square_gof(&observed, &probs, overflow, 5.0);
        assert!(r.p_value > 0.9, "p={}", r.p_value);
    }

    #[test]
    fn gof_pools_small_cells() {
        // Tiny expected counts must be pooled, not divided by ~0.
        let probs = [0.97, 0.01, 0.01, 0.005, 0.005];
        let observed = [970u64, 10, 10, 5, 5];
        let r = chi_square_gof(&observed, &probs, 0, 5.0);
        assert!(r.statistic.is_finite());
        assert!(r.dof >= 1);
    }

    #[test]
    #[should_panic]
    fn gof_rejects_mismatched_lengths() {
        chi_square_gof(&[1, 2], &[0.5], 0, 5.0);
    }
}
