//! D1 violating fixture: wall-clock read in an engine crate.
use std::time::Instant;

pub fn timed_run() -> u64 {
    let start = Instant::now();
    let work = 40 + 2;
    let _ = start.elapsed();
    work
}
