//! `balls-into-bins` command-line interface.
//!
//! ```text
//! balls-into-bins list
//! balls-into-bins constants
//! balls-into-bins run --protocol adaptive --n 10000 --m 1000000 \
//!     [--seed 2013] [--engine jump|faithful|level-batched|histogram|auto] [--reps 1] [--trace]
//! balls-into-bins serve --n 100000 --arrivals 10000000 --ticks 1000 \
//!     [--depart 0.05] [--family greedy[2]] [--faults crash@200:0.5,recover@400:all] \
//!     [--threads 4] [--racy] [--seed 2013] [--series] [--poisson] \
//!     [--probe-budget 16] [--retry-budget 4] [--backoff-cap 8] [--fallback-frac 0.5]
//! ```
//!
//! `run` prints one summary line per replicate (CSV with a header), or a
//! per-stage potential trace with `--trace` (single replicate). The
//! special protocol name `bounded-load(cap=K)` runs the parallel
//! bounded-load protocol; its infeasibility error (`m > cap·n`) is a
//! typed [`ProtocolError`] reported on stderr with exit code 1, not a
//! panic.
//!
//! `serve` drives the fault-tolerant streaming allocator: `--arrivals`
//! balls arrive across `--ticks` virtual ticks (deterministic spread,
//! or Poisson with `--poisson`), each resident ball departs with
//! probability `--depart` per tick, and `--faults` injects seeded
//! crash/drain/slow/recover events (grammar `kind@tick:frac[,...]`,
//! `frac` in (0,1] or `all`). `--threads k` with `k > 1` uses the
//! dense sharded engine, bit-identical across thread counts unless
//! `--racy`. Prints a summary line; `--series` dumps the per-tick CSV
//! (tick, in-system, gap, max load, alive ppm, cumulative counters).

use balls_into_bins::core::prelude::*;
use balls_into_bins::core::protocol::StageTrace;
use balls_into_bins::core::protocols::by_name;
use balls_into_bins::core::run::{replicate_seed, run_with_observer};
use balls_into_bins::parallel::protocols::BoundedLoad;
use balls_into_bins::rng::SeedSequence;

const PROTOCOLS: &[&str] = &[
    "one-choice",
    "greedy[2]",
    "greedy[3]",
    "left[2]",
    "memory(1,1)",
    "threshold",
    "adaptive",
    "adaptive-tight",
    "bounded-load(cap=K)",
];

fn usage() -> ! {
    eprintln!(
        "usage:\n  balls-into-bins list\n  balls-into-bins constants\n  \
         balls-into-bins run --protocol <name> --n <bins> --m <balls>\n      \
         [--seed <u64>] [--engine jump|faithful|level-batched|histogram|auto] [--reps <count>] [--trace]\n  \
         balls-into-bins serve --n <bins> --arrivals <balls> --ticks <ticks>\n      \
         [--depart <p>] [--family one-choice|greedy[d]|adaptive|threshold] [--poisson]\n      \
         [--faults kind@tick:frac[,...]] [--threads <k>] [--racy] [--seed <u64>] [--series]\n      \
         [--probe-budget <u>] [--retry-budget <u>] [--backoff-cap <u>] [--fallback-frac <f>]\n\n\
         protocols: {}",
        PROTOCOLS.join(", ")
    );
    std::process::exit(2)
}

fn parse_u64(v: Option<String>, flag: &str) -> u64 {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("error: {flag} needs an unsigned integer");
        usage()
    })
}

fn parse_f64(v: Option<String>, flag: &str) -> f64 {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("error: {flag} needs a number");
        usage()
    })
}

/// Parses a protocol family name: `one-choice`, `greedy[d]`,
/// `adaptive`, or `threshold`.
fn parse_family(name: &str) -> Option<Family> {
    match name {
        "one-choice" => Some(Family::OneChoice),
        "adaptive" => Some(Family::Adaptive),
        "threshold" => Some(Family::Threshold),
        _ => {
            let d = name.strip_prefix("greedy[")?.strip_suffix(']')?;
            d.parse().ok().filter(|&d| d >= 1).map(Family::Greedy)
        }
    }
}

/// Parses `bounded-load(cap=K)`; plain `bounded-load` gets the
/// default cap of 2.
fn parse_bounded_load(name: &str) -> Option<BoundedLoad> {
    if name == "bounded-load" {
        return Some(BoundedLoad::new(2));
    }
    let cap = name
        .strip_prefix("bounded-load(cap=")?
        .strip_suffix(')')?
        .parse()
        .ok()?;
    Some(BoundedLoad::new(cap))
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("list") => {
            for p in PROTOCOLS {
                println!("{p}");
            }
        }
        Some("constants") => {
            println!("{}", balls_into_bins::analysis::paper::constants());
        }
        Some("run") => {
            let mut protocol = None;
            let mut n = None;
            let mut m = None;
            let mut seed = 2013u64;
            let mut engine = Engine::Jump;
            let mut reps = 1u64;
            let mut trace = false;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--protocol" => protocol = args.next(),
                    "--n" => n = Some(parse_u64(args.next(), "--n") as usize),
                    "--m" => m = Some(parse_u64(args.next(), "--m")),
                    "--seed" => seed = parse_u64(args.next(), "--seed"),
                    "--reps" => reps = parse_u64(args.next(), "--reps"),
                    "--trace" => trace = true,
                    "--engine" => match args.next().as_deref().map(str::parse) {
                        Some(Ok(e)) => engine = e,
                        Some(Err(msg)) => {
                            eprintln!("error: {msg}");
                            usage()
                        }
                        None => {
                            eprintln!("error: --engine needs a value");
                            usage()
                        }
                    },
                    other => {
                        eprintln!("error: unknown flag {other}");
                        usage()
                    }
                }
            }
            let (Some(pname), Some(n), Some(m)) = (protocol, n, m) else {
                eprintln!("error: run needs --protocol, --n and --m");
                usage()
            };
            if let Some(bl) = parse_bounded_load(&pname) {
                // Typed-error path: infeasible configurations (m >
                // cap·n) are an error report and exit 1, not a panic.
                println!("replicate,protocol,n,m,samples,time_ratio,max_load,gap,psi");
                for rep in 0..reps {
                    let s = replicate_seed(seed, &Protocol::name(&bl), rep);
                    let mut rng = SeedSequence::new(s).rng();
                    match bl.try_run(n, m, &mut rng) {
                        Ok(out) => {
                            out.validate();
                            println!(
                                "{},{},{},{},{},{:.6},{},{},{:.4}",
                                rep,
                                out.protocol,
                                out.n,
                                out.m,
                                out.total_samples,
                                out.time_ratio(),
                                out.max_load(),
                                out.gap(),
                                out.psi()
                            );
                        }
                        Err(e) => {
                            eprintln!("error: {e}");
                            std::process::exit(1)
                        }
                    }
                }
                return;
            }
            let Some(proto) = by_name(&pname) else {
                eprintln!("error: unknown protocol {pname}");
                usage()
            };
            let cfg = RunConfig::new(n, m).with_engine(engine);

            if trace {
                let mut st = StageTrace::new();
                let out = run_with_observer(proto.as_ref(), &cfg, seed, &mut st);
                println!("stage,psi,ln_phi,gap");
                for i in 0..st.stages.len() {
                    println!(
                        "{},{:.4},{:.4},{}",
                        st.stages[i], st.psi[i], st.ln_phi[i], st.gaps[i]
                    );
                }
                eprintln!(
                    "# {}: samples={} T/m={:.4} max={} gap={}",
                    out.protocol,
                    out.total_samples,
                    out.time_ratio(),
                    out.max_load(),
                    out.gap()
                );
            } else {
                println!("replicate,protocol,n,m,samples,time_ratio,max_load,gap,psi");
                for rep in 0..reps {
                    let s = replicate_seed(seed, &proto.name(), rep);
                    let mut rng = SeedSequence::new(s).rng();
                    let out = proto.allocate(&cfg, &mut rng, &mut NullObserver);
                    out.validate();
                    println!(
                        "{},{},{},{},{},{:.6},{},{},{:.4}",
                        rep,
                        out.protocol,
                        out.n,
                        out.m,
                        out.total_samples,
                        out.time_ratio(),
                        out.max_load(),
                        out.gap(),
                        out.psi()
                    );
                }
            }
        }
        Some("serve") => {
            let mut n = None;
            let mut arrivals = None;
            let mut ticks = None;
            let mut depart = 0.0f64;
            let mut family = Family::Greedy(2);
            let mut faults = None;
            let mut seed = 2013u64;
            let mut threads = 1usize;
            let mut racy = false;
            let mut poisson = false;
            let mut series = false;
            let mut retry = RetryPolicy::default();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--n" => n = Some(parse_u64(args.next(), "--n") as usize),
                    "--arrivals" => arrivals = Some(parse_u64(args.next(), "--arrivals")),
                    "--ticks" => ticks = Some(parse_u64(args.next(), "--ticks")),
                    "--depart" => depart = parse_f64(args.next(), "--depart"),
                    "--seed" => seed = parse_u64(args.next(), "--seed"),
                    "--threads" => threads = parse_u64(args.next(), "--threads") as usize,
                    "--racy" => racy = true,
                    "--poisson" => poisson = true,
                    "--series" => series = true,
                    "--probe-budget" => {
                        retry.probe_budget = parse_u64(args.next(), "--probe-budget") as u32
                    }
                    "--retry-budget" => {
                        retry.retry_budget = parse_u64(args.next(), "--retry-budget") as u32
                    }
                    "--backoff-cap" => {
                        retry.backoff_cap = parse_u64(args.next(), "--backoff-cap") as u32
                    }
                    "--fallback-frac" => {
                        retry.fallback_alive_frac = parse_f64(args.next(), "--fallback-frac")
                    }
                    "--family" => match args.next().as_deref().map(parse_family) {
                        Some(Some(f)) => family = f,
                        _ => {
                            eprintln!(
                                "error: --family needs one-choice, greedy[d], adaptive or threshold"
                            );
                            usage()
                        }
                    },
                    "--faults" => faults = args.next(),
                    other => {
                        eprintln!("error: unknown flag {other}");
                        usage()
                    }
                }
            }
            let (Some(n), Some(arrivals), Some(ticks)) = (n, arrivals, ticks) else {
                eprintln!("error: serve needs --n, --arrivals and --ticks");
                usage()
            };
            if !(0.0..1.0).contains(&depart) {
                eprintln!("error: --depart must be in [0, 1)");
                usage()
            }
            let plan = match faults {
                Some(spec) => match FaultPlan::parse(&spec, seed) {
                    Ok(p) => p,
                    Err(msg) => {
                        eprintln!("error: bad --faults spec: {msg}");
                        usage()
                    }
                },
                None => FaultPlan::none(),
            };
            let mut spec = StreamSpec::new(ticks, depart)
                .with_faults(plan)
                .with_retry(retry);
            spec.poisson = poisson;
            let cfg = RunConfig::new(n, arrivals)
                .with_threads(threads)
                .with_racy(racy);
            let report = if threads > 1 {
                balls_into_bins::parallel::serve_concurrent(&spec, family, &cfg, seed)
            } else {
                serve(&spec, family, &cfg, seed)
            };
            let out = &report.outcome;
            let s = &out.scenario;
            if series {
                println!(
                    "tick,in_system,gap,max_load,alive_ppm,placed,departed,shed,fallbacks,samples"
                );
                for t in &report.series {
                    println!(
                        "{},{},{},{},{},{},{},{},{},{}",
                        t.tick,
                        t.in_system,
                        t.gap,
                        t.max_load,
                        t.alive_ppm,
                        t.placed,
                        t.departed,
                        t.shed,
                        t.fallbacks,
                        t.samples
                    );
                }
            }
            eprintln!(
                "# {} n={} ticks={} arrivals={} departed={} resident={} shed={} fallbacks={} \
                 alive_frac={:.3} shed_rate={:.6} gap={} max={} ops={} ops/s={:.0} \
                 latency p50={} p99={} wall={:.3}s",
                out.protocol,
                out.n,
                s.ticks,
                s.arrivals,
                s.departed,
                out.m,
                s.shed,
                s.fallbacks,
                s.alive_frac,
                s.shed_rate(),
                out.gap(),
                out.max_load(),
                report.ops(),
                report.ops_per_sec(),
                report.latency.quantile(0.50),
                report.latency.quantile(0.99),
                report.wall.as_secs_f64(),
            );
        }
        _ => usage(),
    }
}
