//! Distributional equivalence of the level-batched engine.
//!
//! The claim (see `bib-core::level_batched`): under `threshold`-style
//! protocols, `Engine::LevelBatched` induces *exactly* the same
//! distribution on the final load vector as `Engine::Faithful`. These
//! tests check it three ways:
//!
//! * exact small cases — `n = 1` (deterministic), the degenerate `t = 1`
//!   stages of `adaptive-tight` (deterministic), and invariants that
//!   must hold surely (mass, max-load bound) for `n ∈ {1, 2, 8, 64}`;
//! * two-sample chi-square tests on final-load functionals (the load of
//!   a fixed bin, the max−min gap) between faithful and level-batched
//!   replicate ensembles, including the `m ≫ n` regime;
//! * a mean-level check that the (CLT-sampled) allocation time under
//!   `LevelBatched` tracks the jump engine's exact accounting.

use bib_analysis::chisq::chi_square_sf;
use bib_core::batched::BatchedAdaptive;
use bib_core::prelude::*;
use bib_core::protocols::ThresholdSlack;
use bib_core::run::run_protocol;

/// Two-sample Pearson chi-square on a pair of histograms with pooling of
/// sparse cells; returns the p-value of "same distribution".
fn two_sample_p(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    assert!(na > 0 && nb > 0);
    let (na, nb) = (na as f64, nb as f64);
    // Pool cells until each has a combined count of ≥ 10.
    let mut cells: Vec<(f64, f64)> = Vec::new();
    let mut acc = (0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        acc.0 += x as f64;
        acc.1 += y as f64;
        if acc.0 + acc.1 >= 10.0 {
            cells.push(acc);
            acc = (0.0, 0.0);
        }
    }
    if acc.0 + acc.1 > 0.0 {
        if let Some(last) = cells.last_mut() {
            last.0 += acc.0;
            last.1 += acc.1;
        } else {
            cells.push(acc);
        }
    }
    if cells.len() < 2 {
        return 1.0; // both ensembles fully concentrated on one cell
    }
    let mut stat = 0.0;
    for &(x, y) in &cells {
        let tot = x + y;
        let ex = tot * na / (na + nb);
        let ey = tot * nb / (na + nb);
        stat += (x - ex) * (x - ex) / ex + (y - ey) * (y - ey) / ey;
    }
    chi_square_sf((cells.len() - 1) as u64, stat)
}

/// Histograms a per-outcome statistic over replicate ensembles of the
/// two engines.
fn engine_histograms<P, F>(
    proto: &P,
    n: usize,
    m: u64,
    reps: u64,
    cells: usize,
    stat: F,
) -> (Vec<u64>, Vec<u64>)
where
    P: Protocol,
    F: Fn(&Outcome) -> usize,
{
    let mut hists = Vec::new();
    for engine in [Engine::Faithful, Engine::LevelBatched] {
        let cfg = RunConfig::new(n, m).with_engine(engine);
        let mut h = vec![0u64; cells];
        for rep in 0..reps {
            // Distinct seed spaces per engine: the comparison is
            // distributional, not stream-coupled.
            let seed = rep + engine as u64 * 1_000_000;
            let out = run_protocol(proto, &cfg, seed);
            out.validate();
            let idx = stat(&out).min(cells - 1);
            h[idx] += 1;
        }
        hists.push(h);
    }
    let b = hists.pop().unwrap();
    let a = hists.pop().unwrap();
    (a, b)
}

#[test]
fn single_bin_is_deterministic_and_exact() {
    for m in [0u64, 1, 37, 1000] {
        let cfg = RunConfig::new(1, m).with_engine(Engine::LevelBatched);
        let out = run_protocol(&Threshold, &cfg, 5);
        out.validate();
        assert_eq!(out.loads, vec![m as u32]);
        assert_eq!(out.total_samples, m, "single bin wastes no samples");
        let out = run_protocol(&Adaptive::paper(), &cfg, 5);
        assert_eq!(out.loads, vec![m as u32]);
    }
}

#[test]
fn degenerate_t1_stages_are_exact() {
    // adaptive-tight's stage τ accepts only load < τ: every stage fills
    // every bin exactly once, deterministically — including the t = 1
    // first stage. Exact under every engine.
    for n in [2usize, 8, 64] {
        for phi in [1u64, 3] {
            let m = phi * n as u64;
            for engine in Engine::ALL {
                let cfg = RunConfig::new(n, m).with_engine(engine);
                let out = run_protocol(&Adaptive::tight(), &cfg, 7);
                out.validate();
                assert_eq!(out.loads, vec![phi as u32; n], "n={n} phi={phi} {engine:?}");
            }
        }
    }
}

#[test]
fn invariants_hold_across_sizes_and_protocols() {
    // Sure properties on every run: mass conservation (via validate),
    // the ⌈m/n⌉+1 max-load bound, and samples ≥ m.
    for n in [1usize, 2, 8, 64] {
        for m in [0u64, 1, 7, 64, 512 * 64] {
            let cfg = RunConfig::new(n, m).with_engine(Engine::LevelBatched);
            for seed in 0..3u64 {
                let thr = run_protocol(&Threshold, &cfg, seed);
                thr.validate();
                assert!(thr.max_load() as u64 <= cfg.max_load_bound(), "n={n} m={m}");
                let ada = run_protocol(&Adaptive::paper(), &cfg, seed);
                ada.validate();
                assert!(ada.max_load() as u64 <= cfg.max_load_bound(), "n={n} m={m}");
                let slk = run_protocol(&ThresholdSlack::new(3), &cfg, seed);
                slk.validate();
                if n > 1 {
                    let bat = run_protocol(&BatchedAdaptive::new(n as u64 / 2 + 1), &cfg, seed);
                    bat.validate();
                    assert!(bat.max_load() as u64 <= cfg.max_load_bound());
                }
            }
        }
    }
}

#[test]
fn chi_square_bin0_load_matches_faithful_small_n() {
    // n = 2, m = 4: the load of bin 0 takes values 0..=3 (bound ⌈4/2⌉+1).
    let (a, b) = engine_histograms(&Threshold, 2, 4, 4000, 4, |o| o.loads[0] as usize);
    let p = two_sample_p(&a, &b);
    assert!(
        p > 1e-4,
        "threshold n=2 m=4 bin-0 load: p={p}\n{a:?}\n{b:?}"
    );

    let (a, b) = engine_histograms(&Adaptive::paper(), 2, 5, 4000, 4, |o| o.loads[0] as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > 1e-4, "adaptive n=2 m=5 bin-0 load: p={p}\n{a:?}\n{b:?}");
}

#[test]
fn chi_square_gap_matches_faithful_n8() {
    let (a, b) = engine_histograms(&Threshold, 8, 64, 3000, 8, |o| o.gap() as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > 1e-4, "threshold n=8 gap: p={p}\n{a:?}\n{b:?}");

    let (a, b) = engine_histograms(&Adaptive::paper(), 8, 60, 3000, 8, |o| o.gap() as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > 1e-4, "adaptive n=8 m=60 gap: p={p}\n{a:?}\n{b:?}");
}

#[test]
fn chi_square_heavy_load_regime_matches_faithful() {
    // m ≫ n: n = 8, m = 1024·8 — the regime the engine exists for, kept
    // small enough that the faithful ensemble stays cheap.
    let (a, b) = engine_histograms(&Threshold, 8, 8 * 1024, 1500, 8, |o| o.gap() as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > 1e-4, "threshold heavy gap: p={p}\n{a:?}\n{b:?}");

    let (a, b) = engine_histograms(&Threshold, 64, 64 * 256, 800, 10, |o| o.gap() as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > 1e-4, "threshold n=64 heavy gap: p={p}\n{a:?}\n{b:?}");
}

#[test]
fn level_batched_is_deterministic_per_seed() {
    let cfg = RunConfig::new(64, 64 * 100).with_engine(Engine::LevelBatched);
    for proto in ["threshold", "adaptive", "adaptive-tight"] {
        let p = bib_core::protocols::by_name(proto).unwrap();
        let x = run_protocol(p.as_ref(), &cfg, 11);
        let y = run_protocol(p.as_ref(), &cfg, 11);
        assert_eq!(x, y, "{proto}");
    }
}

#[test]
fn allocation_time_tracks_jump_engine() {
    // total_samples under LevelBatched is a CLT draw of the same
    // negative-binomial total the jump engine accumulates exactly; the
    // ensemble means must agree to a couple of percent.
    let n = 64usize;
    let m = 64u64 * 64;
    let reps = 200u64;
    let mean_ratio = |engine: Engine| -> f64 {
        let cfg = RunConfig::new(n, m).with_engine(engine);
        (0..reps)
            .map(|s| run_protocol(&Threshold, &cfg, s).time_ratio())
            .sum::<f64>()
            / reps as f64
    };
    let jump = mean_ratio(Engine::Jump);
    let batched = mean_ratio(Engine::LevelBatched);
    assert!(
        (jump - batched).abs() < 0.03 * jump,
        "mean T/m: jump {jump} vs level-batched {batched}"
    );
    assert!(batched >= 1.0);
}
