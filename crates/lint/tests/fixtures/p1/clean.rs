//! P1 clean fixture: invariant-carrying expect, and test code is exempt.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().expect("caller guarantees a non-empty slice")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let xs = [1u32];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
