//! `balls-lint` — the dependency-free workspace auditor.
//!
//! Every engine in this workspace rests on one fragile invariant: a
//! fixed seed reproduces the same `Outcome` bit-for-bit across engines,
//! thread counts, and hosts. Nothing in the compiler checks that the
//! code stays inside that determinism envelope — no wall-clock reads,
//! no entropy-seeded RNGs, no hash-order iteration in result-producing
//! paths — and the upcoming sharded-CAS concurrent engine will be the
//! first PR to relax `#![forbid(unsafe_code)]`. This crate makes those
//! house rules machine-enforced: a minimal Rust lexer, a rule engine
//! over the workspace source tree, a suppression pragma that demands a
//! justification, and a ratcheting `lint.toml` allowlist for
//! grandfathered debt.
//!
//! Run it as `cargo run -p lint -- --workspace` (CI gates on it); see
//! [`rules`] for the rule table and the README's "Static analysis"
//! section for the policy rationale.
//!
//! # Module map
//!
//! * [`lexer`] — line/block comments, plain/raw strings, token stream
//!   with line spans; the reason strings and comments can never
//!   trigger a rule.
//! * [`rules`] — file classification, the D1–D3/P1/N1/C1 rule
//!   families, and `lint:allow` pragma handling.
//! * [`config`] — the `lint.toml` allowlist (parse + ratcheting
//!   application).
//! * [`json`] — hand-rolled JSON for `--json` reports and the
//!   `--check-bench` schema gate over `BENCH_engines.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod json;
pub mod lexer;
pub mod rules;

use rules::{check_file, Finding, SourceFile};
use std::path::{Path, PathBuf};

/// Directories never audited: build output, VCS metadata, and the
/// deliberately-violating golden fixtures of the lint crate itself.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Result of auditing a tree: what was checked and what was found
/// (post-pragma, pre-allowlist).
pub struct Audit {
    /// Workspace-relative paths of every `.rs` file audited.
    pub files: Vec<String>,
    /// Unsuppressed findings in path order.
    pub findings: Vec<Finding>,
}

/// Walks `root` (a workspace checkout) and audits every `.rs` file.
/// I/O errors on individual files become findings rather than aborts so
/// a partially unreadable tree still produces a useful report.
pub fn audit_workspace(root: &Path) -> Audit {
    let mut paths = Vec::new();
    collect_rs_files(root, root, &mut paths);
    paths.sort();
    let mut findings = Vec::new();
    for rel in &paths {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(src) => {
                let file = SourceFile::parse(rel, &src);
                findings.extend(check_file(&file));
            }
            Err(e) => findings.push(Finding {
                rule: "io",
                file: rel.clone(),
                line: 0,
                message: format!("unreadable source file: {e}"),
            }),
        }
    }
    Audit {
        files: paths,
        findings,
    }
}

/// Audits one source text as if it lived at `rel_path` in the
/// workspace. This is the entry point the golden-fixture tests use to
/// put a snippet in any rule's scope.
pub fn audit_source(rel_path: &str, src: &str) -> Vec<Finding> {
    check_file(&SourceFile::parse(rel_path, src))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rs_files(root, &path, out);
            }
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel_to_slash(rel));
            }
        }
    }
}

fn rel_to_slash(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Finds the workspace root at or above `start`: the nearest directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
