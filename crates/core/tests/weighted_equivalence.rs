//! Distributional correctness of the weighted family: the Walker–Vose
//! alias table and the weight-class histogram engine.
//!
//! Two layers of claims are pinned here:
//!
//! * **Sampling layer** — `bib_rng::dist::AliasTable` draws bins with
//!   probabilities exactly proportional to the weights, for skewed,
//!   near-degenerate and power-law weight vectors (chi-square
//!   goodness-of-fit against the exact pmf, fixed seeds).
//! * **Engine layer** — the weight-class histogram engine
//!   (`Engine::Histogram` for `WeightedAdaptive`/`WeightedOneChoice`)
//!   induces the same distribution on final load vectors as the
//!   faithful per-ball driver (`Engine::Faithful`): two-sample
//!   chi-square tests on per-bin and aggregate functionals over
//!   replicate ensembles, plus sure invariants (mass conservation, the
//!   per-bin `⌈m·w_j/W⌉ + 1` bound, zero-weight bins staying empty) and
//!   exact small cases.
//!
//! The weight shapes mirror the scenario matrix: *skewed* (two-class
//! 1 : 8), *near-degenerate* (one bin at ~0 weight plus a zero-weight
//! bin), and *power-law* over 16 distinct values (exact class grouping;
//! the >`MAX_WEIGHT_CLASSES` quantized regime is covered separately by
//! an invariant test since its bounds are intentionally approximate).

use bib_analysis::chisq::{chi_square_gof, chi_square_sf};
use bib_core::prelude::*;
use bib_core::run::run_protocol;
use bib_rng::dist::{AliasTable, Distribution};
use bib_rng::SplitMix64;

/// The three weight shapes of the suite at size `n`.
fn shapes(n: usize) -> Vec<(&'static str, Vec<f64>)> {
    vec![
        (
            "skewed",
            (0..n).map(|j| if j % 4 == 0 { 8.0 } else { 1.0 }).collect(),
        ),
        ("near-degenerate", {
            let mut w = vec![1.0f64; n];
            w[0] = 1e-9;
            w[1] = 0.0;
            w
        }),
        (
            "power-law",
            (0..n).map(|j| 1.5f64.powi((j % 16) as i32)).collect(),
        ),
    ]
}

/// Two-sample Pearson chi-square on a pair of histograms with pooling
/// of sparse cells; returns the p-value of "same distribution".
fn two_sample_p(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    assert!(na > 0 && nb > 0);
    let (na, nb) = (na as f64, nb as f64);
    let mut cells: Vec<(f64, f64)> = Vec::new();
    let mut acc = (0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        acc.0 += x as f64;
        acc.1 += y as f64;
        if acc.0 + acc.1 >= 10.0 {
            cells.push(acc);
            acc = (0.0, 0.0);
        }
    }
    if acc.0 + acc.1 > 0.0 {
        if let Some(last) = cells.last_mut() {
            last.0 += acc.0;
            last.1 += acc.1;
        } else {
            cells.push(acc);
        }
    }
    if cells.len() < 2 {
        return 1.0;
    }
    let mut stat = 0.0;
    for &(x, y) in &cells {
        let tot = x + y;
        let ex = tot * na / (na + nb);
        let ey = tot * nb / (na + nb);
        stat += (x - ex) * (x - ex) / ex + (y - ey) * (y - ey) / ey;
    }
    chi_square_sf((cells.len() - 1) as u64, stat)
}

// --------------------------------------------------------------------
// Sampling layer: the alias table against the exact pmf.
// --------------------------------------------------------------------

#[test]
fn alias_table_matches_pmf_on_all_shapes() {
    let n = 64usize;
    let draws = 200_000u64;
    for (tag, weights) in shapes(n) {
        let w_total: f64 = weights.iter().sum();
        let alias = AliasTable::new(&weights);
        let mut rng = SplitMix64::new(0xA11A5);
        let mut observed = vec![0u64; n];
        for _ in 0..draws {
            observed[alias.sample(&mut rng)] += 1;
        }
        let probs: Vec<f64> = weights.iter().map(|&w| w / w_total).collect();
        let gof = chi_square_gof(&observed, &probs, 0, 5.0);
        assert!(
            gof.p_value > 1e-4,
            "{tag}: alias table failed GOF, p = {:.2e} (stat {:.1}, dof {})",
            gof.p_value,
            gof.statistic,
            gof.dof
        );
        // Never-sampled cells must truly have zero weight.
        for (j, &o) in observed.iter().enumerate() {
            if weights[j] == 0.0 {
                assert_eq!(o, 0, "{tag}: zero-weight bin {j} sampled");
            }
        }
    }
}

#[test]
fn alias_table_pmf_accessor_is_normalised() {
    for (_, weights) in shapes(40) {
        let alias = AliasTable::new(&weights);
        let total: f64 = (0..alias.len()).map(|i| alias.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}

// --------------------------------------------------------------------
// Engine layer: weight-class histogram engine vs the faithful driver.
// --------------------------------------------------------------------

/// Histograms a per-outcome statistic over replicate ensembles of the
/// faithful and histogram engines (distinct seed spaces per engine:
/// the comparison is distributional, not stream-coupled).
fn engine_histograms<P, F>(
    proto: &P,
    n: usize,
    m: u64,
    reps: u64,
    cells: usize,
    stat: F,
) -> (Vec<u64>, Vec<u64>)
where
    P: Protocol,
    F: Fn(&Outcome) -> usize,
{
    let mut hists = Vec::new();
    for engine in [Engine::Faithful, Engine::Histogram] {
        let cfg = RunConfig::new(n, m).with_engine(engine);
        let mut h = vec![0u64; cells];
        for rep in 0..reps {
            let seed = rep + engine as u64 * 1_000_000;
            let out = run_protocol(proto, &cfg, seed);
            out.validate();
            let idx = stat(&out).min(cells - 1);
            h[idx] += 1;
        }
        hists.push(h);
    }
    let b = hists.pop().unwrap();
    let a = hists.pop().unwrap();
    (a, b)
}

#[test]
fn engines_agree_on_single_bin_loads_across_shapes() {
    // Per-bin marginal of a tracked heavy bin and a tracked light bin,
    // at sizes that engage the batched rounds.
    let n = 96usize;
    let m = 4_800u64;
    for (tag, weights) in shapes(n) {
        let w_total: f64 = weights.iter().sum();
        let proto = WeightedAdaptive::new(weights.clone());
        for &bin in &[0usize, n - 1] {
            if weights[bin] == 0.0 {
                continue;
            }
            let fair = m as f64 * weights[bin] / w_total;
            let lo = (fair - 4.0).max(0.0) as usize;
            let (a, b) = engine_histograms(&proto, n, m, 220, 10, |o| {
                (o.loads[bin] as usize).saturating_sub(lo)
            });
            let p = two_sample_p(&a, &b);
            assert!(
                p > 1e-3,
                "{tag}: bin {bin} load distribution diverged, p = {p:.2e} ({a:?} vs {b:?})"
            );
        }
    }
}

#[test]
fn engines_agree_on_aggregate_functionals() {
    // Max overload (discretised) and allocation time (per-ball excess)
    // across the suite's shapes.
    let n = 128usize;
    let m = 6_400u64;
    for (tag, weights) in shapes(n) {
        let proto = WeightedAdaptive::new(weights.clone());
        let (a, b) = engine_histograms(&proto, n, m, 200, 8, |o| {
            // max overload in [0, 2]: bucket at 0.25 resolution
            (o.max_overload().max(0.0) * 4.0) as usize
        });
        let p = two_sample_p(&a, &b);
        assert!(p > 1e-3, "{tag}: max-overload law diverged, p = {p:.2e}");

        let (a, b) = engine_histograms(&proto, n, m, 200, 12, |o| {
            ((o.time_ratio() - 1.0) * 20.0).max(0.0) as usize
        });
        let p = two_sample_p(&a, &b);
        assert!(p > 1e-3, "{tag}: allocation-time law diverged, p = {p:.2e}");
    }
}

#[test]
fn engines_agree_for_weighted_one_choice() {
    // One-choice: no retry feedback, so the engine's class split is the
    // whole story. Track a heavy bin's load.
    let n = 80usize;
    let m = 4_000u64;
    let weights: Vec<f64> = (0..n).map(|j| if j % 4 == 0 { 8.0 } else { 1.0 }).collect();
    let w_total: f64 = weights.iter().sum();
    let proto = WeightedOneChoice::new(weights.clone());
    let fair = m as f64 * weights[0] / w_total;
    let lo = (fair - 3.0 * fair.sqrt()).max(0.0) as usize;
    let (a, b) = engine_histograms(&proto, n, m, 250, 14, |o| {
        ((o.loads[0] as usize).saturating_sub(lo)) / 4
    });
    let p = two_sample_p(&a, &b);
    assert!(p > 1e-3, "one-choice heavy-bin law diverged, p = {p:.2e}");
}

#[test]
fn per_bin_bound_holds_under_histogram_engine_across_shapes() {
    let n = 256usize;
    let m = 32_768u64;
    for (tag, weights) in shapes(n) {
        let w_total: f64 = weights.iter().sum();
        let cfg = RunConfig::new(n, m).with_engine(Engine::Histogram);
        for seed in 0..3u64 {
            let out = run_protocol(&WeightedAdaptive::new(weights.clone()), &cfg, seed);
            out.validate();
            for (j, &l) in out.loads.iter().enumerate() {
                let fair = m as f64 * weights[j] / w_total;
                assert!(
                    (l as f64) <= fair.ceil() + 1.0 + 1e-9,
                    "{tag} seed {seed} bin {j}: load {l} above fair {fair}"
                );
            }
        }
    }
}

#[test]
fn exact_small_cases_are_identical_in_law() {
    // n = 1: deterministic under both engines.
    for m in [0u64, 1, 17, 500] {
        for engine in [Engine::Faithful, Engine::Histogram] {
            let cfg = RunConfig::new(1, m).with_engine(engine);
            let out = run_protocol(&WeightedAdaptive::new(vec![3.0]), &cfg, 9);
            assert_eq!(out.loads, vec![m as u32], "{engine:?}");
            assert_eq!(out.total_samples, m, "{engine:?}: single bin never retries");
        }
    }
    // Two bins with equal weights and m = 2·k: slack-1 adaptive pins
    // both bins to k ± 1; mass and bound are sure under both engines.
    for engine in [Engine::Faithful, Engine::Histogram] {
        let cfg = RunConfig::new(2, 100).with_engine(engine);
        let out = run_protocol(&WeightedAdaptive::new(vec![1.0, 1.0]), &cfg, 4);
        out.validate();
        assert!(out.loads.iter().all(|&l| (49..=51).contains(&l)));
    }
}

#[test]
fn quantized_many_distinct_weights_keep_invariants() {
    // More distinct weights than MAX_WEIGHT_CLASSES: the classes
    // quantize, bounds become approximate — mass conservation and a
    // slackened per-bin bound must still hold surely.
    let n = 512usize;
    let weights: Vec<f64> = (0..n).map(|j| 1.0 + j as f64 / 37.0).collect();
    let w_total: f64 = weights.iter().sum();
    let m = 65_536u64;
    let cfg = RunConfig::new(n, m).with_engine(Engine::Histogram);
    let out = run_protocol(&WeightedAdaptive::new(weights.clone()), &cfg, 11);
    out.validate();
    // Quantized classes perturb each weight by at most the geometric
    // bucket width; the bound can shift by the same relative amount.
    let width = (weights[n - 1] / weights[0]).powf(1.0 / 64.0);
    for (j, &l) in out.loads.iter().enumerate() {
        let fair = m as f64 * weights[j] / w_total;
        assert!(
            (l as f64) <= (fair * width).ceil() + 2.0,
            "bin {j}: load {l} far above quantized fair share {fair}"
        );
    }
}

#[test]
fn auto_matches_its_resolved_engine_stream_for_stream_identity() {
    // Engine::Auto must resolve deterministically and reproduce the
    // exact stream of the engine it picks.
    let n = 64usize;
    let weights: Vec<f64> = (0..n).map(|j| 1.0 + (j % 3) as f64).collect();
    let proto = WeightedAdaptive::new(weights);
    for (m, resolved) in [(500u64, Engine::Faithful), (1 << 20, Engine::Histogram)] {
        let auto = run_protocol(&proto, &RunConfig::new(n, m).with_engine(Engine::Auto), 77);
        let conc = run_protocol(&proto, &RunConfig::new(n, m).with_engine(resolved), 77);
        assert_eq!(auto, conc, "Auto at m = {m} must match {resolved:?}");
    }
}
