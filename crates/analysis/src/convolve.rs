//! Sequence convolution and the majorisation order of Lemma A.1.
//!
//! Lemma A.1 of the paper: if `p` majorises `q` (every upper tail of `p`
//! dominates the corresponding tail of `q`) and `r` is non-increasing,
//! then `Σ p_k r_k ≤ Σ q_k r_k`. The proof of Lemma 3.3 uses this to
//! replace the true per-stage placement distribution by an explicit
//! Poisson-plus-slack sequence. The functions here implement the order
//! and the convolution so that property tests can check the lemma on
//! random instances and the paper-constants module can evaluate the
//! Lemma 3.3 bound mechanically.

/// Discrete convolution `(p ⋆ q)_k = Σ_i p_i q_{k−i}` of two finite
/// sequences, producing a sequence of length `p.len() + q.len() − 1`.
///
/// With pmfs as inputs this is the pmf of the sum of two independent
/// random variables (the paper uses `Poi(1/2) ⋆ Poi(100/198) =
/// Poi(199/198)` in Lemma 3.2).
pub fn convolve(p: &[f64], q: &[f64]) -> Vec<f64> {
    if p.is_empty() || q.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; p.len() + q.len() - 1];
    for (i, &pi) in p.iter().enumerate() {
        if pi == 0.0 {
            continue;
        }
        for (j, &qj) in q.iter().enumerate() {
            out[i + j] += pi * qj;
        }
    }
    out
}

/// Returns `true` iff `p` majorises `q` in the sense of Appendix A:
/// for every index `j`, `Σ_{k ≥ j} p_k ≥ Σ_{k ≥ j} q_k` (sequences are
/// implicitly zero-padded to a common length).
///
/// A small floating tolerance absorbs rounding in the tail sums.
pub fn majorizes(p: &[f64], q: &[f64]) -> bool {
    majorizes_with_tol(p, q, 1e-12)
}

/// [`majorizes`] with an explicit tolerance.
pub fn majorizes_with_tol(p: &[f64], q: &[f64], tol: f64) -> bool {
    let len = p.len().max(q.len());
    let mut tail_p = 0.0;
    let mut tail_q = 0.0;
    // Walk tails from the top index downwards.
    for j in (0..len).rev() {
        tail_p += p.get(j).copied().unwrap_or(0.0);
        tail_q += q.get(j).copied().unwrap_or(0.0);
        if tail_p + tol < tail_q {
            return false;
        }
    }
    true
}

/// The conclusion of Lemma A.1: `Σ p_k r_k ≤ Σ q_k r_k` whenever `p`
/// majorises `q` and `r` is non-increasing. Returns the pair of dot
/// products `(Σ p r, Σ q r)` so callers can assert the inequality.
pub fn lemma_a1_dot_products(p: &[f64], q: &[f64], r: &[f64]) -> (f64, f64) {
    let dot = |s: &[f64]| -> f64 { s.iter().zip(r.iter()).map(|(a, b)| a * b).sum() };
    (dot(p), dot(q))
}

/// Checks that a sequence is non-increasing (the hypothesis on `r` in
/// Lemma A.1), up to a tolerance.
pub fn is_non_increasing(r: &[f64]) -> bool {
    r.windows(2).all(|w| w[0] >= w[1] - 1e-15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Poisson;

    #[test]
    fn convolve_small_known() {
        // (1 + x)² = 1 + 2x + x².
        let p = [1.0, 1.0];
        let got = convolve(&p, &p);
        assert_eq!(got, vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn convolve_empty() {
        assert!(convolve(&[], &[1.0]).is_empty());
        assert!(convolve(&[1.0], &[]).is_empty());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn convolve_poisson_additivity() {
        // Lemma 3.2's final step: Poi(1/2) ⋆ Poi(100/198) = Poi(199/198).
        let a = Poisson::new(0.5);
        let b = Poisson::new(100.0 / 198.0);
        let c = Poisson::new(199.0 / 198.0);
        let pa: Vec<f64> = (0..60).map(|k| a.pmf(k)).collect();
        let pb: Vec<f64> = (0..60).map(|k| b.pmf(k)).collect();
        let conv = convolve(&pa, &pb);
        for k in 0..30usize {
            assert!(
                (conv[k] - c.pmf(k as u64)).abs() < 1e-12,
                "k={k} conv={} exact={}",
                conv[k],
                c.pmf(k as u64)
            );
        }
    }

    #[test]
    fn majorizes_reflexive_and_strict() {
        let p = [0.1, 0.2, 0.7];
        assert!(majorizes(&p, &p));
        // Shifting mass upward increases the majorisation order.
        let hi = [0.0, 0.2, 0.8];
        assert!(majorizes(&hi, &p));
        assert!(!majorizes(&p, &hi));
    }

    #[test]
    fn majorizes_handles_different_lengths() {
        let p = [0.5, 0.5];
        let q = [0.5, 0.25, 0.25];
        // q has mass at index 2, p does not: tail at j=2 fails for p.
        assert!(!majorizes(&p, &q));
        assert!(majorizes(&q, &p) || !majorizes(&q, &p)); // well-defined either way
    }

    #[test]
    fn lemma_a1_on_explicit_instance() {
        // p majorises q, r non-increasing ⇒ Σ p·r ≤ Σ q·r.
        let p = [0.0, 0.3, 0.7];
        let q = [0.2, 0.5, 0.3];
        let r = [1.0, 0.5, 0.25];
        assert!(majorizes(&p, &q));
        assert!(is_non_increasing(&r));
        let (dp, dq) = lemma_a1_dot_products(&p, &q, &r);
        assert!(dp <= dq + 1e-12, "dp={dp} dq={dq}");
    }

    #[test]
    fn is_non_increasing_examples() {
        assert!(is_non_increasing(&[3.0, 2.0, 2.0, 1.0]));
        assert!(!is_non_increasing(&[1.0, 2.0]));
        assert!(is_non_increasing(&[]));
        assert!(is_non_increasing(&[1.0]));
    }
}
