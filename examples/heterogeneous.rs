//! Heterogeneous servers: the weighted-bins extension.
//!
//! A cluster mixes big and small machines. Bin `j` gets weight `w_j`
//! (its capacity share); the weighted `adaptive` extension samples
//! servers proportionally to weight and accepts server `j` for request
//! `i` iff `load_j < i·w_j/W + 1`, guaranteeing every server stays
//! within one request of its fair share — the heterogeneous analogue of
//! the paper's `⌈m/n⌉ + 1` bound.
//!
//! Since the scenario-layer unification the weighted dispatchers are
//! ordinary `Protocol`s: the runs below go through `run_protocol` with
//! `Engine::Auto`, which resolves to the *weight-class histogram
//! engine* at this size — the per-bin weights ride along in
//! `outcome.scenario`, and `max_overload`/`weighted_psi` read them
//! directly off the unified `Outcome`.
//!
//! Run with:
//! ```text
//! cargo run --release --example heterogeneous
//! ```

use balls_into_bins::core::prelude::*;

fn main() {
    // 3 machine classes: 8 big (w=8), 24 medium (w=2), 96 small (w=1).
    let mut weights = Vec::new();
    weights.extend(std::iter::repeat_n(8.0, 8));
    weights.extend(std::iter::repeat_n(2.0, 24));
    weights.extend(std::iter::repeat_n(1.0, 96));
    let w_total: f64 = weights.iter().sum();
    let n = weights.len();
    let m = 100_000u64;

    println!("{n} servers (8x w=8, 24x w=2, 96x w=1, total weight {w_total}), {m} requests\n");

    let cfg = RunConfig::new(n, m).with_engine(Engine::Auto);
    let ada = run_protocol(&WeightedAdaptive::new(weights.clone()), &cfg, 42);
    let one = run_protocol(&WeightedOneChoice::new(weights.clone()), &cfg, 42);
    assert_eq!(ada.scenario.label(), "weighted");

    println!(
        "{:<22} {:>12} {:>14} {:>14}",
        "dispatcher", "samples/req", "max overload*", "weighted psi"
    );
    for out in [&ada, &one] {
        println!(
            "{:<22} {:>12.4} {:>14.3} {:>14.1}",
            out.protocol,
            out.time_ratio(),
            out.max_overload(),
            out.weighted_psi(),
        );
    }
    println!("\n* overload = load − fair share m·w/W; weighted adaptive guarantees ≤ 2.\n");

    // Per-class view.
    println!("per-class mean load vs fair share (weighted adaptive):");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "class", "fair share", "mean load", "worst"
    );
    let classes: [(&str, std::ops::Range<usize>, f64); 3] = [
        ("big", 0..8, 8.0),
        ("medium", 8..32, 2.0),
        ("small", 32..128, 1.0),
    ];
    for (name, range, w) in classes {
        let fair = m as f64 * w / w_total;
        let lo = range.start;
        let hi = range.end;
        let mean: f64 = ada.loads[lo..hi].iter().map(|&l| l as f64).sum::<f64>() / (hi - lo) as f64;
        let worst = ada.loads[lo..hi].iter().copied().max().unwrap();
        println!("{name:<10} {fair:>12.1} {mean:>12.1} {worst:>12}");
    }
    println!("\nevery class sits within rounding of its fair share — the per-bin");
    println!("guarantee load_j <= ceil(m*w_j/W) + 1 in action.");
}
