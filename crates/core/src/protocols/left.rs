//! `left[d]` — Vöcking's always-go-left process [16].
//!
//! The bins are split into `d` contiguous groups of (near-)equal size.
//! Each ball samples one uniform bin *per group* and joins a least-loaded
//! candidate, breaking ties towards the *leftmost group*. The asymmetric
//! tie-breaking provably improves the max load to
//! `m/n + ln ln n / (d ln Φ_d) + O(1)` — matching Vöcking's lower bound —
//! versus `ln d` in the denominator for symmetric `greedy[d]`.

use crate::protocol::{drive_sequential, Observer, Outcome, Protocol, RunConfig};
use bib_rng::{Rng64, RngExt};

/// The `left[d]` protocol.
#[derive(Debug, Clone, Copy)]
pub struct LeftD {
    d: u32,
}

impl LeftD {
    /// `d` groups; panics if `d == 0`.
    pub fn new(d: u32) -> Self {
        assert!(d >= 1, "left[d] needs d ≥ 1");
        Self { d }
    }

    /// The number of groups `d`.
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Half-open bin range of group `g` (0-based) among `n` bins,
    /// balanced to within one bin: `[⌊g·n/d⌋, ⌊(g+1)·n/d⌋)`.
    pub fn group_range(&self, n: usize, g: u32) -> (usize, usize) {
        debug_assert!(g < self.d);
        let d = self.d as usize;
        (g as usize * n / d, (g as usize + 1) * n / d)
    }
}

impl Protocol for LeftD {
    fn name(&self) -> String {
        format!("left[{}]", self.d)
    }

    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        assert!(
            cfg.n >= self.d as usize,
            "left[{}] needs at least {} bins, got {}",
            self.d,
            self.d,
            cfg.n
        );
        let this = *self;
        drive_sequential(self.name(), cfg, rng, obs, move |bins, _ball, rng| {
            let n = bins.n();
            let mut best: Option<(usize, u32)> = None;
            // Visit groups left to right; strict `<` keeps the leftmost
            // of any tie — exactly the asymmetric rule.
            for g in 0..this.d {
                let (lo, hi) = this.group_range(n, g);
                debug_assert!(hi > lo, "empty group {g}");
                let c = lo + rng.range_usize(hi - lo);
                let l = bins.load(c);
                match best {
                    None => best = Some((c, l)),
                    Some((_, bl)) if l < bl => best = Some((c, l)),
                    _ => {}
                }
            }
            let (bin, _) = best.expect("d ≥ 1 guarantees a candidate");
            bins.place(bin);
            (bin, this.d as u64)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::NullObserver;
    use crate::protocols::{GreedyD, OneChoice};
    use bib_rng::SplitMix64;

    #[test]
    fn group_ranges_partition_bins() {
        for (n, d) in [(10usize, 2u32), (10, 3), (7, 3), (4, 4)] {
            let p = LeftD::new(d);
            let mut covered = 0usize;
            let mut prev_end = 0usize;
            for g in 0..d {
                let (lo, hi) = p.group_range(n, g);
                assert_eq!(lo, prev_end, "groups must be contiguous");
                assert!(hi > lo, "n={n} d={d} g={g} empty");
                covered += hi - lo;
                prev_end = hi;
            }
            assert_eq!(covered, n, "n={n} d={d}");
            assert_eq!(prev_end, n);
        }
    }

    #[test]
    fn allocation_time_is_dm() {
        let cfg = RunConfig::new(12, 120);
        let mut rng = SplitMix64::new(1);
        let out = LeftD::new(3).allocate(&cfg, &mut rng, &mut NullObserver);
        out.validate();
        assert_eq!(out.total_samples, 360);
    }

    #[test]
    fn left1_is_one_choice() {
        let cfg = RunConfig::new(16, 100);
        let mut r1 = SplitMix64::new(5);
        let mut r2 = SplitMix64::new(5);
        let a = LeftD::new(1).allocate(&cfg, &mut r1, &mut NullObserver);
        let b = OneChoice.allocate(&cfg, &mut r2, &mut NullObserver);
        assert_eq!(a.loads, b.loads);
    }

    #[test]
    fn beats_one_choice_and_matches_greedy_ballpark() {
        let n = 4096usize;
        let cfg = RunConfig::new(n, n as u64);
        let mut rng = SplitMix64::new(6);
        let one = OneChoice.allocate(&cfg, &mut rng, &mut NullObserver);
        let left = LeftD::new(2).allocate(&cfg, &mut rng, &mut NullObserver);
        let greedy = GreedyD::new(2).allocate(&cfg, &mut rng, &mut NullObserver);
        assert!(left.max_load() < one.max_load());
        // Vöcking's rule is at least as good as greedy[2] up to +1 noise
        // at this scale.
        assert!(left.max_load() <= greedy.max_load() + 1);
    }

    #[test]
    #[should_panic]
    fn more_groups_than_bins_rejected() {
        let cfg = RunConfig::new(2, 10);
        let mut rng = SplitMix64::new(7);
        LeftD::new(3).allocate(&cfg, &mut rng, &mut NullObserver);
    }
}
