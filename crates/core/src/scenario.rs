//! The scenario layer: one simulation core over the uniform, weighted
//! and parallel-round protocol families.
//!
//! Before this module existed the repository had three architectural
//! silos: the uniform sequential family (everything under
//! [`crate::protocols`], driven by the four engines), the
//! heterogeneous-capacity family ([`crate::weighted`], a bespoke
//! per-ball `run` method returning its own outcome type) and the
//! round-synchronous parallel family (`bib-parallel::protocols`, ditto).
//! Only the first was reachable from [`Engine`] dispatch, [`Observer`]s,
//! `run_protocol`/`replicate_outcomes` and the bench harness.
//!
//! The unification has three parts:
//!
//! 1. **One outcome record.** [`Scenario`] is a lightweight annotation
//!    carried by every [`Outcome`]: per-bin weights for heterogeneous
//!    runs, round/message accounting for parallel runs, the arrival
//!    batch for stale-count runs. `Outcome` exposes the scenario-specific
//!    metrics (`max_overload`, `weighted_psi`, `messages_per_ball`, …)
//!    directly, so `WeightedOutcome` and `ParallelOutcome` no longer
//!    exist as separate types and everything downstream — observers,
//!    replication, summaries, JSON — consumes one record.
//!
//! 2. **One scheduling contract per family.** The uniform family already
//!    had [`ThresholdSchedule`](crate::level_batched::ThresholdSchedule)
//!    / [`HistogramSchedule`](crate::histogram::HistogramSchedule); the
//!    weighted family gets [`WeightedSchedule`], the exact analogue with
//!    the acceptance limit expressed per *weight share* instead of per
//!    run. `WeightedAdaptive` and `WeightedOneChoice` are thin
//!    implementations of it; the faithful per-ball driver and the
//!    weight-class histogram engine in [`crate::weighted`] both consume
//!    the same schedule, which is what makes their equivalence testable.
//!
//! 3. **One construction surface.** [`Workload`] × [`Family`] names a
//!    cell of the scenario matrix; [`scenario_protocol`] materialises it
//!    as a boxed [`DynProtocol`](crate::protocol::DynProtocol), so sweeps
//!    (the bench binaries, the README matrix) can iterate the
//!    cross-product without knowing the concrete types.
//!
//! Engine dispatch now reaches every family: the uniform schedules run
//! the four concrete engines, the weighted family and the parallel
//! round family (`bib-parallel::protocols`) each dispatch between
//! their faithful path and their histogram fast path, and `Auto`
//! resolves per family through [`Engine::auto_scheduled`] /
//! [`Engine::auto_fixed`] / [`Engine::auto_weighted`] /
//! [`Engine::auto_parallel`] — no protocol silently ignores an engine
//! request without a documented aliasing rule.
//!
//! [`Engine::auto_scheduled`]: crate::protocol::Engine::auto_scheduled
//! [`Engine::auto_fixed`]: crate::protocol::Engine::auto_fixed
//! [`Engine::auto_weighted`]: crate::protocol::Engine::auto_weighted
//! [`Engine::auto_parallel`]: crate::protocol::Engine::auto_parallel
//!
//! [`Engine`]: crate::protocol::Engine
//! [`Observer`]: crate::protocol::Observer
//! [`Outcome`]: crate::protocol::Outcome

use crate::batched::BatchedAdaptive;
use crate::protocol::DynProtocol;
use crate::protocols::{Adaptive, GreedyD, OneChoice, Threshold};
use crate::stream::{StreamProtocol, StreamSpec};
use crate::weighted::{WeightedAdaptive, WeightedOneChoice};

/// Scenario-specific annotations carried by every
/// [`Outcome`](crate::protocol::Outcome).
///
/// The default value (`Scenario::default()`) is the paper's base model:
/// uniform bins, sequential balls, online arrivals. Families outside the
/// base model fill in the fields they add; every field keeps a neutral
/// sentinel so the record stays one flat struct rather than a tree of
/// variants (a run can be weighted *and* round-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Per-bin weights of a heterogeneous run (empty = uniform bins).
    pub weights: Vec<f64>,
    /// Synchronous rounds used by a parallel protocol (0 = sequential).
    pub rounds: u32,
    /// Total messages of a parallel protocol (0 = not message-passing;
    /// sequential protocols account cost in `total_samples` instead).
    pub messages: u64,
    /// Arrival batch size of a stale-count run (0 or 1 = fully online).
    pub batch: u64,
    /// Virtual time steps of a streaming run (0 = one-shot batch).
    pub ticks: u64,
    /// Total arrived balls of a streaming run. The stream ledger is
    /// `arrivals = m + departed + shed` (with `m` the balls still
    /// resident at the end), checked by `Outcome::validate`.
    pub arrivals: u64,
    /// Balls that departed during a streaming run.
    pub departed: u64,
    /// Balls shed after exhausting the retry budget (never silent).
    pub shed: u64,
    /// Balls placed via the one-choice degradation fallback.
    pub fallbacks: u64,
    /// Accepting fraction of the fleet at the end of the run (1.0 for
    /// every non-stream scenario).
    pub alive_frac: f64,
}

impl Default for Scenario {
    fn default() -> Self {
        Self {
            weights: Vec::new(),
            rounds: 0,
            messages: 0,
            batch: 0,
            ticks: 0,
            arrivals: 0,
            departed: 0,
            shed: 0,
            fallbacks: 0,
            alive_frac: 1.0,
        }
    }
}

impl Scenario {
    /// A uniform sequential scenario (the paper's base model).
    pub fn uniform() -> Self {
        Self::default()
    }

    /// A heterogeneous-bin scenario with the given weights.
    pub fn weighted(weights: Vec<f64>) -> Self {
        Self {
            weights,
            ..Self::default()
        }
    }

    /// A round-synchronous parallel scenario.
    pub fn rounds(rounds: u32, messages: u64) -> Self {
        Self {
            rounds,
            messages,
            ..Self::default()
        }
    }

    /// A batched-arrival scenario (count synchronised every `batch`).
    pub fn batched(batch: u64) -> Self {
        Self {
            batch,
            ..Self::default()
        }
    }

    /// A streaming (churn + faults) scenario with its run ledger.
    pub fn stream(
        ticks: u64,
        arrivals: u64,
        departed: u64,
        shed: u64,
        fallbacks: u64,
        alive_frac: f64,
    ) -> Self {
        Self {
            ticks,
            arrivals,
            departed,
            shed,
            fallbacks,
            alive_frac,
            ..Self::default()
        }
    }

    /// Shed balls as a fraction of arrivals (0 when nothing arrived).
    pub fn shed_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.shed as f64 / self.arrivals as f64
        }
    }

    /// Canonical label for tables and JSON: `uniform`, `weighted`,
    /// `parallel`, `batched`, `stream`, or `weighted-parallel` for the
    /// (currently hypothetical) combination.
    pub fn label(&self) -> &'static str {
        if self.ticks > 0 {
            return "stream";
        }
        match (!self.weights.is_empty(), self.rounds > 0, self.batch > 1) {
            (true, true, _) => "weighted-parallel",
            (true, false, _) => "weighted",
            (false, true, _) => "parallel",
            (false, false, true) => "batched",
            (false, false, false) => "uniform",
        }
    }
}

/// Smallest integer `t` with `(t as f64) >= limit` — i.e. the strict
/// acceptance bound: for integer loads, `(load as f64) < limit` holds
/// exactly when `load < t`.
///
/// This is *the* bridge between the faithful weighted acceptance test
/// (a float comparison per sample) and the weight-class histogram
/// engine (integer per-class bounds): both must make identical
/// accept/reject decisions, so the bound is derived from the same float
/// comparison, fixup loops included, rather than from an independent
/// ceiling formula that could disagree by an ulp.
pub fn strict_int_bound(limit: f64) -> u32 {
    assert!(limit.is_finite() && limit >= 0.0, "bad bound limit {limit}");
    if limit >= u32::MAX as f64 {
        // No u32 load can reach the limit: the bound saturates (a bin
        // with this limit always accepts). Returning here also keeps
        // the fixup loop below from wrapping at the type boundary.
        return u32::MAX;
    }
    // lint:allow(N1): limit < u32::MAX is checked by the early return above
    let mut t = limit.ceil() as u32;
    while (t as f64) < limit {
        t += 1;
    }
    while t > 0 && ((t - 1) as f64) >= limit {
        t -= 1;
    }
    t
}

/// The scheduling contract of the weighted sequential family: the
/// acceptance limit of a bin is a function of its *weight share*
/// `w_j / W` and the ball index alone, constant over contiguous
/// segments per share. The weighted analogue of
/// [`ThresholdSchedule`](crate::level_batched::ThresholdSchedule).
///
/// Both weighted drivers consume this trait: the faithful per-ball loop
/// compares `(load as f64) < limit` directly, and the weight-class
/// histogram engine converts the same limit to an integer bound with
/// [`strict_int_bound`] — by construction the two make identical
/// decisions on every (bin, ball, load) triple.
pub trait WeightedSchedule {
    /// Acceptance limit for a bin with weight share `share = w/W` at
    /// ball `ball` (1-based) of a run of `m` balls: the bin accepts iff
    /// `(load as f64) < limit`. `None` means the bin always accepts
    /// (the one-choice law).
    fn accept_limit(&self, share: f64, ball: u64, m: u64) -> Option<f64>;

    /// Inclusive index of the last ball whose integer acceptance bound
    /// for `share` equals `ball`'s (`ball ≤ end ≤ m`). The default
    /// implementation inverts [`Self::accept_limit`] with a binary
    /// search and is exact for limits monotone in the ball index;
    /// schedules with closed forms should override it (the weighted
    /// histogram engine calls this once per class per segment).
    fn segment_end(&self, share: f64, ball: u64, m: u64) -> u64 {
        let Some(limit) = self.accept_limit(share, ball, m) else {
            return m;
        };
        let t = strict_int_bound(limit);
        let bound_at = |i: u64| {
            self.accept_limit(share, i, m)
                .map_or(u32::MAX, strict_int_bound)
        };
        if bound_at(m) == t {
            return m;
        }
        // Largest i in [ball, m] with bound_at(i) == t (monotone in i).
        let (mut lo, mut hi) = (ball, m);
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if bound_at(mid) == t {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

/// How balls arrive and how bins are shaped — the workload half of a
/// scenario-matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// The paper's base model: uniform bins, fully online arrivals.
    Uniform,
    /// Heterogeneous bins with the given weights (capacity shares).
    Weighted(Vec<f64>),
    /// Uniform bins, ball count synchronised only every `batch` balls.
    Batched(u64),
    /// Streaming arrivals/departures with faults and retries
    /// ([`StreamSpec`]); every family runs in this cell.
    Stream(StreamSpec),
}

impl Workload {
    /// Canonical label, mirroring [`Scenario::label`].
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Uniform => "uniform",
            Workload::Weighted(_) => "weighted",
            Workload::Batched(_) => "batched",
            Workload::Stream(_) => "stream",
        }
    }
}

/// The protocol half of a scenario-matrix cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// The paper's adaptive protocol (`load < i/n + 1`, weighted:
    /// `load < i·w/W + 1`).
    Adaptive,
    /// The static-threshold protocol (`load < m/n + 1`, weighted:
    /// `load < m·w/W + 1`).
    Threshold,
    /// The one-choice baseline (no retry).
    OneChoice,
    /// `greedy[d]` (uniform workloads only).
    Greedy(u32),
}

impl Family {
    /// Canonical label.
    pub fn label(&self) -> &'static str {
        match self {
            Family::Adaptive => "adaptive",
            Family::Threshold => "threshold",
            Family::OneChoice => "one-choice",
            Family::Greedy(_) => "greedy",
        }
    }
}

/// Materialises one cell of the scenario matrix as a boxed protocol.
///
/// Returns `None` for cells outside the matrix (`greedy[d]` over
/// non-uniform bins, batched arrivals for count-free protocols — a
/// stale count changes nothing when the rule never reads it, so those
/// cells alias their uniform column and are reported there).
///
/// # Examples
///
/// ```
/// use bib_core::prelude::*;
/// use bib_core::scenario::{scenario_protocol, Family, Workload};
///
/// let p = scenario_protocol(&Workload::Weighted(vec![3.0, 1.0, 1.0]), Family::Adaptive).unwrap();
/// let cfg = RunConfig::new(3, 3_000).with_engine(Engine::Auto);
/// let out = run_protocol(p.as_ref(), &cfg, 7);
/// assert_eq!(out.scenario.label(), "weighted");
/// assert!(out.max_overload() <= 2.0);
/// ```
pub fn scenario_protocol(
    workload: &Workload,
    family: Family,
) -> Option<Box<dyn DynProtocol + Send + Sync>> {
    Some(match (workload, family) {
        (Workload::Uniform, Family::Adaptive) => Box::new(Adaptive::paper()),
        (Workload::Uniform, Family::Threshold) => Box::new(Threshold),
        (Workload::Uniform, Family::OneChoice) => Box::new(OneChoice),
        (Workload::Uniform, Family::Greedy(d)) => Box::new(GreedyD::new(d)),
        (Workload::Weighted(w), Family::Adaptive) => Box::new(WeightedAdaptive::new(w.clone())),
        (Workload::Weighted(w), Family::Threshold) => {
            Box::new(WeightedAdaptive::threshold(w.clone()))
        }
        (Workload::Weighted(w), Family::OneChoice) => Box::new(WeightedOneChoice::new(w.clone())),
        (Workload::Weighted(_), Family::Greedy(_)) => return None,
        (Workload::Batched(b), Family::Adaptive) => Box::new(BatchedAdaptive::new(*b)),
        (Workload::Batched(_), _) => return None,
        (Workload::Stream(spec), f) => Box::new(StreamProtocol::new(spec.clone(), f)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Engine, RunConfig};
    use crate::run::run_protocol;

    #[test]
    fn labels_cover_the_matrix() {
        assert_eq!(Scenario::uniform().label(), "uniform");
        assert_eq!(Scenario::weighted(vec![1.0]).label(), "weighted");
        assert_eq!(Scenario::rounds(3, 10).label(), "parallel");
        assert_eq!(Scenario::batched(16).label(), "batched");
        assert_eq!(
            Scenario {
                weights: vec![1.0],
                rounds: 2,
                messages: 4,
                ..Scenario::default()
            }
            .label(),
            "weighted-parallel"
        );
        // batch = 1 is fully online, i.e. plain uniform.
        assert_eq!(Scenario::batched(1).label(), "uniform");
        // A streaming run labels as stream regardless of other fields.
        assert_eq!(Scenario::stream(10, 100, 20, 1, 2, 0.5).label(), "stream");
        assert_eq!(Scenario::default().alive_frac, 1.0);
        assert!((Scenario::stream(10, 100, 20, 1, 2, 0.5).shed_rate() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn strict_int_bound_matches_float_comparison() {
        // The defining property, brute-forced over awkward limits.
        for limit in [
            0.0,
            0.3,
            1.0,
            1.0 + 1e-12,
            2.0 - 1e-12,
            2.0,
            17.999999,
            1e9 + 0.5,
        ] {
            let t = strict_int_bound(limit);
            for l in t.saturating_sub(2)..t + 2 {
                assert_eq!((l as f64) < limit, l < t, "limit={limit} l={l}");
            }
        }
    }

    #[test]
    fn factory_covers_matrix_and_rejects_holes() {
        let weights = vec![2.0, 1.0, 1.0, 1.0];
        for (wl, fam, expect) in [
            (Workload::Uniform, Family::Adaptive, true),
            (Workload::Uniform, Family::Greedy(2), true),
            (Workload::Weighted(weights.clone()), Family::Adaptive, true),
            (Workload::Weighted(weights.clone()), Family::OneChoice, true),
            (Workload::Weighted(weights.clone()), Family::Threshold, true),
            (Workload::Weighted(weights), Family::Greedy(2), false),
            (Workload::Batched(8), Family::Adaptive, true),
            (Workload::Batched(8), Family::Threshold, false),
            (
                Workload::Stream(crate::stream::StreamSpec::new(8, 0.1)),
                Family::Greedy(2),
                true,
            ),
            (
                Workload::Stream(crate::stream::StreamSpec::new(8, 0.1)),
                Family::OneChoice,
                true,
            ),
        ] {
            assert_eq!(
                scenario_protocol(&wl, fam).is_some(),
                expect,
                "{wl:?} × {fam:?}"
            );
        }
    }

    #[test]
    fn factory_cells_run_and_label_their_outcomes() {
        let n = 16usize;
        let m = 160u64;
        let cfg = RunConfig::new(n, m).with_engine(Engine::Faithful);
        let weights: Vec<f64> = (0..n).map(|j| 1.0 + (j % 3) as f64).collect();
        for (wl, label) in [
            (Workload::Uniform, "uniform"),
            (Workload::Weighted(weights), "weighted"),
            (Workload::Batched(8), "batched"),
        ] {
            let p = scenario_protocol(&wl, Family::Adaptive).unwrap();
            let out = run_protocol(p.as_ref(), &cfg, 3);
            out.validate();
            assert_eq!(out.scenario.label(), label, "{wl:?}");
            assert_eq!(out.total_balls(), m);
        }
    }
}
