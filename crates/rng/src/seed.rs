//! Master-seed management for reproducible (parallel) experiments.
//!
//! The experiment harness runs many replicates of many configurations,
//! potentially across threads. Reproducibility demands that replicate
//! `r` of configuration `c` sees the same random stream no matter how the
//! work is scheduled. [`SeedSequence`] derives decorrelated child seeds
//! from `(master, label…)` paths with SplitMix64 finalisers, and
//! [`StreamRng`] instantiates jump-separated xoshiro streams.

use crate::{splitmix::GOLDEN_GAMMA, SplitMix64, Xoshiro256PlusPlus};

/// A hierarchical seed-derivation context.
///
/// Conceptually a path of labels hashed into 64 bits:
/// `SeedSequence::new(master).child(cfg_id).child(replicate)` always
/// yields the same derived seed. Collisions between distinct short paths
/// are as unlikely as 64-bit hash collisions.
///
/// # Examples
///
/// ```
/// use bib_rng::SeedSequence;
/// let root = SeedSequence::new(0xDEADBEEF);
/// let a = root.child(1).rng();
/// let b = root.child(2).rng();
/// // Distinct children give distinct streams; same path is reproducible.
/// assert_eq!(root.child(1).seed(), root.child(1).seed());
/// assert_ne!(root.child(1).seed(), root.child(2).seed());
/// let _ = (a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Root sequence from a master seed.
    pub fn new(master: u64) -> Self {
        Self {
            state: SplitMix64::mix(master ^ GOLDEN_GAMMA),
        }
    }

    /// Derives a child context for `label` (replicate index, config id,
    /// axis value — any u64).
    pub fn child(&self, label: u64) -> Self {
        // Feed the label through a distinct round so .child(0) != identity.
        let mixed = SplitMix64::mix(
            self.state
                .rotate_left(29)
                .wrapping_add(GOLDEN_GAMMA)
                .wrapping_add(SplitMix64::mix(label.wrapping_add(1))),
        );
        Self { state: mixed }
    }

    /// Derives a child context from a string label (e.g. protocol name).
    pub fn child_str(&self, label: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.child(h)
    }

    /// The derived 64-bit seed for this path.
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// Instantiates the workspace's default generator for this path.
    pub fn rng(&self) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(self.state)
    }
}

/// A factory for jump-separated streams out of a single xoshiro sequence.
///
/// Where [`SeedSequence`] gives *statistically* independent streams via
/// seeding, `StreamRng` gives *provably non-overlapping* streams: stream
/// `k` is the base sequence advanced by `k` jumps of 2¹²⁸ steps.
#[derive(Debug, Clone, Copy)]
pub struct StreamRng {
    base: Xoshiro256PlusPlus,
}

impl StreamRng {
    /// Creates the factory from a master seed.
    pub fn new(master: u64) -> Self {
        Self {
            base: Xoshiro256PlusPlus::seed_from_u64(master),
        }
    }

    /// Returns the generator for stream `k` (O(k) jumps; intended for
    /// modest stream counts such as thread or replicate indices).
    pub fn stream(&self, k: u64) -> Xoshiro256PlusPlus {
        let mut g = self.base;
        for _ in 0..k {
            g.jump();
        }
        g
    }
}

/// Convenience: a default generator from an explicit seed, used
/// throughout examples and tests.
pub fn default_rng(seed: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_are_reproducible() {
        let root = SeedSequence::new(7);
        assert_eq!(root.child(5).seed(), root.child(5).seed());
        assert_eq!(root.child(5).child(9).seed(), root.child(5).child(9).seed());
    }

    #[test]
    fn children_differ_from_parent_and_each_other() {
        let root = SeedSequence::new(7);
        let mut seeds: Vec<u64> = (0..1000).map(|i| root.child(i).seed()).collect();
        seeds.push(root.seed());
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1001, "collision among child seeds");
    }

    #[test]
    fn child_zero_is_not_identity() {
        let root = SeedSequence::new(3);
        assert_ne!(root.child(0).seed(), root.seed());
    }

    #[test]
    fn path_order_matters() {
        let root = SeedSequence::new(11);
        assert_ne!(root.child(1).child(2).seed(), root.child(2).child(1).seed());
    }

    #[test]
    fn string_children_distinct() {
        let root = SeedSequence::new(13);
        let a = root.child_str("adaptive").seed();
        let b = root.child_str("threshold").seed();
        assert_ne!(a, b);
        assert_eq!(a, root.child_str("adaptive").seed());
    }

    #[test]
    fn streams_non_overlapping_prefixes() {
        use crate::Rng64;
        let f = StreamRng::new(99);
        let mut s0 = f.stream(0);
        let mut s1 = f.stream(1);
        let a: Vec<u64> = (0..100).map(|_| s0.next_u64()).collect();
        let b: Vec<u64> = (0..100).map(|_| s1.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn stream_zero_equals_base_sequence() {
        use crate::Rng64;
        let f = StreamRng::new(1234);
        let mut s0 = f.stream(0);
        let mut base = Xoshiro256PlusPlus::seed_from_u64(1234);
        for _ in 0..10 {
            assert_eq!(s0.next_u64(), base.next_u64());
        }
    }
}
