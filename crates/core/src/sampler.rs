//! The two retry engines for threshold-style protocols.
//!
//! A ball under `threshold`/`adaptive` repeatedly samples uniform bins
//! until it hits one whose load is below an integer threshold `t`.
//! While the ball is retrying, the load vector does not change, so with
//! `k` accepting bins out of `n`:
//!
//! * the number of samples consumed is `Geometric(k/n)` (counting the
//!   successful one), and
//! * the receiving bin is uniform among the `k` accepting bins,
//!   independent of the sample count.
//!
//! The **naive** engine plays this out sample by sample — exactly the
//! paper's pseudocode. The **jump** engine draws the geometric count and
//! the accepting bin directly. The two induce identical distributions on
//! `(receiving bin, samples)`; unit tests check degenerate cases exactly
//! and the statistical suite compares full runs.

use crate::partitioned::PartitionedBins;
use crate::protocol::Engine;
use bib_rng::dist::{Distribution, GeometricSampler};
use bib_rng::{Rng64, RngExt};

/// Places one ball into a uniformly random bin with load `< t`, returning
/// `(bin, samples_used)`.
///
/// Panics (via [`PartitionedBins::choose_below`] or an explicit check) if
/// no bin accepts — neither paper protocol can reach that state, and
/// reaching it indicates a threshold bug.
///
/// The batched engines ([`Engine::LevelBatched`], [`Engine::Histogram`])
/// have no *per-ball* placement of their own (their whole point is to
/// avoid one); a single ball under those engines — and under an
/// unresolved [`Engine::Auto`] — is placed by the distributionally
/// identical jump rule.
pub fn place_below<R: Rng64 + ?Sized>(
    bins: &mut PartitionedBins,
    t: u32,
    engine: Engine,
    rng: &mut R,
) -> (usize, u64) {
    match engine {
        Engine::Faithful => place_below_naive(bins, t, rng),
        Engine::Jump
        | Engine::LevelBatched
        | Engine::Histogram
        | Engine::Concurrent
        | Engine::Auto => place_below_jump(bins, t, rng),
    }
}

/// Faithful retry loop (Figures 1 and 2 of the paper).
pub fn place_below_naive<R: Rng64 + ?Sized>(
    bins: &mut PartitionedBins,
    t: u32,
    rng: &mut R,
) -> (usize, u64) {
    assert!(
        bins.count_below(t) > 0,
        "place_below: no bin has load < {t}; the protocol threshold is wrong"
    );
    let n = bins.n();
    let mut samples = 0u64;
    loop {
        samples += 1;
        let j = rng.range_usize(n);
        if bins.load(j) < t {
            bins.place(j);
            return (j, samples);
        }
    }
}

/// Geometric-jump equivalent: one `Geometric(k/n)` draw for the sample
/// count, one uniform pick among accepting bins.
pub fn place_below_jump<R: Rng64 + ?Sized>(
    bins: &mut PartitionedBins,
    t: u32,
    rng: &mut R,
) -> (usize, u64) {
    let k = bins.count_below(t);
    assert!(
        k > 0,
        "place_below: no bin has load < {t}; the protocol threshold is wrong"
    );
    let n = bins.n();
    let samples = if k == n {
        1
    } else {
        GeometricSampler::new(k as f64 / n as f64).sample(rng)
    };
    let j = bins.choose_below(t, rng);
    bins.place(j);
    (j, samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_rng::SplitMix64;

    #[test]
    fn all_bins_open_costs_one_sample() {
        for engine in [Engine::Faithful, Engine::Jump] {
            let mut bins = PartitionedBins::new(10);
            let mut rng = SplitMix64::new(1);
            let (bin, samples) = place_below(&mut bins, 1, engine, &mut rng);
            assert_eq!(samples, 1, "{engine:?}");
            assert!(bin < 10);
            assert_eq!(bins.total(), 1);
        }
    }

    #[test]
    fn single_open_bin_is_always_found() {
        for engine in [Engine::Faithful, Engine::Jump] {
            // Bins 0..9 at load 1, bin 9 empty; threshold 1 ⇒ only bin 9.
            let mut loads = vec![1u32; 10];
            loads[9] = 0;
            let mut bins = PartitionedBins::from_loads(loads);
            let mut rng = SplitMix64::new(2);
            let (bin, samples) = place_below(&mut bins, 1, engine, &mut rng);
            assert_eq!(bin, 9, "{engine:?}");
            assert!(samples >= 1);
        }
    }

    #[test]
    #[should_panic]
    fn naive_engine_rejects_impossible_threshold() {
        let mut bins = PartitionedBins::from_loads(vec![2, 2]);
        let mut rng = SplitMix64::new(3);
        place_below_naive(&mut bins, 1, &mut rng);
    }

    #[test]
    #[should_panic]
    fn jump_engine_rejects_impossible_threshold() {
        let mut bins = PartitionedBins::from_loads(vec![2, 2]);
        let mut rng = SplitMix64::new(4);
        place_below_jump(&mut bins, 1, &mut rng);
    }

    /// With k of n bins open, the sample count must average ≈ n/k for
    /// both engines and the chosen bin must be uniform among the open
    /// ones.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn engines_agree_statistically() {
        let n = 8usize;
        let open = 2usize; // bins 6, 7 open at threshold 1
        let template: Vec<u32> = (0..n).map(|i| if i < n - open { 1 } else { 0 }).collect();
        let reps = 40_000;
        for engine in [Engine::Faithful, Engine::Jump] {
            let mut rng = SplitMix64::new(50 + engine as u64);
            let mut total_samples = 0u64;
            let mut bin_counts = vec![0u64; n];
            for _ in 0..reps {
                let mut bins = PartitionedBins::from_loads(template.clone());
                let (bin, samples) = place_below(&mut bins, 1, engine, &mut rng);
                total_samples += samples;
                bin_counts[bin] += 1;
            }
            let mean = total_samples as f64 / reps as f64;
            let expect = n as f64 / open as f64; // 4.0
            assert!(
                (mean - expect).abs() < 0.1,
                "{engine:?}: mean samples {mean} vs {expect}"
            );
            for b in 0..n - open {
                assert_eq!(bin_counts[b], 0, "{engine:?}: closed bin {b} chosen");
            }
            let half = reps as u64 / 2;
            for b in n - open..n {
                let c = bin_counts[b];
                assert!(
                    c > half - 1500 && c < half + 1500,
                    "{engine:?}: bin {b} count {c}"
                );
            }
        }
    }

    /// Robustness difference between the engines under *degenerate*
    /// randomness: with an adversarially constant bit source, the jump
    /// engine still terminates (its geometric draw and open-bin pick are
    /// single bounded operations), whereas the naive loop's liveness
    /// genuinely depends on the uniformity assumption of the paper's
    /// model. We pin down the jump engine's robustness here.
    #[test]
    fn jump_engine_terminates_on_constant_rng() {
        struct ConstRng(u64);
        impl bib_rng::Rng64 for ConstRng {
            fn next_u64(&mut self) -> u64 {
                self.0
            }
        }
        let mut rng = ConstRng(0x1234_5678_9ABC_DEF0);
        let mut bins = PartitionedBins::from_loads(vec![1, 1, 0, 1]);
        let (bin, samples) = place_below_jump(&mut bins, 1, &mut rng);
        assert_eq!(bin, 2, "only open bin must be chosen");
        assert!(samples >= 1);
        assert_eq!(bins.total(), 4);
    }

    /// Sample-count distribution match: compare engine histograms cell by
    /// cell (both must be Geometric(k/n)).
    #[test]
    fn sample_count_distributions_match() {
        let template = vec![1u32, 1, 1, 0]; // n = 4, k = 1 open
        let reps = 30_000;
        let mut hists = Vec::new();
        for engine in [Engine::Faithful, Engine::Jump] {
            let mut rng = SplitMix64::new(60 + engine as u64);
            let mut hist = vec![0u64; 12];
            for _ in 0..reps {
                let mut bins = PartitionedBins::from_loads(template.clone());
                let (_, samples) = place_below(&mut bins, 1, engine, &mut rng);
                let idx = ((samples - 1) as usize).min(hist.len() - 1);
                hist[idx] += 1;
            }
            hists.push(hist);
        }
        // Chi-square-ish comparison of the two histograms.
        for (cell, (&a, &b)) in hists[0].iter().zip(&hists[1]).enumerate() {
            let (a, b) = (a as f64, b as f64);
            if a + b < 50.0 {
                continue;
            }
            let diff = (a - b).abs();
            let sigma = (a + b).sqrt();
            assert!(diff < 6.0 * sigma, "cell {cell}: {a} vs {b}");
        }
    }
}
