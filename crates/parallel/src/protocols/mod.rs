//! Round-based *parallel* allocation protocols.
//!
//! These are the synchronous processes from the related-work section of
//! the paper: all currently unplaced balls act simultaneously in a round,
//! bins answer, and the process repeats. The performance currency is
//! *rounds* and *messages* rather than sequential samples.
//!
//! * [`BoundedLoad`] — a Lenzen–Wattenhofer-style protocol \[12\]: bins
//!   accept at most `cap` balls ever (max load ≤ `cap` by construction),
//!   unplaced balls double their contact count each round; ~`log* n`
//!   rounds and O(n) messages at `m = n`, `cap = 2`.
//! * [`Collision`] — an Adler et al.-flavoured collision protocol \[1\]:
//!   each unplaced ball contacts one bin; a bin accepts its requesters
//!   only if at most `c` of them collided there.
//! * [`ParallelGreedy`] — round-restricted parallel `greedy[d]` \[1\]:
//!   balls commit to `d` candidates, negotiate for `r` rounds, and are
//!   force-placed at the end; balance improves with the round budget.

mod bounded_load;
mod collision;
mod parallel_greedy;

pub use bounded_load::BoundedLoad;
pub use collision::Collision;
pub use parallel_greedy::ParallelGreedy;

/// Outcome of a round-based parallel allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelOutcome {
    /// Protocol display name.
    pub protocol: String,
    /// Bins.
    pub n: usize,
    /// Balls (all placed on success).
    pub m: u64,
    /// Number of synchronous rounds used.
    pub rounds: u32,
    /// Total messages: every ball→bin contact and every bin→ball accept.
    pub messages: u64,
    /// Final loads.
    pub loads: Vec<u32>,
}

impl ParallelOutcome {
    /// Maximum final load.
    pub fn max_load(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Messages per ball — O(1) is the headline of \[12\].
    pub fn messages_per_ball(&self) -> f64 {
        if self.m == 0 {
            0.0
        } else {
            self.messages as f64 / self.m as f64
        }
    }

    /// Asserts mass conservation.
    pub fn validate(&self) {
        assert_eq!(self.loads.len(), self.n);
        assert_eq!(
            self.loads.iter().map(|&l| l as u64).sum::<u64>(),
            self.m,
            "mass not conserved"
        );
    }
}

/// Iterated logarithm `log₂* n` — the paper \[12\]'s round complexity
/// yardstick, used by the `parallel_rounds` experiment.
pub fn log_star(n: f64) -> u32 {
    assert!(n.is_finite(), "log_star of non-finite value");
    let mut x = n;
    let mut iters = 0u32;
    while x > 1.0 {
        x = x.log2();
        iters += 1;
        assert!(iters < 64, "log_star diverged");
    }
    iters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_known_values() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
        // 2^65536 territory: anything practical is ≤ 5.
        assert_eq!(log_star(1e30), 5);
    }

    #[test]
    fn outcome_helpers() {
        let o = ParallelOutcome {
            protocol: "x".into(),
            n: 2,
            m: 3,
            rounds: 2,
            messages: 9,
            loads: vec![2, 1],
        };
        o.validate();
        assert_eq!(o.max_load(), 2);
        assert!((o.messages_per_ball() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn validate_catches_bad_mass() {
        ParallelOutcome {
            protocol: "x".into(),
            n: 2,
            m: 5,
            rounds: 1,
            messages: 5,
            loads: vec![1, 1],
        }
        .validate();
    }
}
