//! The `(1+β)`-choice process (Peres, Talwar & Wieder).
//!
//! Each ball flips a β-coin: with probability `β` it behaves like
//! `greedy[2]` (two choices, least loaded), otherwise like one-choice.
//! Expected allocation time `(1+β)m`; the max−min gap is `Θ(log n / β)`
//! **independent of m** — the classic smooth-gap baseline between
//! one-choice (gap grows with m) and greedy[2] (gap `log log n`).
//!
//! Not part of the paper's Table 1, but the natural third point on the
//! smoothness-vs-samples frontier the paper's `adaptive` sits on: the
//! `extensions` experiment compares their gaps at equal sample budgets.

use crate::protocol::{drive_sequential, Observer, Outcome, Protocol, RunConfig};
use bib_rng::{Rng64, RngExt};

/// The `(1+β)`-choice process.
#[derive(Debug, Clone, Copy)]
pub struct OnePlusBeta {
    beta: f64,
}

impl OnePlusBeta {
    /// Mixing parameter `β ∈ (0, 1]` (β = 1 is exactly `greedy[2]`).
    pub fn new(beta: f64) -> Self {
        assert!(
            beta > 0.0 && beta <= 1.0,
            "(1+beta)-choice needs beta in (0,1], got {beta}"
        );
        Self { beta }
    }

    /// The mixing parameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Protocol for OnePlusBeta {
    fn name(&self) -> String {
        format!("one+beta({})", self.beta)
    }

    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        let beta = self.beta;
        drive_sequential(self.name(), cfg, rng, obs, move |bins, _ball, rng| {
            let n = bins.n();
            let a = rng.range_usize(n);
            if rng.bernoulli(beta) {
                let b = rng.range_usize(n);
                let pick = match bins.load(a).cmp(&bins.load(b)) {
                    std::cmp::Ordering::Less => a,
                    std::cmp::Ordering::Greater => b,
                    std::cmp::Ordering::Equal => {
                        if rng.bernoulli(0.5) {
                            a
                        } else {
                            b
                        }
                    }
                };
                bins.place(pick);
                (pick, 2)
            } else {
                bins.place(a);
                (a, 1)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::NullObserver;
    use crate::protocols::{GreedyD, OneChoice};
    use crate::run::run_protocol;
    use bib_rng::SplitMix64;

    #[test]
    fn sample_count_is_one_plus_beta_m() {
        let cfg = RunConfig::new(64, 20_000);
        let mut rng = SplitMix64::new(1);
        let out = OnePlusBeta::new(0.25).allocate(&cfg, &mut rng, &mut NullObserver);
        out.validate();
        let expected = 1.25 * 20_000.0;
        assert!(
            (out.total_samples as f64 - expected).abs()
                < 4.0 * (20_000.0f64 * 0.25).sqrt().max(1.0) * 1.0 + 200.0,
            "samples {} vs expected {expected}",
            out.total_samples
        );
    }

    #[test]
    fn gap_independent_of_m_unlike_one_choice() {
        // The PTW headline at laptop scale: fix n, grow m 16x; the
        // (1+β) gap stays put while one-choice's grows.
        let n = 1024usize;
        let gap_at = |proto: &dyn crate::protocol::DynProtocol, m: u64| -> f64 {
            (0..5u64)
                .map(|s| run_protocol(proto, &RunConfig::new(n, m), s).gap() as f64)
                .sum::<f64>()
                / 5.0
        };
        let p = OnePlusBeta::new(0.5);
        let g_small = gap_at(&p, 32 * n as u64);
        let g_big = gap_at(&p, 512 * n as u64);
        assert!(
            g_big < 1.6 * g_small,
            "(1+b) gap grew: {g_small} -> {g_big}"
        );
        let o_small = gap_at(&OneChoice, 32 * n as u64);
        let o_big = gap_at(&OneChoice, 512 * n as u64);
        assert!(
            o_big > 2.0 * o_small,
            "one-choice gap flat?! {o_small} -> {o_big}"
        );
    }

    #[test]
    fn beta_one_matches_greedy2_in_distribution() {
        // Not stream-identical (different coin usage), but max loads at
        // m = n should be in the same ln ln n band.
        let n = 4096usize;
        let cfg = RunConfig::new(n, n as u64);
        let a = run_protocol(&OnePlusBeta::new(1.0), &cfg, 3);
        let g = run_protocol(&GreedyD::new(2), &cfg, 3);
        assert!((a.max_load() as i64 - g.max_load() as i64).abs() <= 1);
    }

    #[test]
    fn smaller_beta_larger_gap() {
        let n = 1024usize;
        let cfg = RunConfig::new(n, 256 * n as u64);
        let gap_mean = |beta: f64| -> f64 {
            (0..5u64)
                .map(|s| run_protocol(&OnePlusBeta::new(beta), &cfg, s).gap() as f64)
                .sum::<f64>()
                / 5.0
        };
        let tight = gap_mean(0.9);
        let loose = gap_mean(0.1);
        assert!(
            loose > tight,
            "β=0.1 gap {loose} should exceed β=0.9 gap {tight}"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_zero_beta() {
        OnePlusBeta::new(0.0);
    }
}
