//! Statistical integration tests of the paper's quantitative claims at
//! laptop scale. Seeds are fixed, so these are deterministic; thresholds
//! include generous noise margins so they test *shapes*, not exact
//! constants.

use balls_into_bins::analysis::coupon::expected_full_collection;
use balls_into_bins::core::prelude::*;

/// Theorem 3.1: adaptive's allocation time is O(m) — the mean ratio is a
/// small constant, stable across n and ϕ.
#[test]
fn theorem31_adaptive_linear_time() {
    let mut ratios = Vec::new();
    for (n, phi) in [(256usize, 4u64), (1024, 4), (1024, 32), (4096, 8)] {
        let cfg = RunConfig::new(n, phi * n as u64).with_engine(Engine::Jump);
        let outs = run_replicates(&Adaptive::paper(), &cfg, 9, 10);
        let mean = outs.iter().map(|o| o.time_ratio()).sum::<f64>() / outs.len() as f64;
        assert!(mean < 3.0, "n={n} phi={phi}: ratio {mean}");
        assert!(mean >= 1.0);
        ratios.push(mean);
    }
    // Stability: max/min of the mean ratios bounded (no growth trend).
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min < 1.5, "ratios vary too much: {ratios:?}");
}

/// Theorem 4.1: threshold's time is m + O(m^{3/4} n^{1/4}) — so the
/// ratio T/m must approach 1 as ϕ grows, and the normalised excess must
/// not blow up.
#[test]
fn theorem41_threshold_excess_scaling() {
    let n = 1024usize;
    let mut prev_ratio = f64::INFINITY;
    for phi in [4u64, 16, 64, 256] {
        let m = phi * n as u64;
        let cfg = RunConfig::new(n, m).with_engine(Engine::Jump);
        let outs = run_replicates(&Threshold, &cfg, 5, 10);
        let ratio = outs.iter().map(|o| o.time_ratio()).sum::<f64>() / outs.len() as f64;
        assert!(ratio < prev_ratio + 0.02, "phi={phi}: ratio {ratio} rose");
        prev_ratio = ratio;
        let env = (m as f64).powf(0.75) * (n as f64).powf(0.25);
        let norm = outs
            .iter()
            .map(|o| o.excess_samples() as f64 / env)
            .sum::<f64>()
            / outs.len() as f64;
        assert!(norm < 5.0, "phi={phi}: normalised excess {norm}");
    }
    assert!(prev_ratio < 1.1, "final ratio {prev_ratio} not near 1");
}

/// Corollary 3.5 vs Lemma 4.2: at m = n², adaptive is smooth (Ψ = O(n),
/// small gap) while threshold is rough (Ψ ≫ n, larger gap).
#[test]
fn smoothness_separation_at_m_equals_n_squared() {
    let n = 512usize;
    let cfg = RunConfig::new(n, (n as u64) * (n as u64)).with_engine(Engine::Jump);
    let ada = run_replicates(&Adaptive::paper(), &cfg, 4, 5);
    let thr = run_replicates(&Threshold, &cfg, 4, 5);
    let ada_psi = ada.iter().map(|o| o.psi()).sum::<f64>() / 5.0;
    let thr_psi = thr.iter().map(|o| o.psi()).sum::<f64>() / 5.0;
    // adaptive: Ψ = O(n) — allow a generous constant.
    assert!(ada_psi < 20.0 * n as f64, "adaptive psi {ada_psi}");
    // threshold: Ψ = Ω(n^{9/8}); the separation is the point.
    assert!(
        thr_psi > 4.0 * ada_psi,
        "threshold psi {thr_psi} not ≫ adaptive psi {ada_psi}"
    );
    let ada_gap = ada.iter().map(|o| o.gap() as f64).sum::<f64>() / 5.0;
    let thr_gap = thr.iter().map(|o| o.gap() as f64).sum::<f64>() / 5.0;
    assert!(ada_gap <= thr_gap, "gap order: {ada_gap} vs {thr_gap}");
    // Corollary 3.5: adaptive's gap is O(log n).
    assert!(ada_gap <= 4.0 * (n as f64).log2(), "adaptive gap {ada_gap}");
}

/// Section 2 remark: the tight (slack-0) variant is a coupon collector —
/// ≈ ϕ·n·H_n samples — and perfectly balanced.
#[test]
fn tight_threshold_is_coupon_collector() {
    let n = 512usize;
    let phi = 4u64;
    let cfg = RunConfig::new(n, phi * n as u64).with_engine(Engine::Jump);
    let outs = run_replicates(&Adaptive::tight(), &cfg, 11, 5);
    let mean_t = outs.iter().map(|o| o.total_samples as f64).sum::<f64>() / 5.0;
    let predicted = phi as f64 * expected_full_collection(n as u64);
    assert!(
        (mean_t / predicted - 1.0).abs() < 0.15,
        "measured {mean_t} vs coupon prediction {predicted}"
    );
    for o in &outs {
        assert_eq!(o.gap(), 0, "tight variant must balance perfectly");
    }
}

/// Corollary 3.5 is a statement about EVERY stage, not just the end:
/// trace Φ and Ψ per stage and check stationarity for adaptive.
#[test]
fn adaptive_potentials_stationary_at_every_stage() {
    use balls_into_bins::core::protocol::StageTrace;
    use balls_into_bins::core::run::run_with_observer;
    let n = 1024usize;
    let cfg = RunConfig::new(n, 128 * n as u64).with_engine(Engine::Jump);
    let mut trace = StageTrace::new();
    run_with_observer(&Adaptive::paper(), &cfg, 21, &mut trace);
    assert_eq!(trace.stages.len(), 128);
    // Skip the burn-in stages; after that Φ/n and Ψ/n must stay bounded.
    for (i, &s) in trace.stages.iter().enumerate().skip(8) {
        let phi_over_n = (trace.ln_phi[i] - (n as f64).ln()).exp();
        assert!(phi_over_n < 5.0, "stage {s}: phi/n = {phi_over_n}");
        assert!(
            trace.psi[i] < 20.0 * n as f64,
            "stage {s}: psi = {}",
            trace.psi[i]
        );
        assert!(
            (trace.gaps[i] as f64) < 4.0 * (n as f64).log2(),
            "stage {s}: gap = {}",
            trace.gaps[i]
        );
    }
}

/// Figure 3(b) shape: adaptive's final Ψ is flat in m; threshold's
/// grows.
#[test]
fn figure3b_shape_psi_flat_vs_growing() {
    let n = 512usize;
    let psi_at = |proto: &dyn DynProtocol, m: u64| -> f64 {
        let cfg = RunConfig::new(n, m).with_engine(Engine::Jump);
        let outs = run_replicates(proto, &cfg, 13, 8);
        outs.iter().map(|o| o.psi()).sum::<f64>() / 8.0
    };
    let ada_small = psi_at(&Adaptive::paper(), 20 * n as u64);
    let ada_big = psi_at(&Adaptive::paper(), 200 * n as u64);
    let thr_small = psi_at(&Threshold, 20 * n as u64);
    let thr_big = psi_at(&Threshold, 200 * n as u64);
    // adaptive: no systematic growth (allow 2x noise).
    assert!(
        ada_big < 2.0 * ada_small,
        "adaptive psi grew: {ada_small} -> {ada_big}"
    );
    // threshold: clear growth.
    assert!(
        thr_big > 2.0 * thr_small,
        "threshold psi flat: {thr_small} -> {thr_big}"
    );
}
