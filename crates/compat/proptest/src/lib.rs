//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors the subset of proptest that its property tests use:
//!
//! * the [`proptest!`] macro (named-argument `ident in strategy` form),
//! * range strategies (`0u64..100`, `0.0f64..=1.0`, …) and
//!   [`arbitrary::any`],
//! * [`collection::vec`] and [`collection::btree_set`],
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs verbatim), and the case count defaults to 64 (override with
//! the `PROPTEST_CASES` environment variable). Cases are generated from
//! a seed derived deterministically from the test name, so failures
//! reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i32 => u32, i64 => u64, isize => usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let u = rng.unit_f64(); // in [0, 1)
            let v = self.start + u * (self.end - self.start);
            // Guard against rounding up to the excluded endpoint.
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            // 53-bit draw mapped onto [0, 1] inclusive.
            let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            lo + u * (hi - lo)
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` strategy for types with a canonical full-domain
    //! distribution.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: std::fmt::Debug + Sized {
        /// Draws a uniformly distributed value of the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `A`: `any::<u64>()`, `any::<bool>()`, …
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections with a size drawn from a range.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<E>` with length drawn from `size`.
    pub struct VecStrategy<E> {
        element: E,
        size: Range<usize>,
    }

    /// `vec(element, len_range)`: a vector whose length is uniform in
    /// `len_range` and whose elements are drawn from `element`.
    pub fn vec<E: Strategy>(element: E, size: Range<usize>) -> VecStrategy<E> {
        VecStrategy { element, size }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<E>` with cardinality drawn from `size`.
    pub struct BTreeSetStrategy<E> {
        element: E,
        size: Range<usize>,
    }

    /// `btree_set(element, size_range)`: a set whose cardinality is
    /// uniform in `size_range` (best-effort when the element domain is
    /// nearly exhausted) and whose members are drawn from `element`.
    pub fn btree_set<E>(element: E, size: Range<usize>) -> BTreeSetStrategy<E>
    where
        E: Strategy,
        E::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<E> Strategy for BTreeSetStrategy<E>
    where
        E: Strategy,
        E::Value: Ord,
    {
        type Value = BTreeSet<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<E::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Duplicate draws are discarded; the attempt cap keeps tiny
            // element domains from looping forever.
            let mut attempts = 0usize;
            let max_attempts = 20 * target + 64;
            while out.len() < target && attempts < max_attempts {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod test_runner {
    //! The case loop and its deterministic RNG.

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// `prop_assert!`/`prop_assert_eq!` failed; the test fails.
        Fail(String),
    }

    /// SplitMix64 — self-contained so this dev-dependency shim does not
    /// depend on the crates it is used to test.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from an explicit seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)` by widening multiply with rejection.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            let mut x = self.next_u64();
            let mut m = (x as u128) * (n as u128);
            let mut low = m as u64;
            if low < n {
                let t = n.wrapping_neg() % n;
                while low < t {
                    x = self.next_u64();
                    m = (x as u128) * (n as u128);
                    low = m as u64;
                }
            }
            (m >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Number of cases per property: `PROPTEST_CASES` or 64.
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// FNV-1a, used to give every test its own deterministic seed.
    fn hash_name(name: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Runs `body` for [`case_count`] accepted cases. `body` samples its
    /// own inputs from the provided RNG and returns a debug rendering of
    /// them alongside the case verdict.
    pub fn run<F>(test_name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        let cases = case_count();
        let base = hash_name(test_name);
        let mut rejects = 0u64;
        let max_rejects = 1024 * cases as u64;
        let mut case = 0u32;
        let mut stream = 0u64;
        while case < cases {
            let mut rng = TestRng::new(base ^ stream.wrapping_mul(0x9e3779b97f4a7c15));
            stream += 1;
            let (inputs, verdict) = body(&mut rng);
            match verdict {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > max_rejects {
                        panic!(
                            "proptest '{test_name}': too many prop_assume! rejections \
                             ({rejects}) — strategy and assumption are incompatible"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{test_name}' failed at case {case} (stream {})\n  \
                         inputs: {inputs}\n  {msg}",
                        stream - 1
                    );
                }
            }
        }
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespace alias matching upstream (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests. Each function body runs once per generated
/// case; arguments are drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |prop_rng__| {
                    $(
                        #[allow(unused_mut)]
                        let mut $arg = $crate::strategy::Strategy::sample(&($strat), prop_rng__);
                    )+
                    let inputs__ = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let verdict__ = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    (inputs__, verdict__)
                });
            }
        )+
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Discards the current case (retried with fresh inputs) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0.25f64..0.75, z in 0u32..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!(z <= 5);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u32..100, 2..9),
            s in prop::collection::btree_set(0u64..1_000, 1..6),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!((1..6).contains(&s.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn assume_filters(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run("always_fails", |rng| {
                let x = rng.below(10);
                (
                    format!("x = {x:?}; "),
                    Err(crate::test_runner::TestCaseError::Fail("boom".into())),
                )
            });
        });
        let err = result.expect_err("runner must propagate failure");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(
            msg.contains("always_fails") && msg.contains("x = "),
            "{msg}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for out in [&mut a, &mut b] {
            crate::test_runner::run("det", |rng| {
                out.push(rng.next_u64());
                (String::new(), Ok(()))
            });
        }
        assert_eq!(a, b);
    }
}
