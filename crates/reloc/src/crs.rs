//! Czumaj–Riley–Scheideler self-balancing allocation \[6\].
//!
//! Reproduction note (DESIGN.md §2): the published algorithm's phase
//! structure is proof-oriented; we implement the operational core it
//! analyses. Every ball draws **two** uniform bin choices which stay
//! fixed forever. The initial placement is `greedy[2]`. Then
//! *self-balancing steps* run: a ball sitting in the fuller of its two
//! choices (by a margin ≥ 2) switches to the other. Passes repeat, in a
//! freshly shuffled ball order, until no ball can improve. The final
//! state is a local optimum of the two-choice orientation — empirically
//! `⌈m/n⌉` or `⌈m/n⌉ + 1` max load, matching the \[6\] rows of Table 1 —
//! and the cost is reported as `2m` samples plus the number of
//! reallocations.

use bib_core::bins::LoadVector;
use bib_rng::{Rng64, RngExt};

/// The self-balancing scheme (two choices per ball).
///
/// # Examples
///
/// ```
/// use bib_reloc::Crs;
/// use bib_rng::SeedSequence;
///
/// let mut rng = SeedSequence::new(7).rng();
/// let out = Crs::new().run(128, 1280, &mut rng); // n = 128, m = 1280
/// out.validate();
/// assert!(out.max_load() <= out.target() + 1);   // ≈ perfectly balanced
/// assert_eq!(out.samples, 2 * 1280);             // two choices per ball
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crs {
    /// Safety cap on full balancing passes.
    max_passes: u32,
}

impl Default for Crs {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of a CRS run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrsOutcome {
    /// Bins.
    pub n: usize,
    /// Balls.
    pub m: u64,
    /// Bin samples drawn (always `2m`: two choices per ball).
    pub samples: u64,
    /// Number of ball moves performed during self-balancing.
    pub reallocations: u64,
    /// Full passes over the balls (including the final no-op pass).
    pub passes: u32,
    /// Final loads.
    pub loads: Vec<u32>,
    /// Max load straight after the greedy\[2\] initial placement.
    pub initial_max_load: u32,
}

impl CrsOutcome {
    /// Final maximum load.
    pub fn max_load(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// The perfect-balance target `⌈m/n⌉`.
    pub fn target(&self) -> u32 {
        self.m.div_ceil(self.n as u64) as u32
    }

    /// Asserts mass conservation.
    pub fn validate(&self) {
        assert_eq!(self.loads.len(), self.n);
        assert_eq!(self.loads.iter().map(|&l| l as u64).sum::<u64>(), self.m);
    }
}

impl Crs {
    /// Creates the scheme with the default safety limits.
    pub fn new() -> Self {
        Self { max_passes: 10_000 }
    }

    /// Runs initial placement plus self-balancing to a local optimum.
    pub fn run<R: Rng64 + ?Sized>(&self, n: usize, m: u64, rng: &mut R) -> CrsOutcome {
        assert!(n > 0, "need at least one bin");
        assert!(m <= u32::MAX as u64, "ball ids are u32");
        let mut loads = LoadVector::new(n);
        // Per ball: its two choices and which one it currently occupies.
        let mut choice_a: Vec<u32> = Vec::with_capacity(m as usize);
        let mut choice_b: Vec<u32> = Vec::with_capacity(m as usize);
        let mut in_a: Vec<bool> = Vec::with_capacity(m as usize);

        // greedy[2] initial placement.
        for _ in 0..m {
            let a = rng.range_usize(n) as u32;
            let b = rng.range_usize(n) as u32;
            let take_a = match loads.load(a as usize).cmp(&loads.load(b as usize)) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => rng.bernoulli(0.5),
            };
            loads.place(if take_a { a } else { b } as usize);
            choice_a.push(a);
            choice_b.push(b);
            in_a.push(take_a);
        }
        let initial_max_load = loads.max_load();

        // Self-balancing passes.
        let mut order: Vec<u32> = (0..m as u32).collect();
        let mut reallocations = 0u64;
        let mut passes = 0u32;
        loop {
            passes += 1;
            assert!(
                passes <= self.max_passes,
                "self-balancing failed to converge in {} passes",
                self.max_passes
            );
            rng.shuffle(&mut order);
            let mut moved = false;
            for &ball in &order {
                let ball = ball as usize;
                let (cur, other) = if in_a[ball] {
                    (choice_a[ball], choice_b[ball])
                } else {
                    (choice_b[ball], choice_a[ball])
                };
                // An improving switch strictly reduces the maximum of the
                // two loads: requires a gap of at least 2.
                if loads.load(cur as usize) > loads.load(other as usize) + 1 {
                    loads.remove(cur as usize);
                    loads.place(other as usize);
                    in_a[ball] = !in_a[ball];
                    reallocations += 1;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }

        CrsOutcome {
            n,
            m,
            samples: 2 * m,
            reallocations,
            passes,
            loads: loads.into_loads(),
            initial_max_load,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_rng::SplitMix64;

    #[test]
    fn conserves_mass_and_counts_samples() {
        let mut rng = SplitMix64::new(1);
        let out = Crs::new().run(64, 640, &mut rng);
        out.validate();
        assert_eq!(out.samples, 1280);
        assert!(out.passes >= 1);
    }

    #[test]
    fn final_state_is_a_local_optimum() {
        // No ball may sit ≥ 2 above its alternative — re-running from the
        // final loads must find no improving move. We verify via the
        // outcome's own invariant: the last pass made no move, so the max
        // load can exceed the target only through 2-choice orientation
        // limits; check it is within +1 of the initial greedy[2] result
        // and never worse.
        let mut rng = SplitMix64::new(2);
        let out = Crs::new().run(128, 128 * 8, &mut rng);
        assert!(out.max_load() <= out.initial_max_load);
    }

    #[test]
    fn balances_to_near_target_at_moderate_scale() {
        // The [6] headline: max load ⌈m/n⌉ (we allow +1 for the local
        // optimum at finite n).
        let mut rng = SplitMix64::new(3);
        let out = Crs::new().run(1024, 1024 * 16, &mut rng);
        out.validate();
        assert!(
            out.max_load() <= out.target() + 1,
            "max {} target {}",
            out.max_load(),
            out.target()
        );
    }

    #[test]
    fn reallocations_are_linear_ish() {
        // O(m) + n^{O(1)} reallocation steps per [6]; empirically well
        // below m at this scale.
        let mut rng = SplitMix64::new(4);
        let m = 8192u64;
        let out = Crs::new().run(512, m, &mut rng);
        assert!(
            out.reallocations < 2 * m,
            "reallocations {} for m {m}",
            out.reallocations
        );
    }

    #[test]
    fn zero_balls() {
        let mut rng = SplitMix64::new(5);
        let out = Crs::new().run(8, 0, &mut rng);
        out.validate();
        assert_eq!(out.max_load(), 0);
        assert_eq!(out.reallocations, 0);
    }

    #[test]
    fn improves_on_raw_greedy2_at_heavy_load() {
        let mut rng = SplitMix64::new(6);
        let out = Crs::new().run(256, 256 * 64, &mut rng);
        // Self-balancing must help (greedy[2] has ln ln n-ish excess).
        assert!(out.max_load() < out.initial_max_load || out.max_load() <= out.target() + 1);
    }
}
