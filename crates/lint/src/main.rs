//! `balls-lint` CLI.
//!
//! ```text
//! lint --workspace [--json] [--root DIR] [--config FILE]
//! lint --check-bench FILE.json
//! lint [--json] [--root DIR] FILE.rs…
//! ```
//!
//! Exit status: 0 clean, 1 findings (or an invalid bench file),
//! 2 usage/configuration error — so CI can distinguish "policy
//! violation" from "the auditor itself could not run".

#![forbid(unsafe_code)]

use lint::config::{apply_allowlist, parse_allowlist, AllowEntry};
use lint::rules::Finding;
use lint::{audit_workspace, find_workspace_root, json};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    json: bool,
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    check_bench: Option<PathBuf>,
    files: Vec<String>,
}

const USAGE: &str = "usage: lint --workspace [--json] [--root DIR] [--config FILE]
       lint --check-bench FILE.json
       lint [--json] [--root DIR] FILE.rs...

Audits the workspace for determinism (D1-D3), panic policy (P1),
numeric soundness (N1) and concurrency-readiness (C1). See the
README section 'Static analysis' for the rule table, the
`// lint:allow(RULE): why` pragma, and the lint.toml allowlist.";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        json: false,
        root: None,
        config: None,
        check_bench: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?))
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?))
            }
            "--check-bench" => {
                args.check_bench = Some(PathBuf::from(
                    it.next().ok_or("--check-bench needs a JSON file")?,
                ))
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            file => args.files.push(file.to_string()),
        }
    }
    if !args.workspace && args.check_bench.is_none() && args.files.is_empty() {
        return Err("nothing to do: pass --workspace, --check-bench, or files".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if let Some(bench) = &args.check_bench {
        return check_bench(bench);
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match args.root.clone().or_else(|| find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("error: no workspace root found above {}", cwd.display());
            return ExitCode::from(2);
        }
    };

    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| root.join("lint.toml"));
    let allowlist: Vec<AllowEntry> = if config_path.exists() {
        match std::fs::read_to_string(&config_path)
            .map_err(|e| e.to_string())
            .and_then(|t| parse_allowlist(&t))
        {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("error: {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Vec::new()
    };

    let (findings, checked) = if args.workspace {
        let audit = audit_workspace(&root);
        (audit.findings, audit.files.len())
    } else {
        let mut findings = Vec::new();
        for rel in &args.files {
            match std::fs::read_to_string(root.join(rel)) {
                Ok(src) => findings.extend(lint::audit_source(rel, &src)),
                Err(e) => {
                    eprintln!("error: {rel}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        let count = args.files.len();
        (findings, count)
    };
    let findings = apply_allowlist(findings, &allowlist);
    report(&findings, checked, args.json)
}

fn report(findings: &[Finding], checked: usize, as_json: bool) -> ExitCode {
    if as_json {
        print!("{}", json::findings_to_json(findings, checked));
    } else {
        for f in findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        if findings.is_empty() {
            println!("balls-lint: {checked} files clean");
        } else {
            println!(
                "balls-lint: {} finding(s) in {checked} files",
                findings.len()
            );
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn check_bench(path: &std::path::Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let errs = json::check_bench(&text);
    if errs.is_empty() {
        println!(
            "balls-lint: {} conforms to bib-bench/engines/v6",
            path.display()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errs {
            eprintln!("{}: {e}", path.display());
        }
        eprintln!(
            "balls-lint: {} schema problem(s) in {}",
            errs.len(),
            path.display()
        );
        ExitCode::from(1)
    }
}
