//! Parallel allocation in rounds: the Lenzen–Wattenhofer-style
//! bounded-load protocol and the collision protocol.
//!
//! These are the related-work processes the paper's Table 1 situates
//! `adaptive` against: with synchronous rounds and O(n) messages, max
//! load 2 is achievable in ~log* n rounds [12]. Watch the round count
//! crawl as n grows by factors of 16.
//!
//! Run with:
//! ```text
//! cargo run --release --example parallel_rounds
//! ```

use balls_into_bins::parallel::protocols::{log_star, BoundedLoad, Collision};
use balls_into_bins::rng::seed::default_rng;

fn main() {
    println!(
        "{:>10} {:>9} | {:>7} {:>10} {:>8} | {:>7} {:>10} {:>8}",
        "n", "log*(n)", "rounds", "msgs/ball", "max", "rounds", "msgs/ball", "max"
    );
    println!(
        "{:>10} {:>9} | {:^28} | {:^28}",
        "", "", "bounded-load (cap 2)", "collision (c = 1)"
    );
    for exp in [8u32, 12, 16, 20] {
        let n = 1usize << exp;
        let mut rng = default_rng(exp as u64);
        let bl = BoundedLoad::new(2).run(n, n as u64, &mut rng);
        bl.validate();
        let co = Collision::new(1).run(n, n as u64, &mut rng);
        co.validate();
        println!(
            "{:>10} {:>9} | {:>7} {:>10.2} {:>8} | {:>7} {:>10.2} {:>8}",
            n,
            log_star(n as f64),
            bl.rounds,
            bl.messages_per_ball(),
            bl.max_load(),
            co.rounds,
            co.messages_per_ball(),
            co.max_load(),
        );
    }
    println!();
    println!("bounded-load: max load is *exactly* ≤ 2 by construction, rounds grow");
    println!("like log*; collision places everything in log log-ish rounds but its");
    println!("max load is whatever the collisions allow.");
}
