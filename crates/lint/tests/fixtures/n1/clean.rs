//! N1 clean fixture: widen, or convert with a checked helper.
pub fn to_total(load: u32) -> u64 {
    u64::from(load) * 2
}

pub fn to_load(count: u64) -> u32 {
    u32::try_from(count).expect("count bounded by the u32 load range")
}
