//! Special functions: log-gamma and the regularised incomplete gamma and
//! beta functions.
//!
//! These are the numerical kernels behind the exact Poisson and binomial
//! cumulative distribution functions in [`crate::dist`] and the chi-square
//! p-values in [`crate::chisq`]. The implementations follow the classic
//! Lanczos / Lentz recipes and are accurate to ~1e-13 relative error over
//! the ranges exercised by this workspace (arguments up to ~1e7).

/// Natural logarithm of `2π`, used by the Lanczos approximation.
const LN_2PI: f64 = 1.837_877_066_409_345_5;

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey's values).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function `ln Γ(x)` for `x > 0`.
///
/// Uses the Lanczos approximation with `g = 7`. For `x < 0.5` the
/// reflection formula is applied. Panics in debug builds if `x` is not
/// finite and positive; in release builds non-positive inputs return NaN.
///
/// # Examples
///
/// ```
/// use bib_analysis::special::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-12);          // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-11); // Γ(5) = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x.is_finite(), "ln_gamma: non-finite input {x}");
    if x <= 0.0 {
        return f64::NAN;
    }
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let s = (std::f64::consts::PI * x).sin();
        return std::f64::consts::PI.ln() - s.ln() - ln_gamma(1.0 - x);
    }
    let xm1 = x - 1.0;
    let mut a = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        a += c / (xm1 + i as f64);
    }
    let t = xm1 + LANCZOS_G + 0.5;
    0.5 * LN_2PI + (xm1 + 0.5) * t.ln() - t + a.ln()
}

/// `ln k!` computed exactly for small `k` via a table and via
/// [`ln_gamma`] otherwise.
///
/// Allocation-time accounting and Poisson pmfs evaluate this in hot loops,
/// hence the table for the common small arguments.
pub fn ln_factorial(k: u64) -> f64 {
    // 20! = 2.43e18 is the last factorial exactly representable in u64;
    // below that, summing logs is both cheap and accurate to ~1 ulp.
    if k <= 20 {
        let mut acc = 0.0f64;
        let mut i = 2u64;
        while i <= k {
            acc += (i as f64).ln();
            i += 1;
        }
        acc
    } else {
        ln_gamma(k as f64 + 1.0)
    }
}

/// Binomial coefficient `ln C(n, k)`.
///
/// Returns `-inf` when `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Regularised lower incomplete gamma function
/// `P(a, x) = γ(a, x) / Γ(a)` for `a > 0`, `x ≥ 0`.
///
/// `P(a, ·)` is the cdf of a Gamma(a, 1) random variable; the Poisson cdf
/// is `Pr[Poi(λ) ≤ k] = Q(k + 1, λ)` where `Q = 1 − P`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0, "gamma_p: domain error a={a} x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

/// Regularised upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0, "gamma_q: domain error a={a} x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

/// Series expansion of `P(a, x)`, convergent (and fast) for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..10_000 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    let ln_prefactor = a * x.ln() - x - ln_gamma(a);
    (sum.ln() + ln_prefactor).exp()
}

/// Modified Lentz continued fraction for `Q(a, x)`, convergent for
/// `x ≥ a + 1`.
fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..10_000 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    let ln_prefactor = a * x.ln() - x - ln_gamma(a);
    (h.ln() + ln_prefactor).exp()
}

/// Regularised incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x ∈ [0, 1]`.
///
/// The binomial cdf is `Pr[Bin(n, p) ≤ k] = I_{1−p}(n − k, k + 1)`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!(
        a > 0.0 && b > 0.0 && (0.0..=1.0).contains(&x),
        "beta_inc: domain error a={a} b={b} x={x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // Use the symmetry relation to stay in the fast-converging regime.
    if x < (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_contfrac(a, b, x) / a
    } else {
        1.0 - ln_front.exp() * beta_contfrac(b, a, 1.0 - x) / b
    }
}

/// Modified Lentz continued fraction for the incomplete beta function.
fn beta_contfrac(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..10_000 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h
}

/// Error function `erf(x)`, via the incomplete gamma function.
///
/// Used by the normal-distribution helpers in [`crate::stats`].
pub fn erf(x: f64) -> f64 {
    let v = gamma_p(0.5, x * x);
    if x >= 0.0 {
        v
    } else {
        -v
    }
}

/// Standard normal cdf `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse of the standard normal cdf (the probit function), computed by
/// bisection on [`normal_cdf`]; accurate to ~1e-12.
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile: p={p} out of (0,1)");
    let (mut lo, mut hi) = (-40.0f64, 40.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if normal_cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Student-t cumulative distribution function with `df` degrees of
/// freedom, via the incomplete beta function.
pub fn student_t_cdf(df: f64, x: f64) -> f64 {
    assert!(df > 0.0, "student_t_cdf: df must be positive");
    if x == 0.0 {
        return 0.5;
    }
    let ib = beta_inc(df / 2.0, 0.5, df / (df + x * x));
    if x > 0.0 {
        1.0 - 0.5 * ib
    } else {
        0.5 * ib
    }
}

/// Student-t quantile with `df` degrees of freedom, by bisection on
/// [`student_t_cdf`]; accurate to ~1e-10.
///
/// Panics unless `p ∈ (0, 1)`.
pub fn student_t_quantile(df: f64, p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "student_t_quantile: p={p} out of (0,1)");
    let (mut lo, mut hi) = (-1e6f64, 1e6f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(df, mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn student_t_cdf_symmetry_and_median() {
        for &df in &[1.0, 3.0, 10.0, 100.0] {
            assert!(close(student_t_cdf(df, 0.0), 0.5, 1e-14));
            for &x in &[0.5, 1.7, 4.0] {
                assert!(
                    close(student_t_cdf(df, x) + student_t_cdf(df, -x), 1.0, 1e-11),
                    "df={df} x={x}"
                );
            }
        }
    }

    #[test]
    fn student_t_known_quantiles() {
        // Classic table values: t_{0.975} for df = 1, 5, 30.
        assert!((student_t_quantile(1.0, 0.975) - 12.706).abs() < 0.01);
        assert!((student_t_quantile(5.0, 0.975) - 2.571).abs() < 0.005);
        assert!((student_t_quantile(30.0, 0.975) - 2.042).abs() < 0.005);
    }

    #[test]
    fn student_t_converges_to_normal() {
        // df → ∞: t quantiles approach normal quantiles.
        let t = student_t_quantile(10_000.0, 0.975);
        let z = normal_quantile(0.975);
        assert!((t - z).abs() < 0.001, "t={t} z={z}");
    }

    #[test]
    fn student_t_cauchy_special_case() {
        // df = 1 is Cauchy: cdf(x) = 1/2 + atan(x)/π.
        for &x in &[0.3f64, 1.0, 2.5] {
            let expect = 0.5 + x.atan() / std::f64::consts::PI;
            assert!(close(student_t_cdf(1.0, x), expect, 1e-10), "x={x}");
        }
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(k+1) = k!
        let mut fact = 1.0f64;
        for k in 1..20u32 {
            fact *= k as f64;
            assert!(close(ln_gamma(k as f64 + 1.0), fact.ln(), 1e-12), "k={k}");
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π, Γ(3/2) = √π/2.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!(close(ln_gamma(0.5), sqrt_pi.ln(), 1e-12));
        assert!(close(ln_gamma(1.5), (sqrt_pi / 2.0).ln(), 1e-12));
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(0.25) ≈ 3.6256099082219083
        assert!(close(ln_gamma(0.25), 3.625_609_908_221_908f64.ln(), 1e-11));
    }

    #[test]
    fn ln_factorial_matches_ln_gamma() {
        for k in [0u64, 1, 2, 5, 20, 21, 100, 1000] {
            assert!(
                close(ln_factorial(k), ln_gamma(k as f64 + 1.0), 1e-12),
                "k={k}"
            );
        }
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!(close(ln_choose(5, 2), 10f64.ln(), 1e-12));
        assert!(close(ln_choose(10, 5), 252f64.ln(), 1e-12));
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        assert!(close(ln_choose(7, 0), 0.0, 1e-15));
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &(a, x) in &[
            (0.5, 0.3),
            (1.0, 1.0),
            (3.0, 2.0),
            (10.0, 14.0),
            (100.0, 80.0),
        ] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert!(close(p + q, 1.0, 1e-12), "a={a} x={x} p+q={}", p + q);
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x} (cdf of Exp(1)).
        for &x in &[0.1f64, 0.5, 1.0, 3.0, 10.0] {
            assert!(close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-13), "x={x}");
        }
    }

    #[test]
    fn beta_inc_uniform_special_case() {
        // I_x(1, 1) = x.
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!(close(beta_inc(1.0, 1.0, x), x, 1e-13), "x={x}");
        }
    }

    #[test]
    fn beta_inc_symmetry() {
        // I_x(a, b) = 1 − I_{1−x}(b, a).
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (5.0, 1.5, 0.7), (0.5, 0.5, 0.2)] {
            assert!(
                close(beta_inc(a, b, x), 1.0 - beta_inc(b, a, 1.0 - x), 1e-12),
                "a={a} b={b} x={x}"
            );
        }
    }

    #[test]
    fn erf_known_values() {
        assert!(close(erf(0.0), 0.0, 1e-15));
        assert!(close(erf(1.0), 0.842_700_792_949_714_9, 1e-10));
        assert!(close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10));
        assert!(close(erf(2.0), 0.995_322_265_018_952_7, 1e-10));
    }

    #[test]
    fn normal_cdf_symmetry_and_median() {
        assert!(close(normal_cdf(0.0), 0.5, 1e-14));
        for &x in &[0.3, 1.0, 2.5] {
            assert!(close(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-13), "x={x}");
        }
    }

    #[test]
    fn normal_quantile_round_trips() {
        for &p in &[0.01, 0.05, 0.5, 0.9, 0.975, 0.999] {
            let x = normal_quantile(p);
            assert!(close(normal_cdf(x), p, 1e-10), "p={p}");
        }
        // The classic 97.5% quantile.
        assert!((normal_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-8);
    }

    #[test]
    #[should_panic]
    fn normal_quantile_rejects_zero() {
        normal_quantile(0.0);
    }
}
