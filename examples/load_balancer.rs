//! Flagship demo: a fault-tolerant streaming load balancer.
//!
//! This is the application the paper's adaptivity is for, now run as a
//! *service* instead of a batch: requests arrive and complete
//! continuously, the dispatcher places each with two-choice probing,
//! and mid-run half the fleet crashes and later recovers. Watch for:
//!
//! * **sustained throughput** — millions of placements + departures per
//!   second on the dense sharded engine;
//! * **graceful degradation** — during the outage the dispatcher sheds
//!   or falls back to one-choice instead of wedging, and every such
//!   event is counted on the outcome record;
//! * **self-stabilization** — after the recovery event the gap falls
//!   back into its pre-fault band within a few ticks.
//!
//! Run with:
//! ```text
//! cargo run --release --example load_balancer
//! ```

use balls_into_bins::core::prelude::*;
use balls_into_bins::parallel::{available_threads, serve_concurrent};

fn main() {
    let servers = 100_000usize;
    let ticks = 400u64;
    let arrivals = 20_000_000u64; // ≈50k requests per tick
    let depart = 0.10; // each resident request completes w.p. 10%/tick
    let crash_at = 150u64;
    let recover_at = 250u64;
    let seed = 2013u64;

    let spec = StreamSpec::new(ticks, depart)
        .with_faults(FaultPlan::mass_failure(crash_at, 0.5, recover_at, seed))
        .with_retry(RetryPolicy {
            probe_budget: 8,
            retry_budget: 3,
            backoff_cap: 8,
            fallback_alive_frac: 0.6,
        });
    let threads = available_threads().max(2);
    let cfg = RunConfig::new(servers, arrivals).with_threads(threads);

    println!("{servers} servers, {arrivals} requests over {ticks} ticks, {threads} threads");
    println!("fault plan: crash 50% of servers at tick {crash_at}, recover at {recover_at}\n");

    let report = serve_concurrent(&spec, Family::Greedy(2), &cfg, seed);
    let out = &report.outcome;
    let s = &out.scenario;

    // Pre-fault steady-state gap band: the worst gap seen in the 50
    // ticks leading up to the crash.
    let band = report
        .series
        .iter()
        .filter(|t| t.tick >= crash_at - 50 && t.tick < crash_at)
        .map(|t| t.gap)
        .max()
        .expect("pre-fault window");

    println!(
        "{:>6} {:>12} {:>8} {:>6} {:>6} {:>10} {:>10}",
        "tick", "in-system", "alive%", "gap", "max", "shed", "fallbacks"
    );
    for t in &report.series {
        let interesting = t.tick % 50 == 0
            || t.tick + 1 == ticks
            || t.tick.abs_diff(crash_at) <= 2
            || t.tick.abs_diff(recover_at) <= 2;
        if interesting {
            let marker = match t.tick {
                t if t == crash_at => "  <- crash",
                t if t == recover_at => "  <- recover",
                _ => "",
            };
            println!(
                "{:>6} {:>12} {:>7.1}% {:>6} {:>6} {:>10} {:>10}{marker}",
                t.tick,
                t.in_system,
                t.alive_ppm as f64 / 1e4,
                t.gap,
                t.max_load,
                t.shed,
                t.fallbacks
            );
        }
    }

    let recovered = report
        .series
        .iter()
        .filter(|t| t.tick > recover_at)
        .find(|t| t.gap <= band);
    println!("\npre-fault gap band: ≤ {band}");
    match recovered {
        Some(t) => println!(
            "gap back inside the band at tick {} ({} ticks after recovery)",
            t.tick,
            t.tick - recover_at
        ),
        None => println!("gap still above the band at the end of the run"),
    }

    println!(
        "\nthroughput: {} ops ({} placed + {} departed) in {:.3}s = {:.1}M ops/s",
        report.ops(),
        s.arrivals - s.shed,
        s.departed,
        report.wall.as_secs_f64(),
        report.ops_per_sec() / 1e6
    );
    println!(
        "degradation ledger: shed {} ({:.4}% of arrivals), one-choice fallbacks {}",
        s.shed,
        s.shed_rate() * 100.0,
        s.fallbacks
    );
    println!(
        "latency (probes per placement): p50={} p99={} p999={}",
        report.latency.quantile(0.50),
        report.latency.quantile(0.99),
        report.latency.quantile(0.999)
    );
    println!(
        "final state: {} resident, gap {}, max load {}, alive {:.0}%",
        out.m,
        out.gap(),
        out.max_load(),
        s.alive_frac * 100.0
    );
}
