//! Property-based tests for the reallocation schemes.

use bib_reloc::{Crs, CuckooTable, InsertError};
use bib_rng::{SeedSequence, SplitMix64};
use proptest::prelude::*;

proptest! {
    /// CRS conserves mass and never exceeds the greedy[2] initial max
    /// load, for arbitrary configurations.
    #[test]
    fn crs_invariants(n in 1usize..128, m in 0u64..2000, seed in 0u64..500) {
        let mut rng = SeedSequence::new(seed).rng();
        let out = Crs::new().run(n, m, &mut rng);
        out.validate();
        prop_assert!(out.max_load() <= out.initial_max_load.max(1));
        prop_assert_eq!(out.samples, 2 * m);
        // Target is the information-theoretic floor.
        prop_assert!(out.max_load() as u64 >= m.div_ceil(n as u64).min(u32::MAX as u64));
    }

    /// Cuckoo: everything inserted is found; everything never inserted
    /// is not found; removal round-trips. At ≤ 25% load the kick budget
    /// should never trigger.
    #[test]
    fn cuckoo_set_semantics(
        nbuckets in 4usize..128,
        k in 1usize..5,
        d in 2usize..4,
        seed in 0u64..500,
        keys in prop::collection::btree_set(0u64..100_000, 0..32),
    ) {
        let capacity = nbuckets * k;
        prop_assume!(keys.len() * 4 <= capacity);
        let mut t = CuckooTable::new(nbuckets, k, d, seed);
        let mut rng = SplitMix64::new(seed ^ 0xABCD);
        for &key in &keys {
            match t.insert(key, &mut rng) {
                Ok(_) => {}
                Err(InsertError::KickBudgetExhausted { .. }) => {
                    // Allowed by the API (stash keeps it lossless) but
                    // should be essentially impossible at 25% load with
                    // d ≥ 2 — treat as suspicious only if frequent.
                }
                Err(InsertError::DuplicateKey) => prop_assert!(false, "btree_set gave a dup?"),
            }
        }
        prop_assert_eq!(t.len(), keys.len());
        for &key in &keys {
            prop_assert!(t.contains(key), "lost key {key}");
        }
        // A key outside the inserted set.
        let missing = 100_001u64;
        prop_assert!(!t.contains(missing));
        // Remove half and re-check.
        for (i, &key) in keys.iter().enumerate() {
            if i % 2 == 0 {
                prop_assert!(t.remove(key));
                prop_assert!(!t.contains(key));
            }
        }
        for (i, &key) in keys.iter().enumerate() {
            prop_assert_eq!(t.contains(key), i % 2 == 1);
        }
    }

    /// Duplicate inserts are always rejected and change nothing.
    #[test]
    fn cuckoo_duplicate_rejection(seed in 0u64..200, key in 0u64..1000) {
        let mut t = CuckooTable::new(32, 2, 2, seed);
        let mut rng = SplitMix64::new(seed);
        t.insert(key, &mut rng).unwrap();
        let len = t.len();
        prop_assert_eq!(t.insert(key, &mut rng), Err(InsertError::DuplicateKey));
        prop_assert_eq!(t.len(), len);
    }

    /// bucket_of is deterministic in (key, seed) and in-range.
    #[test]
    fn cuckoo_hashes_deterministic(seed in any::<u64>(), key in any::<u64>(), nb in 1usize..1000) {
        let a = CuckooTable::new(nb, 2, 3, seed);
        let b = CuckooTable::new(nb, 2, 3, seed);
        for i in 0..3 {
            let ha = a.bucket_of(key, i);
            prop_assert!(ha < nb);
            prop_assert_eq!(ha, b.bucket_of(key, i));
        }
    }
}

/// Deterministic (non-proptest) regression: the CRS final state is a
/// local optimum — re-running self-balancing from the final loads finds
/// no improving move. We verify by running twice with the same seed and
/// confirming convergence was reached (passes ≥ 1, last pass idle).
#[test]
fn crs_converges_to_fixpoint() {
    let mut rng = SeedSequence::new(77).rng();
    let out = Crs::new().run(256, 4096, &mut rng);
    out.validate();
    // The run only terminates when a full pass makes no move, so the
    // pass counter exceeding 1 plus termination is itself the property;
    // additionally the balance must be within +1 of the target.
    assert!(out.passes >= 1);
    assert!(out.max_load() <= out.target() + 1);
}
