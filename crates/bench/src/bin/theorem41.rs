//! **E5 — Theorem 4.1**: `threshold`'s allocation time is
//! `m + O(m^{3/4} n^{1/4})`.
//!
//! We sweep `(n, ϕ)` and report the excess `T − m` normalised by the
//! theorem's envelope `m^{3/4} n^{1/4}`. If the bound captures the true
//! scaling, the normalised column is bounded (roughly constant) across
//! the whole grid, while naive normalisations (`/m` or `/√(mn)`) drift.
//!
//! ```text
//! cargo run --release -p bib-bench --bin theorem41 [-- --quick --csv]
//! ```

use bib_analysis::Welford;
use bib_bench::{f, ExpArgs, Table};
use bib_core::prelude::*;
use bib_parallel::replicate_outcomes;

fn main() {
    let args = ExpArgs::parse();
    let ns: Vec<usize> = args.pick(
        vec![1 << 10, 1 << 12, 1 << 14, 1 << 16],
        vec![1 << 8, 1 << 10],
    );
    let phis: Vec<u64> = args.pick(vec![4, 16, 64, 256], vec![4, 16]);
    let reps = args.reps_or(20, 5);

    println!(
        "# Theorem 4.1: threshold excess (T - m), normalised by m^(3/4) n^(1/4); {reps} reps\n"
    );
    let mut table = Table::new(vec!["n", "phi", "T-m", "(T-m)/env", "ci95", "(T-m)/m"]);

    for &n in &ns {
        for &phi in &phis {
            let m = phi * n as u64;
            let env = (m as f64).powf(0.75) * (n as f64).powf(0.25);
            let cfg = RunConfig::new(n, m).with_engine(args.engine_or(Engine::Jump));
            let outs = replicate_outcomes(&Threshold, &cfg, &args.replicate_spec(reps));
            let mut excess = Welford::new();
            let mut norm = Welford::new();
            for o in &outs {
                excess.push(o.excess_samples() as f64);
                norm.push(o.excess_samples() as f64 / env);
            }
            table.row(vec![
                n.to_string(),
                phi.to_string(),
                f(excess.mean()),
                f(norm.mean()),
                f(1.96 * norm.standard_error()),
                f(excess.mean() / m as f64),
            ]);
        }
    }

    table.print(&args);
    println!("\n# Expected shape: (T-m)/env roughly constant across the grid;");
    println!("# (T-m)/m shrinking as m grows (the excess is sublinear).");
}
