//! **E7 — Lemma 4.2**: at `m = n²`, `threshold`'s final distribution is
//! rough: `Ψ = Ω(n^{9/8})`, gap `= Ω(n^{1/8})`, `Φ = 2^{Ω(n^{1/8})}`.
//!
//! Sweep `n` with `m = n²` (level-batched threshold column — exact on
//! final loads; auto-resolved adaptive contrast) and report
//! Ψ/n^{9/8}, gap/n^{1/8} and ln Φ/n^{1/8}.
//! Lemma 4.2 predicts all three stay bounded *away from zero* as `n`
//! grows; `adaptive` at the same `m = n²` is shown for contrast (its
//! Ψ/n and gap stay flat — Corollary 3.5).
//!
//! ```text
//! cargo run --release -p bib-bench --bin lemma42 [-- --quick --csv --no-loads]
//! ```
//!
//! With `--no-loads` both columns run on the histogram engine and every
//! outcome is asserted to never materialize its dense load vector. The
//! size grid stays put — `m = n²` is a ball-count wall, not a bin-count
//! one — so here the flag is a lazy-contract check, not a scale unlock
//! (that regime lives in `corollary35 --no-loads`).

use bib_analysis::stats::power_fit;
use bib_bench::{f, ExpArgs, Table};
use bib_core::prelude::*;
use bib_parallel::replicate::summarize_metric;
use bib_parallel::replicate_outcomes;

fn main() {
    let args = ExpArgs::parse();
    // 10× the pre-level-batched sweep: m = n² reaches 1.7 × 10⁹ balls at
    // the top size. The threshold column — the lemma's subject — runs
    // under the batched engine (group work, ~ms per run); the adaptive
    // contrast is inherently per-ball and uses its fastest engine.
    let ns: Vec<usize> = args.pick(vec![2560, 5120, 10240, 20480, 40960], vec![64, 128]);
    let reps = args.reps_or(10, 3);

    println!("# Lemma 4.2: threshold at m = n^2; {reps} reps\n");
    let mut table = Table::new(vec![
        "n",
        "thr_psi/n^1.125",
        "thr_gap/n^0.125",
        "thr_lnphi/n^0.125",
        "ada_psi/n",
        "ada_gap",
    ]);

    let mut ns_f = Vec::new();
    let mut psi_means = Vec::new();
    let mut gap_means = Vec::new();
    for &n in &ns {
        let m = (n as u64) * (n as u64);
        // The threshold column feeds tail-exponential statistics
        // (ln Φ amplifies upper-tail load errors), so it pins the
        // level-batched engine — exact in distribution on final loads
        // and still ~ms per run here. The adaptive contrast defaults to
        // Engine::Auto (the histogram engine at these sizes — see
        // BENCH_engines.json), which is what fixed its old default into
        // the level-batched regression; its chi-square-bounded
        // occupancy approximation is ample for the flat Ψ/n and gap
        // columns, and `--engine faithful` reproduces the exact process
        // when wanted.
        // --no-loads re-pins both columns to the histogram engine
        // (level-batched materializes eagerly, and Auto may resolve to
        // a dense engine at small n) so the lazy assertion holds on
        // every outcome.
        let (thr_default, ada_default) = if args.no_loads {
            (Engine::Histogram, Engine::Histogram)
        } else {
            (Engine::LevelBatched, Engine::Auto)
        };
        let thr_cfg = RunConfig::new(n, m).with_engine(args.engine_or(thr_default));
        let ada_cfg = RunConfig::new(n, m).with_engine(args.engine_or(ada_default));
        let spec = args.replicate_spec(reps);
        let thr = replicate_outcomes(&Threshold, &thr_cfg, &spec);
        let ada = replicate_outcomes(&Adaptive::paper(), &ada_cfg, &spec);
        for o in thr.iter().chain(ada.iter()) {
            args.assert_lazy(o, &format!("n={n}"));
        }

        let n98 = (n as f64).powf(9.0 / 8.0);
        let n18 = (n as f64).powf(1.0 / 8.0);
        let t_psi = summarize_metric(&thr, |o| o.psi() / n98);
        let t_gap = summarize_metric(&thr, |o| o.gap() as f64 / n18);
        let t_phi = summarize_metric(&thr, |o| o.ln_phi() / n18);
        let a_psi = summarize_metric(&ada, |o| o.psi() / n as f64);
        let a_gap = summarize_metric(&ada, |o| o.gap() as f64);
        ns_f.push(n as f64);
        psi_means.push(summarize_metric(&thr, |o| o.psi()).mean);
        gap_means.push(summarize_metric(&thr, |o| o.gap() as f64).mean);

        table.row(vec![
            n.to_string(),
            f(t_psi.mean),
            f(t_gap.mean),
            f(t_phi.mean),
            f(a_psi.mean),
            f(a_gap.mean),
        ]);
    }

    table.print(&args);
    // Measured exponents vs the lemma's lower bounds (9/8 and 1/8).
    let (_, psi_exp, psi_r2) = power_fit(&ns_f, &psi_means);
    let (_, gap_exp, gap_r2) = power_fit(&ns_f, &gap_means);
    println!(
        "\n# Fitted threshold exponents: psi ~ n^{} (r2 {}), gap ~ n^{} (r2 {})",
        f(psi_exp),
        f(psi_r2),
        f(gap_exp),
        f(gap_r2)
    );
    println!("# Lemma 4.2 lower bounds: psi exponent >= 9/8 = 1.125, gap exponent >= 1/8 = 0.125.");
    println!("\n# Expected shape: the three threshold columns stay bounded away from 0");
    println!("# (the lemma's lower bounds), while adaptive's psi/n and gap stay flat");
    println!("# and small (Corollary 3.5) despite the same m = n^2 load.");
}
