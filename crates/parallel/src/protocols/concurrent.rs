//! The sharded concurrent single-run engine ([`Engine::Concurrent`])
//! for the parallel round family.
//!
//! The faithful paths in [`super::collision`], [`super::bounded_load`]
//! and [`super::parallel_greedy`] simulate one synchronous round at a
//! time on sequential state. This module executes *one run* on
//! `cfg.threads` worker threads instead: per-bin state lives in shared
//! arrays of atomics (the "shards"), each worker processes disjoint
//! chunks of balls within a round, and placements are accepted through
//! commutative atomic read-modify-writes — `fetch_add` tallies,
//! `fetch_min` lotteries, and `fetch_update` CAS-retry claims.
//!
//! # Memory model
//!
//! Every atomic in this module is accessed with `Ordering::Relaxed`.
//! That is sound because the engine is a strict sequence of
//! *supersteps*: workers advance in lockstep through per-round phases
//! separated by [`crossbeam::pool::Rounds::sync`] barriers, and a
//! barrier crossing establishes happens-before from everything every
//! worker did before it to everything every worker does after it. No
//! atomic here ever orders *other* data — each phase either writes a
//! shard or reads it, never both racily:
//!
//! * the leader (worker 0) publishes round parameters in a serial
//!   section while the other workers wait at the top-of-round barrier,
//!   and reads the round's accumulators after the end-of-round barrier;
//! * within a phase, shard updates are commutative (`fetch_add` /
//!   `fetch_min` / monotone `fetch_update`), so the final value is
//!   independent of thread interleaving;
//! * reads that must see a phase's writes happen after the next
//!   barrier.
//!
//! # Deterministic vs racy
//!
//! The engine has two documented modes, selected by `cfg.racy`:
//!
//! * **Deterministic** (default): every random draw comes from a
//!   per-`(round, chunk)` child stream of one engine seed, chunks are
//!   assigned to workers by a fixed round-robin, and every shared
//!   update is commutative — so the outcome is *bit-identical for
//!   every thread count*, including `--threads 1`. Placement conflicts
//!   are resolved by scheduling-independent lotteries: each contending
//!   entry draws a 32-bit priority and `fetch_min` keeps the smallest
//!   `(priority, ball)` key, which is a uniform pick among the entries
//!   (ties fall back to the smaller ball id, a ~2⁻³² bias). The
//!   deterministic mode reproduces each faithful path's per-round
//!   *law* exactly (argued at each driver), it just draws from
//!   different streams — the equivalence suite checks both the
//!   thread-count invariance and the distributional match.
//! * **Racy** (`cfg.racy = true`, `--racy` on the experiment
//!   binaries): workers claim chunks first-come off a shared ticket
//!   and draw from per-worker streams, and acceptance races are
//!   settled by whoever's CAS lands first — placements are ordered by
//!   true contention, so reruns may differ. The mode is validated
//!   statistically: a two-sample chi-square against the faithful path
//!   on max-load / rounds / messages (see
//!   `tests/concurrent_equivalence.rs`).
//!
//! Observer contract: `on_ball` never fires (round protocols place
//! balls simultaneously); stage ends fire once per protocol round with
//! the same labels, loads and placed counts as the faithful paths —
//! the leader snapshots them during its serial section and the caller
//! replays them after the workers join.
//!
//! [`Engine::Concurrent`]: bib_core::protocol::Engine::Concurrent

use bib_core::error::ProtocolError;
use bib_core::protocol::{Observer, Outcome, RunConfig};
use bib_core::scenario::Scenario;
use bib_rng::{Rng64, RngExt, SeedSequence, Xoshiro256PlusPlus};
use crossbeam::pool;
// ORDERING: every atomic op in this module carries an inline argument;
// the module docs give the barrier-superstep memory model.
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Balls per work chunk: small enough to load-balance the racy mode,
/// large enough that the per-chunk stream setup (a few SplitMix64
/// mixes) is noise.
const CHUNK: u64 = 4096;

/// Sentinel for an unclaimed lottery slot — larger than every packed
/// `(priority, ball)` key because ball ids are `< u32::MAX`.
const EMPTY: u64 = u64::MAX;

/// Packs a `(high, low)` pair of u32 halves into a lottery key or a
/// `(round, count)` cell.
fn pack(hi: u32, lo: u32) -> u64 {
    (u64::from(hi) << 32) | u64::from(lo)
}

/// High half of a packed cell.
fn hi32(v: u64) -> u32 {
    u32::try_from(v >> 32).expect("a shifted u64 high half fits u32")
}

/// Low half of a packed cell.
fn lo32(v: u64) -> u32 {
    u32::try_from(v & u64::from(u32::MAX)).expect("a masked u64 low half fits u32")
}

/// Narrows a ball id for a packed lottery key; every driver using ball
/// ids asserts `m ≤ u32::MAX` on entry.
fn ball32(j: u64) -> u32 {
    u32::try_from(j).expect("ball ids fit u32 (m is asserted on entry)")
}

/// The deterministic per-`(round, chunk)` stream: any worker can
/// derive it locally, so nothing about the random schedule depends on
/// which thread processes a chunk. Round 0 is reserved for preludes
/// (e.g. the greedy candidate fill); protocol rounds start at 1.
fn chunk_rng(engine_seed: u64, round: u32, chunk: u64) -> Xoshiro256PlusPlus {
    SeedSequence::new(engine_seed)
        .child(u64::from(round))
        .child(chunk)
        .rng()
}

/// The racy mode's persistent per-worker stream.
fn worker_rng(engine_seed: u64, w: usize) -> Xoshiro256PlusPlus {
    SeedSequence::new(engine_seed)
        .child_str("racy-worker")
        .child(w as u64)
        .rng()
}

/// Iterates the chunk indices worker `w` processes in one phase.
///
/// Deterministic mode walks a fixed round-robin by worker id: every
/// shared update commutes, so outcomes do not depend on which worker
/// handles a chunk and no coordination is needed. Racy mode claims
/// chunks first-come off the shared ticket (reset by the leader each
/// round), which load-balances at the cost of scheduling-dependent
/// claim order.
fn claim_chunks(
    det: bool,
    w: usize,
    workers: usize,
    chunks: u64,
    // ORDERING: Relaxed-only ticket; see the claim loop's argument.
    ticket: &AtomicUsize,
    mut body: impl FnMut(u64),
) {
    if det {
        let mut c = w as u64;
        while c < chunks {
            body(c);
            c += workers as u64;
        }
    } else {
        loop {
            // ORDERING: Relaxed — the ticket only partitions chunk
            // indices between workers; the data each chunk touches is
            // ordered by the phase barriers, not by this counter.
            let c = ticket.fetch_add(1, Ordering::Relaxed) as u64;
            if c >= chunks {
                break;
            }
            body(c);
        }
    }
}

/// The `[lo, hi)` ball range of chunk `c` over `items` balls.
fn chunk_range(c: u64, items: u64) -> (u64, u64) {
    let lo = c * CHUNK;
    (lo, (lo + CHUNK).min(items))
}

/// Stage snapshots buffered by the leader: `(label, loads, placed)`.
type Stages = Mutex<Vec<(u64, Vec<u32>, u64)>>;

/// Replays the buffered stage ends into the observer after the
/// workers have joined (observers are `&mut` and cannot be shared with
/// the worker closure).
fn replay_stages<O: Observer + ?Sized>(stages: Stages, obs: &mut O) {
    let buffered = stages
        .into_inner()
        .expect("only the leader locks the stage buffer and it does not panic");
    for (label, loads, placed) in buffered {
        obs.on_stage_end(label, &loads, placed);
    }
}

/// Reads a loads shard into a plain vector for a stage snapshot.
///
/// ORDERING: Relaxed — the leader only calls this in its serial
/// section, after the end-of-round barrier ordered every worker's
/// placement writes before it.
fn snapshot_loads(loads: &[AtomicU32]) -> Vec<u32> {
    loads.iter().map(|l| l.load(Ordering::Relaxed)).collect()
}

/// Drains a shard of atomics into the plain vector an [`Outcome`]
/// wants. ORDERING: none — `into_inner` takes ownership.
fn unwrap_loads(loads: Vec<AtomicU32>) -> Vec<u32> {
    loads.into_iter().map(AtomicU32::into_inner).collect()
}

// ---------------------------------------------------------------------
// Collision
// ---------------------------------------------------------------------

/// The concurrent collision driver. Semantics mirror
/// [`super::collision::Collision`]'s faithful path round for round:
/// contacts, all-or-nothing acceptance at multiplicity ≤ `c`, the
/// stall fallback, and the message/round accounting.
///
/// Determinism argument: phase A accumulates per-bin contact counts
/// with commutative `fetch_add`s, so the counts multiset after the
/// barrier is schedule-independent; phase B's accept decision is a
/// pure function of a bin's count, and the load increments commute.
/// Balls carry no state here (the faithful path also only tracks the
/// unplaced count), so chunks relabel the unplaced balls `0..u` each
/// round.
pub(super) fn collision<R, O>(
    c: u32,
    max_rounds: u32,
    stall_limit: u32,
    name: String,
    cfg: &RunConfig,
    rng: &mut R,
    obs: &mut O,
) -> Outcome
where
    R: Rng64 + ?Sized,
    O: Observer + ?Sized,
{
    let (n, m) = (cfg.n, cfg.m);
    assert!(n > 0, "need at least one bin");
    let workers = cfg.threads.max(1);
    let det = !cfg.racy;
    let engine_seed = rng.next_u64();
    let want_stages = obs.wants_stage_ends();

    // Bin shards. ORDERING: Relaxed throughout — phase A only writes
    // `counts`, phase B only writes `loads`; the phase barriers order
    // the cross-phase reads (module docs).
    let loads: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();

    // Control block. ORDERING: Relaxed throughout — the leader writes
    // these in its serial section before the top-of-round barrier and
    // reads the accumulators after the end-of-round barrier; workers
    // only read parameters / add to accumulators in between.
    let round = AtomicU32::new(0);
    let unplaced = AtomicU64::new(0);
    let in_fallback = AtomicBool::new(false);
    // ORDERING: Relaxed throughout — same serial-section contract.
    let done = AtomicBool::new(false);
    let failed = AtomicBool::new(false);
    let placed_round = AtomicU64::new(0);
    // ORDERING: Relaxed throughout — same serial-section contract.
    let messages = AtomicU64::new(0);
    let rounds_out = AtomicU32::new(0);
    let ticket = AtomicUsize::new(0);
    let stages: Stages = Mutex::new(Vec::new());

    pool::scoped(workers, |w, bar| {
        let mut racy_rng = (!det).then(|| worker_rng(engine_seed, w));
        // Bins this worker first-touched in phase A — exclusively
        // owned, so phase B sweeps them without coordination.
        let mut touched: Vec<usize> = Vec::new();
        // Leader-only round bookkeeping (inert in workers 1..).
        let mut l_round = 0u32;
        let mut l_unplaced = m;
        let mut l_stalled = 0u32;
        let mut l_fallback = false;
        let mut l_started = false;
        loop {
            if w == 0 {
                // Serial section: settle the finished round, schedule
                // the next one. The other workers wait at the barrier
                // below.
                if l_started {
                    // ORDERING: Relaxed — the end-of-round barrier
                    // ordered every worker's adds before this read.
                    let pr = placed_round.swap(0, Ordering::Relaxed);
                    if l_fallback {
                        // The fallback one-choice throw placed every
                        // remaining ball; the faithful path fires one
                        // stage end for the whole stall+fallback
                        // iteration, labelled after the extra round.
                        l_unplaced = 0;
                        l_fallback = false;
                        if want_stages {
                            let snap = snapshot_loads(&loads);
                            stages.lock().expect("leader-only lock").push((
                                u64::from(l_round),
                                snap,
                                m,
                            ));
                        }
                    } else {
                        l_unplaced -= pr;
                        if pr == 0 {
                            l_stalled += 1;
                        } else {
                            l_stalled = 0;
                        }
                        if pr == 0 && l_stalled >= stall_limit && l_unplaced > 0 {
                            // Livelock: schedule the one-choice
                            // fallback as an extension of this round
                            // (request + forced accept per ball).
                            l_round += 1;
                            l_fallback = true;
                            // ORDERING: Relaxed — leader-only add in
                            // the serial section.
                            messages.fetch_add(2 * l_unplaced, Ordering::Relaxed);
                        } else if want_stages {
                            let snap = snapshot_loads(&loads);
                            stages.lock().expect("leader-only lock").push((
                                u64::from(l_round),
                                snap,
                                m - l_unplaced,
                            ));
                        }
                    }
                }
                l_started = true;
                if !l_fallback {
                    if l_unplaced == 0 {
                        // ORDERING: Relaxed — published before the
                        // barrier every worker crosses below.
                        rounds_out.store(l_round, Ordering::Relaxed);
                        done.store(true, Ordering::Relaxed);
                    } else {
                        l_round += 1;
                        if l_round > max_rounds {
                            // Panicking here would strand the other
                            // workers at the barrier; flag and stop
                            // instead, the caller panics after join.
                            // ORDERING: Relaxed — pre-barrier publish.
                            failed.store(true, Ordering::Relaxed);
                            done.store(true, Ordering::Relaxed);
                        } else {
                            // ORDERING: Relaxed — leader-only add: one
                            // contact message per unplaced ball.
                            messages.fetch_add(l_unplaced, Ordering::Relaxed);
                        }
                    }
                }
                // ORDERING: Relaxed — round parameters, published
                // before the top-of-round barrier.
                round.store(l_round, Ordering::Relaxed);
                unplaced.store(l_unplaced, Ordering::Relaxed);
                in_fallback.store(l_fallback, Ordering::Relaxed);
                // ORDERING: Relaxed — ticket reset, same publication.
                ticket.store(0, Ordering::Relaxed);
            }
            bar.sync();
            // ORDERING: Relaxed — all workers read the parameters the
            // leader stored before the barrier above.
            if done.load(Ordering::Relaxed) {
                break;
            }
            // ORDERING: Relaxed — same pre-barrier publications.
            let r = round.load(Ordering::Relaxed);
            let u = unplaced.load(Ordering::Relaxed);
            let fb = in_fallback.load(Ordering::Relaxed);
            let chunks = u.div_ceil(CHUNK);
            if fb {
                // Fallback: every remaining ball lands one-choice.
                claim_chunks(det, w, workers, chunks, &ticket, |chunk| {
                    let (lo, hi) = chunk_range(chunk, u);
                    let mut stream;
                    let crng: &mut dyn Rng64 = match racy_rng.as_mut() {
                        Some(wr) => wr,
                        None => {
                            stream = chunk_rng(engine_seed, r, chunk);
                            &mut stream
                        }
                    };
                    for _ in lo..hi {
                        let b = crng.range_usize(n);
                        // ORDERING: Relaxed — unconditional commutative
                        // placement tally.
                        loads[b].fetch_add(1, Ordering::Relaxed);
                    }
                });
            } else {
                // Phase A: contacts. The first toucher of a bin (its
                // fetch_add returned 0) takes exclusive ownership of
                // resolving it in phase B.
                claim_chunks(det, w, workers, chunks, &ticket, |chunk| {
                    let (lo, hi) = chunk_range(chunk, u);
                    let mut stream;
                    let crng: &mut dyn Rng64 = match racy_rng.as_mut() {
                        Some(wr) => wr,
                        None => {
                            stream = chunk_rng(engine_seed, r, chunk);
                            &mut stream
                        }
                    };
                    for _ in lo..hi {
                        let b = crng.range_usize(n);
                        // ORDERING: Relaxed — a commutative tally; the
                        // returned old value atomically elects exactly
                        // one first toucher per bin.
                        if counts[b].fetch_add(1, Ordering::Relaxed) == 0 {
                            touched.push(b);
                        }
                    }
                });
                bar.sync();
                // Phase B: each worker resolves the bins it owns. The
                // barrier above made every contact count visible.
                let mut placed = 0u64;
                for bin in touched.drain(..) {
                    // ORDERING: Relaxed — exclusive owner; the phase-A
                    // barrier settled the count, so unlocked loads and
                    // stores replace the (much costlier) locked RMWs.
                    let cnt = counts[bin].load(Ordering::Relaxed);
                    counts[bin].store(0, Ordering::Relaxed);
                    if cnt <= c {
                        // ORDERING: Relaxed — the owner is the only
                        // phase-B writer of this bin's load.
                        let l = loads[bin].load(Ordering::Relaxed);
                        loads[bin].store(l + cnt, Ordering::Relaxed);
                        placed += u64::from(cnt);
                    }
                }
                // ORDERING: Relaxed — accumulators the leader reads
                // after the end-of-round barrier. Accept messages are
                // one per placed ball.
                placed_round.fetch_add(placed, Ordering::Relaxed);
                messages.fetch_add(placed, Ordering::Relaxed);
            }
            bar.sync();
        }
    });

    assert!(
        !failed.into_inner(),
        "collision protocol failed to converge in {max_rounds} rounds"
    );
    if want_stages {
        replay_stages(stages, obs);
    }
    let messages = messages.into_inner();
    let rounds = rounds_out.into_inner();
    Outcome {
        protocol: name,
        n,
        m,
        total_samples: messages,
        max_samples_per_ball: if m > 0 { u64::from(rounds) } else { 0 },
        loads: unwrap_loads(loads).into(),
        scenario: Scenario::rounds(rounds, messages),
    }
}

// ---------------------------------------------------------------------
// Bounded load
// ---------------------------------------------------------------------

/// The faithful contact schedule `k_r = min(2^{r-1}, n)`.
fn contacts_for(round: u32, n: usize) -> u64 {
    1u64.checked_shl(round - 1)
        .map_or(n as u64, |k| k.min(n as u64))
}

/// The bounded-load three-phase bin lottery (both modes).
///
/// Phase A (over balls, relabelled `j ∈ 0..u`): every unplaced ball
/// draws its `k_r` contact entries `(bin, priority)` and submits the
/// packed key `(priority, j)` to the bin's lottery slot with
/// `fetch_min`. Entries across bins are disjoint and priorities are
/// iid, so after the barrier each touched bin's surviving key is a
/// uniform pick among its request entries — exactly the faithful
/// `rng.choose(requests)` law, independently per bin (ties: lower ball
/// id, a ~2⁻³² bias; a duplicate contact puts two entries of the same
/// ball in one bin, double-weighting it exactly like the faithful
/// list).
///
/// Phase B (over bins): each touched bin (`slot != EMPTY`) clears its
/// slot; if it is open (`load < cap`, frozen — loads are written only
/// in phase C) it counts one accept message and notifies its winning
/// ball through `accepted[ball].fetch_min(bin)` — the min over a
/// ball's accepting bins is the faithful "commit to the first
/// acceptance in ascending bin index" rule, and the accepts a ball
/// does *not* commit to are the faithful wasted accepts.
///
/// Phase C (over balls): a notified ball commits to `accepted[j]`,
/// clears the cell, and counts toward the round's placements.
///
/// Deterministic mode draws phase A from per-`(round, chunk)` streams
/// on a fixed chunk round-robin; every cross-thread update above is a
/// commutative `fetch_min`/`fetch_add`, so the outcome is thread-count
/// invariant. Racy mode draws from persistent per-worker streams over
/// first-come ticket chunks: which priorities each entry gets depends
/// on the claim schedule, so placements are contention-ordered and
/// reruns differ — while each round still implements the same
/// uniform-entry law (priorities stay iid uniform no matter which
/// worker draws them).
pub(super) fn bounded_load<R, O>(
    cap: u32,
    max_rounds: u32,
    name: String,
    cfg: &RunConfig,
    rng: &mut R,
    obs: &mut O,
) -> Result<Outcome, ProtocolError>
where
    R: Rng64 + ?Sized,
    O: Observer + ?Sized,
{
    let (n, m) = (cfg.n, cfg.m);
    assert!(n > 0, "need at least one bin");
    if m > u64::from(cap) * n as u64 {
        return Err(ProtocolError::InfeasibleCapacity {
            m,
            capacity: u64::from(cap) * n as u64,
        });
    }
    assert!(m <= u64::from(u32::MAX), "ball ids are u32");
    assert!(n <= u32::MAX as usize, "bin ids are u32 in lottery cells");
    let workers = cfg.threads.max(1);
    let det = !cfg.racy;
    let engine_seed = rng.next_u64();
    let want_stages = obs.wants_stage_ends();

    // Bin shards. ORDERING: Relaxed throughout — each phase either
    // only writes a shard or reads values settled by the previous
    // phase's barrier (module docs): `slot` takes commutative mins in
    // phase A and is cleared by its bin's exclusive phase-B sweeper;
    // `loads` is frozen in phases A/B and written in phase C.
    let loads: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let slot: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(EMPTY)).collect();
    // Ball shard: the lowest-indexed bin that accepted this ball this
    // round. ORDERING: Relaxed — phase-B commutative `fetch_min`,
    // phase-C exclusive read-and-clear.
    let accepted: Vec<AtomicU64> = (0..m as usize).map(|_| AtomicU64::new(EMPTY)).collect();

    // Control block. ORDERING: Relaxed throughout — leader-published
    // parameters and barrier-settled accumulators (module docs).
    let round = AtomicU32::new(0);
    let unplaced = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    // ORDERING: Relaxed throughout — same control-block contract.
    let failed = AtomicBool::new(false);
    let placed_round = AtomicU64::new(0);
    let messages = AtomicU64::new(0);
    // ORDERING: Relaxed throughout — same control-block contract.
    let rounds_out = AtomicU32::new(0);
    let max_contacts_out = AtomicU64::new(0);
    let ticket_a = AtomicUsize::new(0);
    // ORDERING: Relaxed throughout — same control-block contract.
    let ticket_b = AtomicUsize::new(0);
    let ticket_c = AtomicUsize::new(0);
    let stages: Stages = Mutex::new(Vec::new());

    let chunks_n = (n as u64).div_ceil(CHUNK);
    pool::scoped(workers, |w, bar| {
        let mut racy_rng = (!det).then(|| worker_rng(engine_seed, w));
        // Leader-only bookkeeping.
        let mut l_round = 0u32;
        let mut l_unplaced = m;
        let mut l_contacts_cum = 0u64;
        let mut l_max_contacts = 0u64;
        let mut l_started = false;
        loop {
            if w == 0 {
                if l_started {
                    // ORDERING: Relaxed — settled by the end-of-round
                    // barrier.
                    let pr = placed_round.swap(0, Ordering::Relaxed);
                    l_unplaced -= pr;
                    if pr > 0 {
                        // Any ball placed this round had sent the full
                        // cumulative contact count — the per-ball max.
                        l_max_contacts = l_contacts_cum;
                    }
                    if want_stages {
                        let snap = snapshot_loads(&loads);
                        stages.lock().expect("leader-only lock").push((
                            u64::from(l_round),
                            snap,
                            m - l_unplaced,
                        ));
                    }
                }
                l_started = true;
                if l_unplaced == 0 {
                    // ORDERING: Relaxed — published before the barrier.
                    rounds_out.store(l_round, Ordering::Relaxed);
                    max_contacts_out.store(l_max_contacts, Ordering::Relaxed);
                    done.store(true, Ordering::Relaxed);
                } else {
                    l_round += 1;
                    if l_round > max_rounds {
                        // ORDERING: Relaxed — failure flag published
                        // before the barrier; the caller panics after
                        // the workers join.
                        failed.store(true, Ordering::Relaxed);
                        done.store(true, Ordering::Relaxed);
                    } else {
                        let k = contacts_for(l_round, n);
                        l_contacts_cum += k;
                        // ORDERING: Relaxed — leader-only adds/stores
                        // in the serial section: k contact messages
                        // per unplaced ball, then round parameters.
                        messages.fetch_add(l_unplaced * k, Ordering::Relaxed);
                        round.store(l_round, Ordering::Relaxed);
                        unplaced.store(l_unplaced, Ordering::Relaxed);
                        // ORDERING: Relaxed — ticket resets, same
                        // publication.
                        ticket_a.store(0, Ordering::Relaxed);
                        ticket_b.store(0, Ordering::Relaxed);
                        ticket_c.store(0, Ordering::Relaxed);
                    }
                }
            }
            bar.sync();
            // ORDERING: Relaxed — parameters published before the
            // barrier above.
            if done.load(Ordering::Relaxed) {
                break;
            }
            // ORDERING: Relaxed — same pre-barrier publications.
            let r = round.load(Ordering::Relaxed);
            let u = unplaced.load(Ordering::Relaxed);
            let k = contacts_for(r, n);
            let chunks_u = u.div_ceil(CHUNK);
            // Phase A: submit every contact entry to its bin's lottery.
            claim_chunks(det, w, workers, chunks_u, &ticket_a, |chunk| {
                let (lo, hi) = chunk_range(chunk, u);
                let mut stream;
                let crng: &mut dyn Rng64 = match racy_rng.as_mut() {
                    Some(wr) => wr,
                    None => {
                        stream = chunk_rng(engine_seed, r, chunk);
                        &mut stream
                    }
                };
                for j in lo..hi {
                    let key_ball = ball32(j);
                    for _ in 0..k {
                        let b = crng.range_usize(n);
                        let prio = crng.next_u32();
                        // ORDERING: Relaxed — a commutative min; the
                        // surviving key is the entry lottery winner.
                        slot[b].fetch_min(pack(prio, key_ball), Ordering::Relaxed);
                    }
                }
            });
            bar.sync();
            // Phase B: sweep the bins, clear the lotteries, notify the
            // winners of open bins.
            let mut accepts = 0u64;
            claim_chunks(det, w, workers, chunks_n, &ticket_b, |chunk| {
                let (lo, hi) = chunk_range(chunk, n as u64);
                for b in lo as usize..hi as usize {
                    // ORDERING: Relaxed — this worker is bin b's
                    // exclusive phase-B sweeper; the phase-A barrier
                    // settled the lottery, so an unlocked load +
                    // sentinel store replaces a (much costlier) swap.
                    let key = slot[b].load(Ordering::Relaxed);
                    if key == EMPTY {
                        continue;
                    }
                    // ORDERING: Relaxed — exclusive sweeper, see above.
                    slot[b].store(EMPTY, Ordering::Relaxed);
                    // ORDERING: Relaxed — loads are frozen until
                    // phase C, so this is the round-start value.
                    if loads[b].load(Ordering::Relaxed) < cap {
                        accepts += 1;
                        let winner = lo32(key) as usize;
                        // ORDERING: Relaxed — commutative min across
                        // the ball's accepting bins: the smallest bin
                        // index wins the commit.
                        accepted[winner].fetch_min(b as u64, Ordering::Relaxed);
                    }
                }
            });
            // ORDERING: Relaxed — accept-message tally, read by the
            // caller after the scope joins.
            messages.fetch_add(accepts, Ordering::Relaxed);
            bar.sync();
            // Phase C: notified balls commit to their lowest-indexed
            // accepting bin.
            let mut placed = 0u64;
            claim_chunks(det, w, workers, chunks_u, &ticket_c, |chunk| {
                let (lo, hi) = chunk_range(chunk, u);
                for cell in &accepted[lo as usize..hi as usize] {
                    // ORDERING: Relaxed — the ball's exclusive phase-C
                    // cell (settled by the phase-B barrier); unlocked
                    // load + store instead of a swap.
                    let bin = cell.load(Ordering::Relaxed);
                    if bin == EMPTY {
                        continue;
                    }
                    // ORDERING: Relaxed — exclusive cell, see above.
                    cell.store(EMPTY, Ordering::Relaxed);
                    // ORDERING: Relaxed — commutative placement tally.
                    loads[bin as usize].fetch_add(1, Ordering::Relaxed);
                    placed += 1;
                }
            });
            // ORDERING: Relaxed — settled by the end-of-round barrier
            // below before the leader reads it.
            placed_round.fetch_add(placed, Ordering::Relaxed);
            bar.sync();
        }
    });

    if failed.into_inner() {
        return Err(ProtocolError::Unconverged {
            protocol: name,
            rounds: u64::from(max_rounds),
        });
    }
    if want_stages {
        replay_stages(stages, obs);
    }
    let messages = messages.into_inner();
    let rounds = rounds_out.into_inner();
    Ok(Outcome {
        protocol: name,
        n,
        m,
        total_samples: messages,
        max_samples_per_ball: max_contacts_out.into_inner(),
        loads: unwrap_loads(loads).into(),
        scenario: Scenario::rounds(rounds, messages),
    })
}

// ---------------------------------------------------------------------
// Parallel greedy
// ---------------------------------------------------------------------

/// The concurrent parallel-greedy driver, dispatching on `cfg.racy`.
/// Semantics mirror [`super::parallel_greedy::ParallelGreedy`]'s
/// faithful path: committed candidates drawn up front, negotiation
/// rounds where every unplaced ball asks its least-loaded candidate
/// (round-start loads, first minimum in candidate order) and each bin
/// admits a uniform ≤ `q` subset of its requesters, then a forced
/// final round against a load snapshot.
pub(super) fn parallel_greedy<R, O>(
    d: u32,
    total_rounds: u32,
    q: u32,
    name: String,
    cfg: &RunConfig,
    rng: &mut R,
    obs: &mut O,
) -> Outcome
where
    R: Rng64 + ?Sized,
    O: Observer + ?Sized,
{
    let (n, m) = (cfg.n, cfg.m);
    assert!(n > 0, "need at least one bin");
    assert!(m <= u64::from(u32::MAX), "ball ids are u32");
    assert!(
        n <= u32::MAX as usize,
        "bin ids are u32 in the candidate table"
    );
    let workers = cfg.threads.max(1);
    let det = !cfg.racy;
    let engine_seed = rng.next_u64();
    let want_stages = obs.wants_stage_ends();
    let d_us = d as usize;

    // Per-ball shards: committed candidates (ball-major), the round's
    // request target, and the placement flag.
    // ORDERING: Relaxed throughout — candidates are written only in
    // the prelude, targets only in a round's first (target) phase, and
    // the placement flag flips once; every cross-phase read is ordered
    // by a barrier (module docs).
    let candidates: Vec<AtomicU32> = (0..m as usize * d_us).map(|_| AtomicU32::new(0)).collect();
    let targets: Vec<AtomicU32> = (0..m as usize).map(|_| AtomicU32::new(0)).collect();
    let placed: Vec<AtomicBool> = (0..m as usize).map(|_| AtomicBool::new(false)).collect();

    // Bin shards: loads, plus the deterministic wave lottery slots or
    // the racy packed (round, admitted) cells.
    // ORDERING: Relaxed throughout (module docs).
    let loads: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let slot: Vec<AtomicU64> = if det {
        (0..n).map(|_| AtomicU64::new(EMPTY)).collect()
    } else {
        // ORDERING: Relaxed throughout; racy cells start at round 0.
        (0..n).map(|_| AtomicU64::new(pack(0, 0))).collect()
    };
    // Deterministic wave admission tallies (ORDERING: Relaxed —
    // barrier-settled), one per wave so no resets or extra barriers
    // are needed; all workers read a wave's tally after the admit
    // barrier to agree on early exit.
    let wave_placed: Vec<AtomicU64> = (0..q as usize).map(|_| AtomicU64::new(0)).collect();

    // Control block. ORDERING: Relaxed throughout (module docs).
    let round = AtomicU32::new(0);
    let forced = AtomicBool::new(false);
    let done = AtomicBool::new(false);
    // ORDERING: Relaxed throughout — same control-block contract.
    let placed_round = AtomicU64::new(0);
    let messages = AtomicU64::new(0);
    let rounds_out = AtomicU32::new(0);
    // ORDERING: Relaxed throughout — same control-block contract.
    let ticket_a = AtomicUsize::new(0);
    let ticket_b = AtomicUsize::new(0);
    let stages: Stages = Mutex::new(Vec::new());

    // The faithful tie-break: first minimum in candidate order.
    // ORDERING: Relaxed — candidates are frozen after the prelude and
    // loads are frozen during every target phase (loads are written
    // only in admit/commit phases, on the other side of a barrier),
    // so every load below reads round-start values.
    let best_candidate = |j: usize, first_round: bool| -> usize {
        let cs = &candidates[j * d_us..(j + 1) * d_us];
        let mut best = cs[0].load(Ordering::Relaxed) as usize;
        // Round 1 sees every load at zero, so the first-minimum
        // tie-break always resolves to the first candidate — skip the
        // `d` random load reads that otherwise dominate the sweep.
        if first_round {
            return best;
        }
        // ORDERING: Relaxed — the same frozen shards.
        let mut best_load = loads[best].load(Ordering::Relaxed);
        for cand in &cs[1..] {
            // ORDERING: Relaxed — the same frozen shards.
            let b = cand.load(Ordering::Relaxed) as usize;
            let l = loads[b].load(Ordering::Relaxed);
            if l < best_load {
                best = b;
                best_load = l;
            }
        }
        best
    };

    let chunks_m = m.div_ceil(CHUNK);
    let chunks_n = (n as u64).div_ceil(CHUNK);
    pool::scoped(workers, |w, bar| {
        let mut racy_rng = (!det).then(|| worker_rng(engine_seed, w));
        // Prelude: draw the committed candidates (round-0 streams in
        // deterministic mode).
        claim_chunks(det, w, workers, chunks_m, &ticket_a, |chunk| {
            let (lo, hi) = chunk_range(chunk, m);
            let mut stream;
            let crng: &mut dyn Rng64 = match racy_rng.as_mut() {
                Some(wr) => wr,
                None => {
                    stream = chunk_rng(engine_seed, 0, chunk);
                    &mut stream
                }
            };
            for j in lo..hi {
                for t in 0..d_us {
                    let b = crng.range_usize(n);
                    // ORDERING: Relaxed — prelude-only write, read
                    // after the barrier below.
                    candidates[j as usize * d_us + t].store(
                        u32::try_from(b).expect("bin ids fit u32 (n is asserted on entry)"),
                        Ordering::Relaxed,
                    );
                }
            }
        });
        // Quiesce the prelude before the leader resets the tickets.
        bar.sync();

        // Leader-only bookkeeping. `l_neg_left` counts the remaining
        // negotiation rounds (the faithful `for _ in 1..rounds` loop);
        // the final round is forced.
        let mut l_round = 0u32;
        let mut l_unplaced = m;
        let mut l_neg_left = total_rounds - 1;
        let mut l_forced = false;
        let mut l_started = false;
        loop {
            if w == 0 {
                if l_started {
                    if l_forced {
                        // The forced round placed everything.
                        l_unplaced = 0;
                    } else {
                        // ORDERING: Relaxed — settled by the
                        // end-of-round barrier.
                        let pr = placed_round.swap(0, Ordering::Relaxed);
                        l_unplaced -= pr;
                    }
                    if want_stages {
                        let snap = snapshot_loads(&loads);
                        stages.lock().expect("leader-only lock").push((
                            u64::from(l_round),
                            snap,
                            m - l_unplaced,
                        ));
                    }
                }
                l_started = true;
                if l_unplaced == 0 {
                    // ORDERING: Relaxed — published before the barrier.
                    rounds_out.store(l_round, Ordering::Relaxed);
                    done.store(true, Ordering::Relaxed);
                } else {
                    l_round += 1;
                    if l_neg_left > 0 {
                        l_neg_left -= 1;
                        l_forced = false;
                        // One request message per unplaced ball;
                        // accepts are counted by the admitting workers.
                        // ORDERING: Relaxed — leader-only serial adds.
                        messages.fetch_add(l_unplaced, Ordering::Relaxed);
                    } else {
                        l_forced = true;
                        // ORDERING: Relaxed — leader-only serial add:
                        // request + forced accept per remaining ball.
                        messages.fetch_add(2 * l_unplaced, Ordering::Relaxed);
                    }
                    // ORDERING: Relaxed — round parameters and wave
                    // tallies, published before the barrier.
                    round.store(l_round, Ordering::Relaxed);
                    forced.store(l_forced, Ordering::Relaxed);
                    for wp in &wave_placed {
                        // ORDERING: Relaxed — same publication.
                        wp.store(0, Ordering::Relaxed);
                    }
                    // ORDERING: Relaxed — ticket resets, same
                    // publication.
                    ticket_a.store(0, Ordering::Relaxed);
                    ticket_b.store(0, Ordering::Relaxed);
                }
            }
            bar.sync();
            // ORDERING: Relaxed — parameters published before the
            // barrier above.
            if done.load(Ordering::Relaxed) {
                break;
            }
            // ORDERING: Relaxed — same pre-barrier publications.
            let r = round.load(Ordering::Relaxed);
            let fb = forced.load(Ordering::Relaxed);
            if fb {
                // Forced round, phase 1: pick targets against the
                // frozen loads — the faithful snapshot semantics fall
                // out of the phase split (nobody writes loads here).
                claim_chunks(det, w, workers, chunks_m, &ticket_a, |chunk| {
                    let (lo, hi) = chunk_range(chunk, m);
                    for j in lo..hi {
                        let j_us = j as usize;
                        // ORDERING: Relaxed — flags flipped in earlier
                        // rounds, ordered by their barriers.
                        if placed[j_us].load(Ordering::Relaxed) {
                            continue;
                        }
                        let b = best_candidate(j_us, r == 1);
                        // ORDERING: Relaxed — read back below, after
                        // the phase barrier.
                        targets[j_us].store(
                            u32::try_from(b).expect("bin ids fit u32 (n is asserted on entry)"),
                            Ordering::Relaxed,
                        );
                    }
                });
                bar.sync();
                // Forced round, phase 2: commutative unconditional
                // placements.
                claim_chunks(det, w, workers, chunks_m, &ticket_b, |chunk| {
                    let (lo, hi) = chunk_range(chunk, m);
                    for j in lo..hi {
                        let j_us = j as usize;
                        // ORDERING: Relaxed — see the target phase; the
                        // load add is a commutative tally.
                        if placed[j_us].load(Ordering::Relaxed) {
                            continue;
                        }
                        // ORDERING: Relaxed — same contract.
                        let b = targets[j_us].load(Ordering::Relaxed) as usize;
                        loads[b].fetch_add(1, Ordering::Relaxed);
                    }
                });
            } else if det {
                // Deterministic negotiation round: one fixed 32-bit
                // priority per ball per round (replayed from the
                // chunk stream), admitted through `q` lottery waves.
                // Wave w admits each contested bin's lowest-priority
                // pending requester; over waves that is a uniform
                // without-replacement subset — the faithful
                // shuffle-take(q) law. Every ball draws its priority
                // in every sweep/admit pass (placed or not) to keep
                // the replay streams aligned.
                for (wave, wave_tally) in wave_placed.iter().enumerate().take(q as usize) {
                    // Sweep: pending requesters submit to their target.
                    claim_chunks(true, w, workers, chunks_m, &ticket_a, |chunk| {
                        let (lo, hi) = chunk_range(chunk, m);
                        let mut stream = chunk_rng(engine_seed, r, chunk);
                        for j in lo..hi {
                            let prio = stream.next_u32();
                            let j_us = j as usize;
                            // ORDERING: Relaxed — placement flags from
                            // earlier waves/rounds are barrier-ordered.
                            if placed[j_us].load(Ordering::Relaxed) {
                                continue;
                            }
                            if wave == 0 {
                                let b = u32::try_from(best_candidate(j_us, r == 1))
                                    .expect("bin ids fit u32 (n is asserted on entry)");
                                // ORDERING: Relaxed — the round's
                                // target, fixed in wave 0 and read in
                                // later phases past their barriers.
                                targets[j_us].store(b, Ordering::Relaxed);
                            }
                            // ORDERING: Relaxed — the wave-0 target.
                            let t = targets[j_us].load(Ordering::Relaxed) as usize;
                            // Slot keys only decrease within a wave, so
                            // a pre-read that already beats this key
                            // lets us skip the locked RMW: once the
                            // cell is ≤ key it stays ≤ key.
                            let key = pack(prio, ball32(j));
                            // ORDERING: Relaxed — monotone pre-check,
                            // see above; the fetch_min is the
                            // commutative lottery min.
                            if slot[t].load(Ordering::Relaxed) > key {
                                slot[t].fetch_min(key, Ordering::Relaxed);
                            }
                        }
                    });
                    bar.sync();
                    // Admit: sweep the bins; a contested bin's
                    // surviving key names the wave winner, the sweeper
                    // places it and clears the slot for the next wave.
                    // A ball submits to exactly one target per round,
                    // so it wins at most one bin — the sweeper is
                    // exclusive on the winner's flag too, and the
                    // whole pass runs on unlocked sequential loads and
                    // stores (no priority replay, no locked RMWs).
                    let mut placed_acc = 0u64;
                    claim_chunks(true, w, workers, chunks_n, &ticket_b, |chunk| {
                        let (lo, hi) = chunk_range(chunk, n as u64);
                        for t in lo as usize..hi as usize {
                            // ORDERING: Relaxed — this worker is bin
                            // t's exclusive admit sweeper; the sweep
                            // barrier settled the lottery.
                            let key = slot[t].load(Ordering::Relaxed);
                            if key == EMPTY {
                                continue;
                            }
                            // ORDERING: Relaxed — exclusive sweeper,
                            // see above; the flag's only writer this
                            // phase is the winner's unique bin.
                            slot[t].store(EMPTY, Ordering::Relaxed);
                            let l = loads[t].load(Ordering::Relaxed);
                            loads[t].store(l + 1, Ordering::Relaxed);
                            // ORDERING: Relaxed — same exclusivity.
                            placed[lo32(key) as usize].store(true, Ordering::Relaxed);
                            placed_acc += 1;
                        }
                    });
                    // ORDERING: Relaxed — tallies read by every worker
                    // after the admit barrier below.
                    wave_tally.fetch_add(placed_acc, Ordering::Relaxed);
                    placed_round.fetch_add(placed_acc, Ordering::Relaxed);
                    messages.fetch_add(placed_acc, Ordering::Relaxed);
                    bar.sync();
                    // ORDERING: Relaxed — every worker reads the same
                    // settled tally, so all agree on the early exit
                    // (an empty wave means no pending requesters
                    // remain anywhere).
                    if wave_tally.load(Ordering::Relaxed) == 0 {
                        break;
                    }
                }
            } else {
                // Racy negotiation round, phase 1: targets against
                // frozen loads (no randomness — candidate order breaks
                // ties).
                claim_chunks(false, w, workers, chunks_m, &ticket_a, |chunk| {
                    let (lo, hi) = chunk_range(chunk, m);
                    for j in lo..hi {
                        let j_us = j as usize;
                        // ORDERING: Relaxed — barrier-ordered flags.
                        if placed[j_us].load(Ordering::Relaxed) {
                            continue;
                        }
                        let b = best_candidate(j_us, r == 1);
                        // ORDERING: Relaxed — read after the phase
                        // barrier.
                        targets[j_us].store(
                            u32::try_from(b).expect("bin ids fit u32 (n is asserted on entry)"),
                            Ordering::Relaxed,
                        );
                    }
                });
                bar.sync();
                // Racy phase 2: first-come admission through a packed
                // (round, admitted-count) cell — at most `q` per bin,
                // ordered by CAS contention.
                let mut placed_acc = 0u64;
                claim_chunks(false, w, workers, chunks_m, &ticket_b, |chunk| {
                    let (lo, hi) = chunk_range(chunk, m);
                    for j in lo..hi {
                        let j_us = j as usize;
                        // ORDERING: Relaxed — barrier-ordered flags.
                        if placed[j_us].load(Ordering::Relaxed) {
                            continue;
                        }
                        // ORDERING: Relaxed — the phase-1 target.
                        let t = targets[j_us].load(Ordering::Relaxed) as usize;
                        // RETRY: terminates because the cell's
                        // admitted count for this round only grows;
                        // once it reaches `q` the closure returns None
                        // and the loop exits, and before that each
                        // failed CAS re-reads a strictly larger count,
                        // so attempts are bounded by `q` plus the
                        // concurrent claimants on this bin.
                        // ORDERING: Relaxed — the admission claim
                        // publishes nothing but itself. A stale round
                        // in the cell means zero admissions so far, so
                        // cells never need clearing between rounds.
                        let admit =
                            slot[t].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                                let (claim_round, count) = (hi32(s), lo32(s));
                                let count = if claim_round == r { count } else { 0 };
                                (count < q).then(|| pack(r, count + 1))
                            });
                        if admit.is_ok() {
                            // ORDERING: Relaxed — commutative tally
                            // plus this ball's own flag.
                            loads[t].fetch_add(1, Ordering::Relaxed);
                            placed[j_us].store(true, Ordering::Relaxed);
                            placed_acc += 1;
                        }
                    }
                });
                // ORDERING: Relaxed — accumulators settled by the
                // end-of-round barrier.
                placed_round.fetch_add(placed_acc, Ordering::Relaxed);
                messages.fetch_add(placed_acc, Ordering::Relaxed);
            }
            bar.sync();
        }
    });

    if want_stages {
        replay_stages(stages, obs);
    }
    let messages = messages.into_inner();
    let rounds = rounds_out.into_inner();
    Outcome {
        protocol: name,
        n,
        m,
        total_samples: messages,
        max_samples_per_ball: if m > 0 { u64::from(rounds) } else { 0 },
        loads: unwrap_loads(loads).into(),
        scenario: Scenario::rounds(rounds, messages),
    }
}

#[cfg(test)]
mod tests {
    use super::super::{BoundedLoad, Collision, ParallelGreedy};
    use bib_core::protocol::{Engine, NullObserver, Protocol, RunConfig, StageTrace};
    use bib_rng::SeedSequence;

    fn cfg(n: usize, m: u64, threads: usize, racy: bool) -> RunConfig {
        RunConfig::new(n, m)
            .with_engine(Engine::Concurrent)
            .with_threads(threads)
            .with_racy(racy)
    }

    #[test]
    fn collision_smoke_all_modes() {
        for (threads, racy) in [(1, false), (3, false), (3, true)] {
            let mut rng = SeedSequence::new(11).rng();
            let out = Collision::new(1).allocate(
                &cfg(512, 512, threads, racy),
                &mut rng,
                &mut NullObserver,
            );
            out.validate();
            assert!(out.rounds() >= 1);
            assert_eq!(
                out.loads
                    .as_slice()
                    .iter()
                    .map(|&l| u64::from(l))
                    .sum::<u64>(),
                512
            );
        }
    }

    #[test]
    fn bounded_load_smoke_and_capacity() {
        for (threads, racy) in [(1, false), (4, false), (4, true)] {
            let mut rng = SeedSequence::new(12).rng();
            let out = BoundedLoad::new(2).allocate(
                &cfg(128, 256, threads, racy),
                &mut rng,
                &mut NullObserver,
            );
            out.validate();
            // m = cap·n: every slot must fill.
            assert_eq!(out.loads, vec![2u32; 128]);
            assert!(out.max_samples_per_ball >= 1);
        }
    }

    #[test]
    fn greedy_smoke_places_everything() {
        for (threads, racy) in [(1, false), (4, false), (4, true)] {
            let mut rng = SeedSequence::new(13).rng();
            let out = ParallelGreedy::new(2, 3, 1).allocate(
                &cfg(256, 256, threads, racy),
                &mut rng,
                &mut NullObserver,
            );
            out.validate();
            assert!(out.rounds() <= 3);
            assert_eq!(
                out.loads
                    .as_slice()
                    .iter()
                    .map(|&l| u64::from(l))
                    .sum::<u64>(),
                256
            );
        }
    }

    #[test]
    fn zero_balls_all_drivers() {
        let c = cfg(8, 0, 4, false);
        let mut rng = SeedSequence::new(14).rng();
        for out in [
            Collision::new(1).allocate(&c, &mut rng, &mut NullObserver),
            BoundedLoad::new(2).allocate(&c, &mut rng, &mut NullObserver),
            ParallelGreedy::new(2, 3, 1).allocate(&c, &mut rng, &mut NullObserver),
        ] {
            out.validate();
            assert_eq!(out.rounds(), 0);
            assert_eq!(out.messages(), 0);
        }
    }

    #[test]
    fn stage_trace_fires_once_per_round() {
        let c = cfg(128, 128, 3, false);
        let mut rng = SeedSequence::new(15).rng();
        let mut trace = StageTrace::new();
        let out = BoundedLoad::new(2).allocate(&c, &mut rng, &mut trace);
        out.validate();
        assert_eq!(trace.stages.len(), out.rounds() as usize);
        assert_eq!(trace.stages, (1..=out.rounds() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn collision_stall_fallback_fires_concurrently() {
        // n = 1, m = 2, c = 1: both balls collide forever until the
        // stall fallback places them one-choice.
        let mut rng = SeedSequence::new(16).rng();
        let out = Collision::new(1).allocate(&cfg(1, 2, 2, false), &mut rng, &mut NullObserver);
        out.validate();
        assert_eq!(out.loads, vec![2]);
        assert_eq!(
            u64::from(out.rounds()),
            u64::from(Collision::STALL_LIMIT) + 1
        );
    }
}
