//! N1 suppressed fixture.
pub fn to_load(count: u64) -> u32 {
    // lint:allow(N1): count <= n <= u32::MAX by the constructor contract
    count as u32
}
