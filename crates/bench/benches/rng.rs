//! Criterion: generator and sampler throughput.
//!
//! Every protocol sample is one `range_u64` call; the simulator's
//! ceiling is therefore the RNG's. This bench compares the three
//! generator families and the distribution samplers the engines use.

use bib_rng::dist::{BinomialSampler, Distribution, GeometricSampler, PoissonSampler, Zipf};
use bib_rng::{Pcg32, Rng64, RngExt, SplitMix64, Xoshiro256PlusPlus, Xoshiro256StarStar};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng/next_u64");
    group.throughput(Throughput::Elements(1024));
    macro_rules! bench_gen {
        ($name:literal, $g:expr) => {
            group.bench_function($name, |b| {
                let mut g = $g;
                b.iter(|| {
                    let mut acc = 0u64;
                    for _ in 0..1024 {
                        acc = acc.wrapping_add(g.next_u64());
                    }
                    acc
                })
            });
        };
    }
    bench_gen!("splitmix64", SplitMix64::new(1));
    bench_gen!("xoshiro256++", Xoshiro256PlusPlus::seed_from_u64(1));
    bench_gen!("xoshiro256**", Xoshiro256StarStar::seed_from_u64(1));
    bench_gen!("pcg32", Pcg32::new(1, 1));
    group.finish();

    let mut group = c.benchmark_group("rng/range_u64");
    group.throughput(Throughput::Elements(1024));
    for n in [10u64, 10_000, 1 << 40] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut g = Xoshiro256PlusPlus::seed_from_u64(1);
            b.iter(|| {
                let mut acc = 0u64;
                for _ in 0..1024 {
                    acc = acc.wrapping_add(g.range_u64(n));
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng/dist");
    group.throughput(Throughput::Elements(1024));
    macro_rules! bench_dist {
        ($name:expr, $d:expr) => {
            group.bench_function($name, |b| {
                let d = $d;
                let mut g = Xoshiro256PlusPlus::seed_from_u64(1);
                b.iter(|| {
                    let mut acc = 0u64;
                    for _ in 0..1024 {
                        acc = acc.wrapping_add(d.sample(&mut g) as u64);
                    }
                    acc
                })
            });
        };
    }
    bench_dist!("geometric(0.1)", GeometricSampler::new(0.1));
    bench_dist!("poisson(1)", PoissonSampler::new(1.0));
    bench_dist!("poisson(100)", PoissonSampler::new(100.0));
    bench_dist!("binomial(1000,0.01)", BinomialSampler::new(1000, 0.01));
    bench_dist!("binomial(1000,0.5)", BinomialSampler::new(1000, 0.5));
    bench_dist!("zipf(1000,1.0)", Zipf::new(1000, 1.0));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_generators, bench_distributions
}
criterion_main!(benches);
