//! Parallel substrate and parallel allocation protocols.
//!
//! Two distinct kinds of "parallel" live here, and they must not be
//! confused:
//!
//! 1. **Parallel execution of independent simulations** ([`executor`],
//!    [`replicate`]). The paper's Figure 3 averages over 100 runs; the
//!    executor fans replicates out over OS threads while the seed
//!    discipline of `bib-core::run` keeps every replicate's stream
//!    independent of scheduling, so results are bit-identical whether run
//!    on 1 thread or 64.
//! 2. **Parallel allocation *protocols*** ([`protocols`]): round-based
//!    processes in which all unplaced balls act simultaneously — the
//!    Adler et al. collision protocol and a Lenzen–Wattenhofer-style
//!    bounded-load protocol, the related work the paper's Table 1
//!    positions against. Since the scenario-layer refactor these are
//!    ordinary `bib_core` [`Protocol`](bib_core::protocol::Protocol)s
//!    returning the unified outcome record (rounds and messages live in
//!    `Outcome::scenario`), so [`replicate_outcomes`] replicates them
//!    exactly like the sequential schemes.
//!
//! The executor is deliberately small (scoped threads + an atomic work
//! index + a crossbeam channel) rather than a dependency on a full
//! work-stealing runtime: the workload is embarrassingly parallel
//! batches of equal-cost tasks, which self-scheduling handles optimally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod protocols;
pub mod replicate;
pub mod stream;

pub use executor::{available_threads, par_map};
pub use replicate::{replicate_outcomes, ReplicateSpec};
pub use stream::serve_concurrent;
