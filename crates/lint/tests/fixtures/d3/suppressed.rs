//! D3 suppressed fixture.
pub fn roll() -> u64 {
    // lint:allow(D3): interactive demo binary, reproducibility not required
    let mut rng = thread_rng();
    rng.next_u64()
}
