//! Criterion: wall-clock throughput of every sequential protocol at a
//! fixed configuration (n = 4096, ϕ = 16).
//!
//! This is the engineering complement to the paper's *sample-count*
//! accounting: sample-optimal protocols should also be wall-clock fast
//! here, since the simulator does O(1) work per sample.

use bib_core::prelude::*;
use bib_core::protocols::table1_suite;
use bib_rng::SeedSequence;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn bench_protocols(c: &mut Criterion) {
    let n = 4096usize;
    let m = 16 * n as u64;
    let cfg = RunConfig::new(n, m).with_engine(Engine::Jump);
    let mut group = c.benchmark_group("protocols");
    group.throughput(Throughput::Elements(m));
    for proto in table1_suite() {
        group.bench_with_input(BenchmarkId::from_parameter(proto.name()), &cfg, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SeedSequence::new(seed).rng();
                proto.allocate(cfg, &mut rng, &mut NullObserver)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_protocols
}
criterion_main!(benches);
