//! D2 clean fixture: BTreeMap iterates in key order.
use std::collections::BTreeMap;

pub fn tally(keys: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
