//! The occupancy-histogram engine ([`Engine::Histogram`]).
//!
//! Every protocol this engine accepts is *symmetric*: bins with equal
//! load are exchangeable, so the load vector carries no information
//! beyond its histogram. The engine therefore collapses the bin
//! dimension entirely — state is `counts[ℓ] = #bins with load ℓ` — and
//! the per-round work drops from `O(n)` (the level-batched engine's
//! open-bin list) to `O(#distinct loads)`, which the paper's smoothness
//! results keep at `O(log n)`. On the heavy regimes of Lemma 4.2 and
//! Corollary 3.5 (`m = n²` and beyond) the hot path becomes independent
//! of `n`.
//!
//! # How a round works
//!
//! For threshold-style rules (uniform over bins with load `< t`) a
//! *round* throws all `left` remaining balls at the open bins frozen at
//! round start — exactly the level-batched argument: in the faithful
//! sample stream these are the next `left` hits on the round-start open
//! set, hits beyond a bin's remaining capacity are rejections, and the
//! rejected overflow re-enters the next round. The difference is where
//! the hits land:
//!
//! 1. the round's hits split over the occupancy *classes* with a chain
//!    of conditional binomials (one draw per distinct load, not per
//!    bin);
//! 2. within a class of `c` exchangeable bins receiving `h` hits, the
//!    per-bin hit multiplicities are resolved by `scatter_class`:
//!    exactly for small classes (`c ≤ 64`: per-bin binomial chain) and
//!    small intakes (`h ≤ 64`: per-hit collision walk), and for large
//!    classes by *occupancy-cell sampling* — the number of bins with
//!    exactly `j` hits is drawn as `Binomial(c_rem, pmf_j/tail_j)` of
//!    the exact `Bin(h, 1/c)` marginal (an exact multinomial over that
//!    marginal), followed by a proportional single-level repair of the
//!    sum drift so mass conservation and the capacity bound hold
//!    surely.
//!
//! Once fewer than a small cutoff of balls remain, the tail runs the
//! *exact* collapsed Markov chain, one ball at a time: pick a class with
//! probability proportional to its open-bin count, move one bin up a
//! level.
//!
//! `greedy[d]` needs no rounds at all: order the bins by load and the
//! least loaded of `d` uniform samples is the class containing the
//! minimum of `d` uniform *ranks* — an exact `O(#levels)` per-ball chain
//! that finally makes `greedy` runnable at `m = n²` scale. `one-choice`
//! is the `t = ∞` threshold rule (no bin ever closes, a single round
//! places everything).
//!
//! # What is and is not preserved
//!
//! *Final loads*: exact in distribution for `greedy[d]` at every size,
//! for every per-ball tail, and for every scatter below the exact-path
//! thresholds; the large-class cell sampling and the wide conditional
//! splits (rounded-normal above a variance floor) are moment-exact
//! approximations — expected cell counts sit at their exact marginals,
//! mass conservation and the `⌈m/n⌉+1` capacity bound hold surely —
//! whose residual error the chi-square suite in
//! `tests/histogram_equivalence.rs` bounds against the faithful engine.
//! *Bin identities*: synthetic — and **lazy**: a no-observer run
//! returns the histogram itself plus a reconstruction seed
//! ([`crate::loads::Loads`]), and a concrete vector is only built if a
//! caller demands per-bin loads (uniform seeded assignment; the
//! faithful law is exchangeable, so the reconstructed vector has the
//! correct joint distribution to the extent the histogram does). Runs
//! with a stage-trace observer materialize eagerly through one seeded
//! permutation so bin identities stay consistent across the trace.
//! *Total samples*: a
//! CLT-faithful negative-binomial draw per round, exact geometrics on
//! the tail, exactly `d·m` / `m` for `greedy[d]` / `one-choice`.
//! *Per-ball events*: `Observer::on_ball` never fires; stage traces fire
//! exactly when the observer wants them (segments cap at stage
//! boundaries, like the level-batched driver).

use crate::level_batched::{BatchStats, ThresholdSchedule};
use crate::protocol::{Observer, Outcome, RunConfig};
use crate::scenario::Scenario;
use bib_rng::dist::{BinomialSampler, Distribution, GeometricSampler};
use bib_rng::{Rng64, RngExt, SeedSequence, SplitMix64};

/// Below this many remaining balls a batched round stops paying for its
/// fixed `O(#levels)` cost and the exact per-ball tail takes over.
const ROUND_CUTOFF: u64 = 32;

/// Multiplicity groups of at most this many bins are assigned to their
/// levels one bin at a time (exact sequential hypergeometric); larger
/// groups run the level chain, whose draws amortise over the group.
const PER_HIT_SPLIT: u64 = 8;

/// Classes with at most this many bins scatter their hits with an exact
/// per-bin binomial chain, so small runs never touch the approximate
/// cell sampling (the small-case equivalence tests rely on this).
const EXACT_BINS: u64 = 64;

/// Intakes of at most this many hits scatter with an exact per-hit
/// collision walk when the class is small; for large classes the
/// occupancy-cell walk is cheaper once the intake passes a few hits, so
/// the per-hit path only covers intakes short enough to beat it.
const EXACT_HITS: u64 = 64;

/// Conditional-split binomials with variance `n·p·(1−p)` at or above
/// this switch to a rounded-normal draw (mean exact, distributional
/// error `O(1/√var)`, bias-free — validated by the chi-square suite),
/// capping the `O(√var)` cost of the mode-centred inversion on the
/// per-stage hot path.
const SPLIT_NORMAL_VAR: f64 = 4.0;

/// Exact-summation ceiling for the negative-binomial allocation-time
/// draw of a round; larger rounds use the CLT limit. Lower than the
/// level-batched engine's ceiling because this engine runs several
/// small rounds per adaptive stage and their geometric sums would
/// dominate the collapsed hot path.
const SAMPLES_EXACT_CUTOFF: u64 = 32;

/// The occupancy histogram: `count(ℓ)` bins currently hold exactly `ℓ`
/// balls. Loads only grow, so the live span `[min_load, max_load]` only
/// moves up; storage is a dense vector over the span with a sliding
/// base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyHistogram {
    /// `counts[i]` = number of bins with load `base + i`.
    counts: Vec<u64>,
    base: u32,
    n: u64,
}

impl OccupancyHistogram {
    /// `n` empty bins; panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "OccupancyHistogram: need at least one bin");
        Self {
            counts: vec![n as u64],
            base: 0,
            n: n as u64,
        }
    }

    /// A histogram holding zero bins — the birth state of the
    /// streaming driver's drained/dead shelves, which bins enter and
    /// leave through [`OccupancyHistogram::add_bins`] /
    /// [`OccupancyHistogram::remove_bins`]. Span queries
    /// (`min_load`/`max_load`) require at least one bin; callers guard
    /// on [`OccupancyHistogram::n`].
    pub fn empty() -> Self {
        Self {
            counts: Vec::new(),
            base: 0,
            n: 0,
        }
    }

    /// Number of bins.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Adds `count` bins holding exactly `load` balls each — the
    /// re-entry half of moving bins between health classes (fault
    /// recovery). Grows the span in either direction as needed.
    pub fn add_bins(&mut self, load: u32, count: u64) {
        if count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.base = load;
            self.counts.push(0);
        } else if load < self.base {
            let grow = (self.base - load) as usize;
            self.counts.splice(0..0, std::iter::repeat_n(0, grow));
            self.base = load;
        } else if (load - self.base) as usize >= self.counts.len() {
            self.counts.resize((load - self.base) as usize + 1, 0);
        }
        self.counts[(load - self.base) as usize] += count;
        self.n += count;
    }

    /// Removes `count` bins holding exactly `load` balls each — the
    /// extraction half of moving bins between health classes (crash,
    /// drain). Panics if fewer than `count` bins hold `load`.
    pub fn remove_bins(&mut self, load: u32, count: u64) {
        if count == 0 {
            return;
        }
        assert!(
            self.count(load) >= count,
            "remove_bins: class {load} underflow"
        );
        self.counts[(load - self.base) as usize] -= count;
        self.n -= count;
    }

    /// Number of bins with load exactly `l`.
    pub fn count(&self, l: u32) -> u64 {
        if l < self.base {
            return 0;
        }
        self.counts
            .get((l - self.base) as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Smallest load with a non-zero count.
    pub fn min_load(&self) -> u32 {
        let lead = self.counts.iter().take_while(|&&c| c == 0).count();
        self.base + lead as u32
    }

    /// Largest load with a non-zero count.
    pub fn max_load(&self) -> u32 {
        let trail = self.counts.iter().rev().take_while(|&&c| c == 0).count();
        self.base + (self.counts.len() - trail) as u32 - 1
    }

    /// Number of bins with load strictly below `t` (`None` = all bins
    /// are always open).
    pub fn open_bins(&self, t: Option<u32>) -> u64 {
        match t {
            None => self.n,
            Some(t) => {
                if t <= self.base {
                    return 0;
                }
                let hi = ((t - self.base) as usize).min(self.counts.len());
                self.counts[..hi].iter().sum()
            }
        }
    }

    /// Total remaining capacity below `t`: `Σ_{ℓ<t} (t−ℓ)·count(ℓ)`.
    pub fn capacity_below(&self, t: u32) -> u64 {
        if t <= self.base {
            return 0;
        }
        let hi = ((t - self.base) as usize).min(self.counts.len());
        self.counts[..hi]
            .iter()
            .enumerate()
            .map(|(i, &c)| (t - self.base - i as u32) as u64 * c)
            .sum()
    }

    /// Moves `bins` bins from load `l` up `levels` levels. A no-op when
    /// either is zero.
    pub fn promote(&mut self, l: u32, bins: u64, levels: u32) {
        if bins == 0 || levels == 0 {
            return;
        }
        let i = (l - self.base) as usize;
        debug_assert!(self.counts[i] >= bins, "promote: class {l} underflow");
        self.counts[i] -= bins;
        let target_load = l + levels;
        if (target_load - self.base) as usize >= self.counts.len() {
            // Slide the base past the (now possibly empty) low end
            // before growing, so the vector tracks the live span.
            let lead = self.counts.iter().take_while(|&&c| c == 0).count();
            self.counts.drain(..lead);
            self.base += lead as u32;
            if self.counts.is_empty() {
                // Everything was in class `l`: restart the span at the
                // target (the single-bin long-jump case).
                self.base = target_load;
            }
            self.counts
                .resize((target_load - self.base) as usize + 1, 0);
        }
        self.counts[(target_load - self.base) as usize] += bins;
    }

    /// Moves `bins` bins from load `l` *down* `levels` levels — the
    /// departure primitive of the streaming driver, the exact inverse
    /// of [`OccupancyHistogram::promote`]. A no-op when either count is
    /// zero; panics (in debug) on class underflow and always when the
    /// target load would go below zero.
    ///
    /// Unlike the batch engines, a churning system's span moves in both
    /// directions, so the base can slide *down*: when the target load
    /// falls below the current base the vector grows at the front (and
    /// the trailing dead span is trimmed opportunistically, keeping
    /// storage proportional to the live span).
    pub fn demote(&mut self, l: u32, bins: u64, levels: u32) {
        if bins == 0 || levels == 0 {
            return;
        }
        assert!(l >= levels, "demote: load {l} below {levels} levels");
        let i = (l - self.base) as usize;
        debug_assert!(self.counts[i] >= bins, "demote: class {l} underflow");
        self.counts[i] -= bins;
        let target_load = l - levels;
        if target_load < self.base {
            // Trim the (now possibly empty) high end before growing at
            // the front, so the vector tracks the live span.
            let trail = self.counts.iter().rev().take_while(|&&c| c == 0).count();
            self.counts.truncate(self.counts.len() - trail);
            let grow = (self.base - target_load) as usize;
            self.counts.splice(0..0, std::iter::repeat_n(0, grow));
            self.base = target_load;
        }
        self.counts[(target_load - self.base) as usize] += bins;
    }

    /// The live occupancy classes in ascending load order: `(load,
    /// count)` pairs with `count > 0`. The span is `O(#distinct loads)`,
    /// so callers snapshotting the classes (the round engines, the
    /// weighted engine) pay nothing for the collapsed state.
    pub fn levels(&self) -> impl Iterator<Item = (u32, u64)> + Clone + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(move |(i, &c)| (self.base + i as u32, c))
    }

    /// Assigns the histogram's loads to bin indices uniformly at random
    /// — the same law as [`random_permutation`] + [`materialize`] but
    /// cache-friendly (no `O(n)` random-access scatter). The parallel
    /// round engines use this for their final reconstruction, where the
    /// `O(n)` output pass is the whole residual cost at `m = n`.
    ///
    /// Small outputs (`n ≤ 4096`) run an *exact* sequential
    /// without-replacement class pick per bin. Large outputs are built
    /// in blocks of 1024: each block draws its class composition with
    /// the [`hypergeometric`] chain (exact below the moment-matched
    /// switch — the same approximation family as the engines' level
    /// splits) and arranges it with an in-block Fisher–Yates whose index
    /// draws come from exact 16-bit Lemire lanes, four per `u64` —
    /// class totals and mass conservation hold surely, and the per-bin
    /// cost is a fraction of a full-width draw.
    pub fn shuffled_loads<R: Rng64 + ?Sized>(&self, rng: &mut R) -> Vec<u32> {
        const BLOCK: u64 = 1024;
        let mut classes: Vec<(u32, u64)> = self.levels().collect();
        if classes.len() == 1 {
            return vec![classes[0].0; self.n as usize];
        }
        let n = self.n;
        if n <= 4 * BLOCK {
            // Exact sequential conditional picks, classes descending by
            // count so the CDF walk terminates early.
            let mut loads: Vec<u32> = Vec::with_capacity(n as usize);
            classes.sort_unstable_by_key(|&(_, c)| std::cmp::Reverse(c));
            let mut rem = n;
            for _ in 0..n {
                let mut r = rng.range_u64(rem);
                for &mut (l, ref mut c) in classes.iter_mut() {
                    if r < *c {
                        loads.push(l);
                        *c -= 1;
                        break;
                    }
                    r -= *c;
                }
                rem -= 1;
            }
            debug_assert_eq!(loads.len() as u64, n);
            return loads;
        }

        let shuffler = BlockShuffler::new(BLOCK as usize);
        let mut loads = vec![0u32; n as usize];
        let mut remaining = n;
        let mut offset = 0usize;
        let mut runs: Vec<(u32, u64)> = Vec::with_capacity(classes.len());
        while remaining > 0 {
            let b = BLOCK.min(remaining);
            runs.clear();
            block_composition(&mut classes, remaining, b, rng, |_, l, t| runs.push((l, t)));
            // Arrange the composition's runs in one fused pass.
            let mut stream = runs
                .iter()
                .flat_map(|&(l, t)| std::iter::repeat_n(l, t as usize));
            shuffler.arrange(
                &mut loads[offset..offset + b as usize],
                || stream.next().expect("run stream exhausted early"),
                rng,
            );
            offset += b as usize;
            remaining -= b;
        }
        debug_assert_eq!(offset as u64, n);
        loads
    }

    /// Builds the histogram of an existing load vector (one counting
    /// pass; storage is the live span, not the max load). Panics on an
    /// empty slice — a histogram needs at least one bin.
    pub fn from_loads(loads: &[u32]) -> Self {
        assert!(!loads.is_empty(), "OccupancyHistogram: need ≥ 1 bin");
        let mut lo = u32::MAX;
        let mut hi = 0u32;
        for &l in loads {
            lo = lo.min(l);
            hi = hi.max(l);
        }
        let mut counts = vec![0u64; (hi - lo) as usize + 1];
        for &l in loads {
            counts[(l - lo) as usize] += 1;
        }
        Self {
            counts,
            base: lo,
            n: loads.len() as u64,
        }
    }

    /// Total balls held: `Σ ℓ·count(ℓ)` over the live span.
    pub fn total_balls(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            // lint:allow(N1): i indexes the live span, bounded by the u32 load range
            .map(|(i, &c)| (self.base + i as u32) as u64 * c)
            .sum()
    }

    /// All loads in ascending order (length `n`).
    pub fn to_sorted_loads(&self) -> Vec<u32> {
        let mut loads = Vec::with_capacity(self.n as usize);
        for (i, &c) in self.counts.iter().enumerate() {
            let l = self.base + i as u32;
            loads.extend(std::iter::repeat_n(l, c as usize));
        }
        debug_assert_eq!(loads.len() as u64, self.n);
        loads
    }

    /// Internal consistency check (tests): bin count conserved.
    pub fn check_invariants(&self) {
        assert_eq!(
            self.counts.iter().sum::<u64>(),
            self.n,
            "bins not conserved"
        );
    }
}

/// How the balls of one segment choose their landing class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LandingRule {
    /// Uniform among bins with load strictly below the bound (`None`
    /// means every bin always accepts — the `one-choice` law). Sample
    /// cost per ball is `Geometric(open/n)`.
    UniformBelow(Option<u32>),
    /// The least loaded of `d` uniform samples (`greedy[d]`; both
    /// tie-break rules land in the same class). Sample cost per ball is
    /// exactly `d`.
    LeastOfD(u32),
}

/// One constant-rule segment of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSegment {
    /// Landing law for every ball of the segment.
    pub rule: LandingRule,
    /// Inclusive index of the last ball sharing the rule.
    pub end: u64,
}

/// A protocol the histogram engine can drive: its landing law is a
/// function of the ball index alone, constant over contiguous segments.
///
/// Every [`ThresholdSchedule`] gets this for free (blanket impl below);
/// `one-choice` and `greedy[d]` implement it directly with their fixed
/// whole-run rules.
pub trait HistogramSchedule {
    /// The segment containing ball `ball` (1-based).
    fn histogram_segment(&self, cfg: &RunConfig, ball: u64) -> HistogramSegment;
}

impl<S: ThresholdSchedule + ?Sized> HistogramSchedule for S {
    fn histogram_segment(&self, cfg: &RunConfig, ball: u64) -> HistogramSegment {
        HistogramSegment {
            rule: LandingRule::UniformBelow(Some(self.bound(cfg, ball))),
            end: self.segment_end(cfg, ball),
        }
    }
}

/// A standard-normal draw by inverting the CDF on one uniform
/// (Acklam's rational approximation: relative error < 1.2e-9, full
/// tails). One `next_f64` plus a handful of flops — an order of
/// magnitude cheaper than Box–Muller on the per-stage hot path, where
/// the split draws dominate the engine's runtime.
#[allow(clippy::excessive_precision)] // coefficients verbatim from Acklam
fn cheap_std_normal<R: Rng64 + ?Sized>(rng: &mut R) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e1,
        2.209460984245205e2,
        -2.759285104469687e2,
        1.383577518672690e2,
        -3.066479806614716e1,
        2.506628277459239e0,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e1,
        1.615858368580409e2,
        -1.556989798598866e2,
        6.680131188771972e1,
        -1.328068155288572e1,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-3,
        -3.223964580411365e-1,
        -2.400758277161838e0,
        -2.549732539343734e0,
        4.374664141464968e0,
        2.938163982698783e0,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-3,
        3.224671290700398e-1,
        2.445134137142996e0,
        3.754408661907416e0,
    ];
    const P_LOW: f64 = 0.02425;
    let p = rng.next_f64().clamp(f64::MIN_POSITIVE, 1.0 - 1e-16);
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

/// `Binomial(n, p)` for the wide conditional splits: exact while the
/// variance is moderate, rounded-normal (clamped to the support) above
/// [`SPLIT_NORMAL_VAR`]. Shared with the weight-class engine's
/// cross-class intake splits and the parallel round-occupancy engine's
/// open-set request splits.
pub fn split_binomial<R: Rng64 + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let var = n as f64 * p * (1.0 - p);
    if var < SPLIT_NORMAL_VAR {
        return BinomialSampler::new(n, p).sample(rng);
    }
    let draw = (n as f64 * p + var.sqrt() * cheap_std_normal(rng)).round();
    // f64 → u64 saturates at 0 below; clamp the high side to n.
    (draw as u64).min(n)
}

/// Total uniform-stream samples consumed to obtain `hits` hits on an
/// accepting set of probability `p`: the level-batched engine's
/// negative-binomial construction at this engine's exact-sum ceiling.
fn round_samples<R: Rng64 + ?Sized>(hits: u64, p: f64, rng: &mut R) -> u64 {
    crate::level_batched::stream_samples_for_hits_bounded(hits, p, SAMPLES_EXACT_CUTOFF, rng)
}

/// Guaranteed stopping level for the hazard walks over a `Bin(h, 1/c)`
/// marginal: the true mass beyond `λ + 40√λ + 64` is below `e⁻³⁰⁰`, so
/// parking the stragglers there is the same approximation the
/// `tail < 1e-12` exhaustion break makes — but it triggers *surely*.
/// The exhaustion break alone is fragile: float error in the seeded
/// pmf floors the walked tail at the seed's relative error, and when
/// that floor sits above the cutoff the stragglers ride `j` all the
/// way to `h` — an O(h) walk plus an O(h) cells vector for the drift
/// repair to crawl, which at `n = 2²⁷` turned sub-millisecond rounds
/// into minutes.
fn park_level(c: u64, h: u64) -> u64 {
    let lambda = h as f64 / c as f64;
    ((lambda + 40.0 * lambda.max(1.0).sqrt() + 64.0) as u64).min(h)
}

/// Scatters `h` uniform hits over one occupancy class of `c`
/// exchangeable bins at load `l`, each with remaining capacity `cap`
/// (`None` = unbounded), updating the histogram and returning the
/// number of balls kept (the rest is overflow for the next round).
fn scatter_class<R: Rng64 + ?Sized>(
    hist: &mut OccupancyHistogram,
    l: u32,
    c: u64,
    h: u64,
    cap: Option<u32>,
    hit_scratch: &mut Vec<u64>,
    rng: &mut R,
) -> u64 {
    debug_assert!(c > 0);
    if h == 0 {
        return 0;
    }
    let keep_of = |hits: u64| -> u64 { cap.map_or(hits, |q| hits.min(q as u64)) };
    if c == 1 {
        let keep = keep_of(h);
        hist.promote(l, 1, keep as u32);
        return keep;
    }
    if h <= EXACT_HITS {
        // Exact per-hit collision walk: each hit lands on a specific
        // already-hit bin w.p. 1/c, so indexing the hit bins 0.. and
        // drawing a uniform in 0..c reproduces the multinomial exactly.
        let hit_counts = hit_scratch;
        hit_counts.clear();
        for _ in 0..h {
            let r = rng.range_u64(c);
            if (r as usize) < hit_counts.len() {
                hit_counts[r as usize] += 1;
            } else {
                hit_counts.push(1);
            }
        }
        // Group the promotes by jump size: most hit bins share a small
        // keep count, and one grouped promote per distinct jump beats a
        // per-bin promote on the hot path.
        let mut kept = 0u64;
        let mut jumps = [0u64; 8];
        for &x in hit_counts.iter() {
            let keep = keep_of(x);
            kept += keep;
            if keep > 0 && (keep as usize) < jumps.len() {
                jumps[keep as usize] += 1;
            } else if keep > 0 {
                hist.promote(l, 1, keep as u32);
            }
        }
        for (jump, &bins) in jumps.iter().enumerate().skip(1) {
            hist.promote(l, bins, jump as u32);
        }
        return kept;
    }
    if c <= EXACT_BINS {
        // Exact multinomial as a chain of per-bin conditional binomials.
        let mut rem_h = h;
        let mut kept = 0u64;
        let mut jumps = [0u64; 8];
        for i in 0..c {
            if rem_h == 0 {
                break;
            }
            let rem_bins = c - i;
            let x = if rem_bins == 1 {
                rem_h
            } else {
                BinomialSampler::new(rem_h, 1.0 / rem_bins as f64).sample(rng)
            };
            rem_h -= x;
            let keep = keep_of(x);
            kept += keep;
            if keep > 0 && (keep as usize) < jumps.len() {
                jumps[keep as usize] += 1;
            } else if keep > 0 {
                hist.promote(l, 1, keep as u32);
            }
        }
        for (jump, &bins) in jumps.iter().enumerate().skip(1) {
            hist.promote(l, bins, jump as u32);
        }
        return kept;
    }

    if cap == Some(1) {
        // Saturated top level: every hit bin keeps exactly one ball, so
        // the scatter collapses to the *distinct-bin count* `D` —
        // promote `D` bins one level, return `D` (this path only fires
        // above the exact-path thresholds, where the distinct-count
        // draw takes its moment-matched closed form; it is an order of
        // magnitude cheaper than the cell walk on the hot top level
        // where most hits land).
        let d = distinct_hit_count(c, h, rng);
        hist.promote(l, d, 1);
        return d;
    }
    // Occupancy-cell sampling. Each bin's hit count is marginally
    // `Bin(h, 1/c)`; drawing cell `j` as `Binomial(c_rem, pmf_j/tail_j)`
    // makes `(N_0, N_1, …)` an exact multinomial over that marginal —
    // the occupancy of `c` *independent* `Bin(h, 1/c)` counts. The
    // neglected negative correlation (the true counts sum to `h`
    // exactly) appears as a small drift of `Σ j·N_j` around `h`; the
    // repair below moves bins between *adjacent* cells at the
    // distribution's mode, where a one-level shift is deep inside the
    // bulk — truncating or padding the tail instead would visibly
    // distort max-load statistics. Residual error is `O(1/c)` on second
    // moments, and only this path (`c > 64`, `h > 64`) carries it.
    let cells = hit_scratch;
    cells.clear();
    let mut c_rem = c;
    let mut lump = 0u64; // capped classes: bins with ≥ q hits, keep q each
                         // pmf of Bin(h, 1/c) at j, advanced by the recurrence
                         // pmf(j+1) = pmf(j) · (h−j) / ((j+1)·(c−1)). The heavy regimes
                         // start with pmf(0) = (1−1/c)^h in deep underflow, so the walk
                         // carries the pmf in log space until it surfaces, then switches to
                         // the two-flop linear recurrence for the bulk of the levels.
                         // (1−1/c)^h is seeded through the log: powi's relative error grows
                         // like h·ε, which past h ≈ 10⁸ can leave the walked tail floored
                         // *above* the exhaustion cutoff so the break never fires.
    let mut ln_pmf = h as f64 * (-1.0 / c as f64).ln_1p();
    let mut pmf = ln_pmf.exp();
    let mut log_mode = pmf < 1e-290;
    let mut tail = 1.0f64; // P(X ≥ j)
    let j_park = park_level(c, h);
    while c_rem > 0 {
        let j = cells.len() as u64;
        if cap.is_some_and(|q| q as u64 == j) {
            lump = c_rem;
            break;
        }
        if j >= j_park || tail < 1e-12 {
            // The walked tail mass is numerically exhausted; park the
            // stragglers at the current level (the repair below keeps
            // total mass exact).
            cells.push(c_rem);
            break;
        }
        let hazard = if tail <= pmf {
            1.0
        } else {
            (pmf / tail).clamp(0.0, 1.0)
        };
        let nj = if hazard == 0.0 {
            0
        } else {
            split_binomial(c_rem, hazard, rng)
        };
        cells.push(nj);
        c_rem -= nj;
        tail = (tail - pmf).max(0.0);
        let num = (h - j) as f64;
        let den = (j + 1) as f64 * (c - 1) as f64;
        if log_mode {
            ln_pmf += num.ln() - den.ln();
            pmf = ln_pmf.exp();
            log_mode = pmf < 1e-290;
        } else {
            pmf *= num / den;
        }
    }

    let consumed = |cells: &[u64], lump: u64| -> u64 {
        let q = cap.map_or(0, |q| q as u64);
        cells
            .iter()
            .enumerate()
            .map(|(j, &nj)| j as u64 * nj)
            .sum::<u64>()
            + q * lump
    };
    // Repair target. Unbounded classes keep every ball, so the cells
    // must consume exactly `h`. Capped classes keep
    // `h − Σ_bins (X−q)⁺`; the cells only resolve hit counts up to the
    // lump, so the overflow is estimated as `lump · E[(X−q)⁺ | X ≥ q]`
    // from the same pmf recurrence (conditioning on the *drawn* lump
    // keeps the estimate consistent: no capped bin ⇒ no overflow,
    // surely). Repairing toward the target in *both* directions is what
    // keeps the re-throw mass unbiased — clipping only the impossible
    // `consumed > h` side would systematically inflate the overflow by
    // the positive part of the drift, which showed up as a ~1% excess
    // in allocation time before this estimate existed.
    let target = match cap {
        None => h,
        Some(q) => {
            if lump == 0 {
                h // no bin reached the cap: every ball was kept, surely
            } else {
                // E[(X−q)⁺ | X ≥ q]: extend the recurrence past the cap
                // (pure float work, no draws). `pmf`/`tail` sit at j = q
                // when the lump branch exits the cell loop.
                let lambda = h as f64 / c as f64;
                let mut e_tail = 0.0f64;
                let mut p = pmf;
                let mut jj = q as u64;
                while jj < h {
                    let num = (h - jj) as f64;
                    let den = (jj + 1) as f64 * (c - 1) as f64;
                    p *= num / den;
                    jj += 1;
                    let term = (jj - q as u64) as f64 * p;
                    e_tail += term;
                    if jj as f64 > lambda && term < 1e-5 * (1.0 + e_tail) {
                        break;
                    }
                }
                let e_cond = if tail > 1e-12 { e_tail / tail } else { 0.0 };
                let overflow_est = (lump as f64 * e_cond).round() as u64;
                h - overflow_est.min(h)
            }
        }
    };
    // A capped class can physically hold at most c·q (rescues the
    // λ ≫ q corner where the pmf extension underflows).
    let target = target.min(cap.map_or(u64::MAX, |q| c.saturating_mul(q as u64)));
    // Repair the drift with single-level moves apportioned
    // *proportionally* over the donor cells (a conditional-binomial
    // chain, like the intake splits): every bin is equally likely to be
    // the one nudged, so no cell — in particular not the N₀ cell, which
    // the untouched-bin statistics read — absorbs the correction
    // preferentially, and the expected cell counts stay at their exact
    // marginals.
    let mut d = consumed(cells, lump) as i128 - target as i128;
    while d > 0 {
        let lump_size = if cap.is_some() { lump } else { 0 };
        let mut pool: u64 = cells[1..].iter().sum::<u64>() + lump_size;
        debug_assert!(pool > 0, "occupancy repair: no donors above the target");
        if pool == 0 {
            break;
        }
        let mut want = (d as u128).min(pool as u128) as u64;
        d -= want as i128;
        if want <= 8 {
            // The typical drift is a handful of balls: single moves with
            // one uniform donor pick each (still ∝ cell sizes) beat the
            // binomial-chain pass by an order of magnitude.
            while want > 0 {
                let mut r = rng.range_u64(pool);
                let mut placed = false;
                for i in 1..cells.len() {
                    if r < cells[i] {
                        cells[i] -= 1;
                        cells[i - 1] += 1;
                        placed = true;
                        break;
                    }
                    r -= cells[i];
                }
                if !placed {
                    debug_assert!(lump > 0);
                    lump -= 1;
                    let q = cap.expect("the lump donor exists only under a capped rule") as usize;
                    if cells.len() < q {
                        cells.resize(q, 0);
                    }
                    cells[q - 1] += 1;
                }
                pool -= 1;
                want -= 1;
            }
            continue;
        }
        // Ascending apply is safe: cell i−1 has already donated before
        // it receives from cell i.
        for i in 1..cells.len() {
            if want == 0 {
                break;
            }
            let mi = if pool == cells[i] {
                want
            } else {
                split_binomial(want, cells[i] as f64 / pool as f64, rng)
            }
            .min(cells[i]);
            pool -= cells[i];
            cells[i] -= mi;
            cells[i - 1] += mi;
            want -= mi;
        }
        if want > 0 && lump_size > 0 {
            // The remainder was apportioned to the ≥q lump.
            let q = cap.expect("a non-empty lump implies a capped rule") as usize;
            let mi = want.min(lump);
            lump -= mi;
            if cells.len() < q {
                cells.resize(q, 0);
            }
            cells[q - 1] += mi;
            want -= mi;
        }
        if want > 0 {
            // A pass can stall on clamped draws; finish the remainder
            // from the fullest donor so the loop surely terminates.
            if let Some(i) = (1..cells.len())
                .filter(|&i| cells[i] > 0)
                .max_by_key(|&i| cells[i])
            {
                let mi = want.min(cells[i]);
                cells[i] -= mi;
                cells[i - 1] += mi;
                want -= mi;
            }
        }
        d += want as i128; // anything unplaceable goes back into the deficit
    }
    while d < 0 {
        let mut pool: u64 = cells.iter().sum();
        if pool == 0 {
            break; // everything already sits at the cap lump
        }
        let mut want = ((-d) as u128).min(pool as u128) as u64;
        d += want as i128;
        if want <= 8 {
            // Single-move fast path, mirroring the down-move repair.
            while want > 0 {
                let mut r = rng.range_u64(pool);
                for i in 0..cells.len() {
                    if r < cells[i] {
                        cells[i] -= 1;
                        if cap.is_some_and(|q| i as u32 + 1 == q) {
                            lump += 1;
                        } else {
                            if i + 1 == cells.len() {
                                cells.push(0);
                            }
                            cells[i + 1] += 1;
                        }
                        break;
                    }
                    r -= cells[i];
                }
                pool -= 1;
                want -= 1;
            }
            continue;
        }
        // Descending apply: cell i+1 has already donated before it
        // receives from cell i. For capped classes the move out of cell
        // q−1 lands in the ≥q lump (one more kept ball each, same as
        // any other single-level move).
        for i in (0..cells.len()).rev() {
            if want == 0 {
                break;
            }
            pool -= cells[i];
            let mi = if pool == 0 {
                want
            } else {
                split_binomial(want, cells[i] as f64 / (pool + cells[i]) as f64, rng)
            }
            .min(cells[i]);
            if mi > 0 {
                cells[i] -= mi;
                if cap.is_some_and(|q| i as u32 + 1 == q) {
                    lump += mi;
                } else {
                    if i + 1 == cells.len() {
                        cells.push(0);
                    }
                    cells[i + 1] += mi;
                }
                want -= mi;
            }
        }
        if want > 0 {
            // Stalled-pass fallback, mirroring the down-move repair.
            if let Some(i) = (0..cells.len())
                .filter(|&i| cells[i] > 0)
                .max_by_key(|&i| cells[i])
            {
                let mi = want.min(cells[i]);
                cells[i] -= mi;
                if cap.is_some_and(|q| i as u32 + 1 == q) {
                    lump += mi;
                } else {
                    if i + 1 == cells.len() {
                        cells.push(0);
                    }
                    cells[i + 1] += mi;
                }
                want -= mi;
            }
        }
        d -= want as i128;
    }

    let mut kept = 0u64;
    for (j, &nj) in cells.iter().enumerate() {
        kept += j as u64 * nj;
        hist.promote(l, nj, j as u32);
    }
    if lump > 0 {
        let q = cap.expect("promoted lump bins exist only under a capped rule");
        kept += q as u64 * lump;
        hist.promote(l, lump, q);
    }
    debug_assert!(kept <= h);
    kept
}

/// One batched round: throws `thrown` balls uniformly over the bins
/// open under `t` at round start, splitting the intake across occupancy
/// classes with conditional binomials. Returns the number of balls kept
/// (the overflow re-enters the caller's loop). Shared with the
/// weight-class engine in [`crate::weighted`], which runs one such
/// round per weight class.
pub(crate) fn round_uniform<R: Rng64 + ?Sized>(
    hist: &mut OccupancyHistogram,
    t: Option<u32>,
    thrown: u64,
    scratch: &mut Vec<(u32, u64)>,
    hit_scratch: &mut Vec<u64>,
    rng: &mut R,
) -> u64 {
    // Snapshot the open classes *descending* by load: the mass piles up
    // just below the bound. (Descending is promote-safe: scatters only
    // move bins upward, so a class's count still equals its snapshot
    // when its turn comes.)
    scratch.clear();
    let mut k = 0u64;
    let top = match t {
        Some(t) => {
            if t <= hist.base {
                0
            } else {
                ((t - hist.base) as usize).min(hist.counts.len())
            }
        }
        None => hist.counts.len(),
    };
    for i in (0..top).rev() {
        let c = hist.counts[i];
        if c > 0 {
            scratch.push((hist.base + i as u32, c));
            k += c;
        }
    }
    debug_assert!(k > 0, "round_uniform: no open bin");

    if thrown == 0 {
        return 0;
    }
    // Small cases take the exact per-level route (chain of conditional
    // binomials + scatter_class, which is fully exact below its own
    // thresholds) — the global-occupancy fast path below only fires in
    // the approximate regime it shares with the cell walk.
    if k <= EXACT_BINS || thrown <= EXACT_HITS || scratch.len() == 1 {
        let mut rem_hits = thrown;
        let mut rem_bins = k;
        let mut kept = 0u64;
        for &(l, c) in scratch.iter() {
            if rem_hits == 0 {
                break;
            }
            let h = if rem_bins == c {
                rem_hits
            } else {
                split_binomial(rem_hits, c as f64 / rem_bins as f64, rng)
            };
            rem_hits -= h;
            rem_bins -= c;
            let cap = t.map(|t| t - l);
            kept += scatter_class(hist, l, c, h, cap, hit_scratch, rng);
        }
        return kept;
    }

    // Global-occupancy route: resolve the hit multiplicities once over
    // the *whole* open set (`cells[j]` = bins receiving exactly `j`
    // hits, drawn by the same hazard walk the per-level scatter uses),
    // then place each multiplicity group across the levels with a
    // without-replacement (hypergeometric) chain. Equivalent
    // decomposition of the same multinomial, but the per-round cost
    // drops from O(levels · cells) draws to O(levels + cells): with the
    // adaptive lag distribution spanning ~log n levels this is the
    // difference between the engine being level-bound and hit-bound.
    let cells = hit_scratch;
    draw_occupancy_cells(k, thrown, cells, rng);
    let mut kept = 0u64;
    // Remaining unassigned bins per level (parallel to `scratch`).
    let mut rem_total = k;
    // j descending so the small multiplicity groups (per-hit exact
    // assignment) run first only if... order is irrelevant for the
    // sequential conditioning; descending keeps the big j==1 group last
    // so its chain sees the true remaining counts.
    for j in (1..cells.len()).rev() {
        let nj = cells[j];
        if nj == 0 {
            continue;
        }
        let keep_at = |cap: Option<u32>| -> u64 {
            match cap {
                None => j as u64,
                Some(q) => (j as u64).min(q as u64),
            }
        };
        if nj <= PER_HIT_SPLIT {
            // Assign each multi-hit bin its level directly, without
            // replacement (exact).
            for _ in 0..nj {
                let mut r = rng.range_u64(rem_total);
                for &mut (l, ref mut c) in scratch.iter_mut() {
                    if r < *c {
                        let cap = t.map(|t| t - l);
                        let keep = keep_at(cap) as u32;
                        hist.promote(l, 1, keep);
                        kept += keep as u64;
                        *c -= 1;
                        rem_total -= 1;
                        break;
                    }
                    r -= *c;
                }
            }
            continue;
        }
        // Hypergeometric chain over the levels: level i receives
        // H_i ~ Hypergeom(rem_total, c_i, nj_rem), drawn as a
        // rounded-normal with the exact mean and finite-population
        // variance, clamped to the support (the same moment-exact
        // approximation family as the cell walk; nj > PER_HIT_SPLIT
        // keeps the normal regime honest).
        let mut nj_rem = nj;
        let mut pool = rem_total;
        #[allow(clippy::needless_range_loop)] // scratch[idx] is mutated below
        for idx in 0..scratch.len() {
            if nj_rem == 0 {
                break;
            }
            let (l, c) = scratch[idx];
            if c == 0 {
                continue;
            }
            let h_i = if pool == c {
                nj_rem.min(c)
            } else {
                let f = c as f64 / pool as f64;
                let mean = nj_rem as f64 * f;
                let fpc = (pool - nj_rem) as f64 / (pool - 1).max(1) as f64;
                let var = mean * (1.0 - f) * fpc;
                let lo = nj_rem.saturating_sub(pool - c);
                let hi = nj_rem.min(c);
                if var < SPLIT_NORMAL_VAR {
                    // Narrow split: an exact binomial draw (the
                    // without-replacement correction is within the
                    // clamp) keeps the randomness a rounded mean would
                    // destroy — deterministic rounding here starves
                    // low-count levels of promotions forever.
                    split_binomial(nj_rem, f, rng).clamp(lo, hi)
                } else {
                    let draw = (mean + var.sqrt() * cheap_std_normal(rng)).round();
                    ((draw.max(0.0)) as u64).clamp(lo, hi)
                }
            };
            if h_i > 0 {
                let cap = t.map(|t| t - l);
                let keep = keep_at(cap) as u32;
                hist.promote(l, h_i, keep);
                kept += keep as u64 * h_i;
                scratch[idx].1 -= h_i;
                rem_total -= h_i;
                nj_rem -= h_i;
            }
            pool -= c;
        }
        debug_assert!(nj_rem == 0, "hypergeometric chain left bins unassigned");
    }
    kept
}

/// Draws the occupancy pattern of `h` uniform hits over `k`
/// exchangeable bins: `cells[j]` = number of bins receiving exactly `j`
/// hits. The same hazard walk over the `Bin(h, 1/k)` marginal as the
/// capped per-level scatter, with the drift of `Σ j·cells[j]` repaired
/// toward exactly `h` by proportional single-level moves (no caps here:
/// capping happens level-wise in the caller).
fn draw_occupancy_cells<R: Rng64 + ?Sized>(k: u64, h: u64, cells: &mut Vec<u64>, rng: &mut R) {
    cells.clear();
    let mut c_rem = k;
    // Seeded through the log for the same h·ε-error reason as
    // [`scatter_class`]; [`park_level`] bounds the walk even when the
    // tail floor sits above the exhaustion cutoff.
    let mut ln_pmf = h as f64 * (-1.0 / k as f64).ln_1p();
    let mut pmf = ln_pmf.exp();
    let mut log_mode = pmf < 1e-290;
    let mut tail = 1.0f64;
    let j_park = park_level(k, h);
    while c_rem > 0 {
        let j = cells.len() as u64;
        if j >= j_park || tail < 1e-12 {
            cells.push(c_rem);
            break;
        }
        let hazard = if tail <= pmf {
            1.0
        } else {
            (pmf / tail).clamp(0.0, 1.0)
        };
        let nj = if hazard == 0.0 {
            0
        } else {
            split_binomial(c_rem, hazard, rng)
        };
        cells.push(nj);
        c_rem -= nj;
        tail = (tail - pmf).max(0.0);
        let num = (h - j) as f64;
        let den = (j + 1) as f64 * (k - 1) as f64;
        if log_mode {
            ln_pmf += num.ln() - den.ln();
            pmf = ln_pmf.exp();
            log_mode = pmf < 1e-290;
        } else {
            pmf *= num / den;
        }
    }
    // Repair Σ j·cells[j] toward exactly h with single-level moves
    // apportioned proportionally over the donor cells.
    let consumed = |cells: &[u64]| -> u64 {
        cells
            .iter()
            .enumerate()
            .map(|(j, &nj)| j as u64 * nj)
            .sum::<u64>()
    };
    let mut d = consumed(cells) as i128 - h as i128;
    while d > 0 {
        let mut pool: u64 = cells[1..].iter().sum();
        if pool == 0 {
            break;
        }
        let mut want = (d as u128).min(pool as u128) as u64;
        d -= want as i128;
        if want > 16 {
            // Proportional chain pass: one conditional binomial per
            // donor cell moves the bulk of the drift in O(cells) draws
            // (the typical drift is Θ(√h) — per-move repair would put a
            // √h · cells term on every round).
            for i in 1..cells.len() {
                if want == 0 {
                    break;
                }
                let mi = if pool == cells[i] {
                    want
                } else {
                    split_binomial(want, cells[i] as f64 / pool as f64, rng)
                }
                .min(cells[i]);
                pool -= cells[i];
                cells[i] -= mi;
                cells[i - 1] += mi;
                want -= mi;
            }
            pool = cells[1..].iter().sum();
        }
        while want > 0 && pool > 0 {
            let mut r = rng.range_u64(pool);
            for i in 1..cells.len() {
                if r < cells[i] {
                    cells[i] -= 1;
                    cells[i - 1] += 1;
                    break;
                }
                r -= cells[i];
            }
            pool -= 1;
            want -= 1;
        }
        d += want as i128;
    }
    while d < 0 {
        let mut pool: u64 = cells.iter().sum();
        if pool == 0 {
            break;
        }
        let mut want = ((-d) as u128).min(pool as u128) as u64;
        d += want as i128;
        if want > 16 {
            // Descending apply: cell i+1 has already donated before it
            // receives from cell i.
            for i in (0..cells.len()).rev() {
                if want == 0 {
                    break;
                }
                pool -= cells[i];
                let mi = if pool == 0 {
                    want
                } else {
                    split_binomial(want, cells[i] as f64 / (pool + cells[i]) as f64, rng)
                }
                .min(cells[i]);
                if mi > 0 {
                    cells[i] -= mi;
                    if i + 1 == cells.len() {
                        cells.push(0);
                    }
                    cells[i + 1] += mi;
                    want -= mi;
                }
            }
            pool = cells.iter().sum();
        }
        while want > 0 && pool > 0 {
            let mut r = rng.range_u64(pool);
            for i in 0..cells.len() {
                if r < cells[i] {
                    cells[i] -= 1;
                    if i + 1 == cells.len() {
                        cells.push(0);
                    }
                    cells[i + 1] += 1;
                    break;
                }
                r -= cells[i];
            }
            pool -= 1;
            want -= 1;
        }
        d -= want as i128;
    }
}

/// Draws the *occupancy profile* of `hits` uniform throws over `bins`
/// exchangeable bins: on return `cells[j]` = number of bins receiving
/// exactly `j` throws (`Σ cells[j] = bins`, `Σ j·cells[j] = hits`,
/// surely).
///
/// This is the multiplicity-profile primitive of the engines that batch
/// a whole round of uniform contacts at once — the sequential histogram
/// engine's global-occupancy route and the parallel round-occupancy
/// engine (collision / bounded-load / parallel-greedy), which resolves
/// acceptance per multiplicity class instead of per contact.
///
/// Exactness regimes: `hits ≤ 64` runs the exact per-hit collision walk
/// (each throw lands on an already-hit bin with probability
/// `#hit/bins`), so small cases are *exactly* multinomial; larger
/// intakes run the hazard walk over the `Bin(hits, 1/bins)` marginal
/// with proportional drift repair — a moment-exact approximation whose
/// residual error the equivalence suites bound. Cost is
/// `O(max multiplicity)` draws, independent of `bins` and `hits`.
pub fn occupancy_profile<R: Rng64 + ?Sized>(
    bins: u64,
    hits: u64,
    cells: &mut Vec<u64>,
    rng: &mut R,
) {
    assert!(bins > 0, "occupancy_profile: need at least one bin");
    if hits == 0 {
        cells.clear();
        cells.push(bins);
        return;
    }
    if bins == 1 {
        // Degenerate: the single bin takes everything. (Callers with a
        // single bin and a huge intake should special-case before the
        // dense profile, as the sequential engines do.)
        cells.clear();
        cells.resize(hits as usize + 1, 0);
        cells[hits as usize] = 1;
        cells[0] = 0;
        return;
    }
    if hits <= EXACT_HITS {
        // Exact per-hit walk: index the hit bins 0..; a throw lands on
        // hit bin `r` iff `r < #hit` (each specific bin w.p. 1/bins).
        let mut counts = [0u8; EXACT_HITS as usize];
        let mut touched = 0usize;
        for _ in 0..hits {
            let r = rng.range_u64(bins);
            if (r as usize) < touched {
                counts[r as usize] += 1;
            } else {
                counts[touched] = 1;
                touched += 1;
            }
        }
        let max_mult = counts[..touched].iter().copied().max().unwrap_or(0) as usize;
        cells.clear();
        cells.resize(max_mult + 1, 0);
        cells[0] = bins - touched as u64;
        for &c in &counts[..touched] {
            cells[c as usize] += 1;
        }
        return;
    }
    draw_occupancy_cells(bins, hits, cells, rng);
}

/// Number of *distinct* bins hit by `hits` uniform throws over `bins`
/// exchangeable bins. Exact per-hit walk for `hits ≤ 64`; above that a
/// rounded-normal draw on the closed-form moments
/// (`q1 = (1−1/bins)^hits`, `q2 = (1−2/bins)^hits`):
///
/// ```text
/// E[D]   = bins·(1−q1)
/// Var[D] = bins·(q1−q2) + bins²·(q2−q1²)
/// ```
///
/// clamped to the sure support `[1, min(bins, hits)]`. The saturated
/// top level of [`scatter_class`] and the bounded-load round engine's
/// accepting-bin count both reduce to this draw.
pub fn distinct_hit_count<R: Rng64 + ?Sized>(bins: u64, hits: u64, rng: &mut R) -> u64 {
    if hits == 0 || bins == 0 {
        return 0;
    }
    if bins == 1 {
        return 1;
    }
    if hits <= EXACT_HITS {
        // The per-hit walk of `occupancy_profile`, keeping only the
        // distinct count.
        let mut distinct = 0u64;
        for _ in 0..hits {
            if rng.range_u64(bins) >= distinct {
                distinct += 1;
            }
        }
        return distinct;
    }
    let lam = 1.0 / bins as f64;
    let q1 = (hits as f64 * (-lam).ln_1p()).exp();
    let q2 = (hits as f64 * (-2.0 * lam).ln_1p()).exp();
    let mean = bins as f64 * (1.0 - q1);
    let var = (bins as f64 * (q1 - q2) + (bins as f64) * (bins as f64) * (q2 - q1 * q1)).max(0.0);
    let draw = (mean + var.sqrt() * cheap_std_normal(rng)).round();
    (draw.max(1.0) as u64).min(bins).min(hits)
}

/// `Hypergeometric(total, marked, draws)` — the number of marked items
/// among `draws` drawn without replacement from `total` items of which
/// `marked` are marked.
///
/// Exact sequential draw for `draws ≤ 8` (one uniform pick per draw);
/// above that an exact binomial clamped to the support while the
/// finite-population variance stays below the normal switch, and a
/// rounded normal with the exact mean and variance beyond — the same
/// moment-matched family as the engines' level chains, which use this
/// to spread a multiplicity group over occupancy classes.
pub fn hypergeometric<R: Rng64 + ?Sized>(total: u64, marked: u64, draws: u64, rng: &mut R) -> u64 {
    assert!(
        marked <= total && draws <= total,
        "hypergeometric: marked ({marked}) and draws ({draws}) must be ≤ total ({total})"
    );
    let lo = draws.saturating_sub(total - marked);
    let hi = draws.min(marked);
    if lo == hi {
        return lo;
    }
    if draws <= PER_HIT_SPLIT {
        let mut got = 0u64;
        let mut rem_marked = marked;
        let mut rem = total;
        for _ in 0..draws {
            if rng.range_u64(rem) < rem_marked {
                got += 1;
                rem_marked -= 1;
            }
            rem -= 1;
        }
        return got;
    }
    let f = marked as f64 / total as f64;
    let mean = draws as f64 * f;
    let fpc = (total - draws) as f64 / (total - 1).max(1) as f64;
    let var = mean * (1.0 - f) * fpc;
    if var < SPLIT_NORMAL_VAR {
        // Narrow split: the exact binomial is within the clamp and
        // keeps randomness a rounded mean would destroy.
        split_binomial(draws, f, rng).clamp(lo, hi)
    } else {
        let draw = (mean + var.sqrt() * cheap_std_normal(rng)).round();
        ((draw.max(0.0)) as u64).clamp(lo, hi)
    }
}

/// Draws one block's class composition for the blocked uniform load
/// assignment: one conditional [`hypergeometric`] per class over the
/// remaining counts (the `pool == count` guard hands the last
/// contributing class the exact remainder, so the chain surely
/// completes), decrementing `classes` in place and calling
/// `take(class_index, load, count)` for every class that contributes.
/// `remaining` must equal the sum of the remaining class counts and
/// `block ≤ remaining`. Shared by [`OccupancyHistogram::shuffled_loads`]
/// and the parallel round engines' sharded reconstruction, so the
/// exactness-critical chain exists once.
pub fn block_composition<R, F>(
    classes: &mut [(u32, u64)],
    remaining: u64,
    block: u64,
    rng: &mut R,
    mut take: F,
) where
    R: Rng64 + ?Sized,
    F: FnMut(usize, u32, u64),
{
    let mut pool = remaining;
    let mut left = block;
    for (i, &mut (l, ref mut c)) in classes.iter_mut().enumerate() {
        if left == 0 {
            break;
        }
        let cv = *c;
        if cv == 0 {
            continue;
        }
        let t = if pool == cv {
            left
        } else {
            hypergeometric(pool, cv, left, rng)
        };
        if t > 0 {
            take(i, l, t);
            *c -= t;
            left -= t;
        }
        pool -= cv;
    }
    debug_assert_eq!(left, 0, "block composition incomplete");
}

/// A rounded-normal count with the given mean and variance, clamped to
/// `[lo, hi]` — the moment-matched draw the approximate engine paths
/// share for quantities whose exact law has no cheap sampler (e.g. the
/// bounded-load engine's per-round placed-ball count). Degenerate
/// supports (`lo ≥ hi`) return `lo` without consuming randomness.
pub fn rounded_normal_count<R: Rng64 + ?Sized>(
    mean: f64,
    var: f64,
    lo: u64,
    hi: u64,
    rng: &mut R,
) -> u64 {
    if lo >= hi {
        return lo;
    }
    let draw = (mean + var.max(0.0).sqrt() * cheap_std_normal(rng)).round();
    ((draw.max(0.0)) as u64).clamp(lo, hi)
}

/// Places `count` balls under the uniform-below-`t` rule (`None` = the
/// `one-choice` law), batched by occupancy class. Panics if no bin is
/// open or `count` exceeds the remaining capacity below `t` (either
/// indicates a threshold bug, mirroring the other engines).
pub fn place_histogram_below<R: Rng64 + ?Sized>(
    hist: &mut OccupancyHistogram,
    t: Option<u32>,
    count: u64,
    rng: &mut R,
) -> BatchStats {
    place_histogram_below_with(hist, t, count, &mut Vec::new(), &mut Vec::new(), rng)
}

/// [`place_histogram_below`] with caller-owned scratch buffers, so a
/// driver placing one segment per stage reuses the same allocations for
/// the whole run.
fn place_histogram_below_with<R: Rng64 + ?Sized>(
    hist: &mut OccupancyHistogram,
    t: Option<u32>,
    count: u64,
    scratch: &mut Vec<(u32, u64)>,
    hit_scratch: &mut Vec<u64>,
    rng: &mut R,
) -> BatchStats {
    if count == 0 {
        return BatchStats {
            samples: 0,
            max_samples_per_ball: 0,
        };
    }
    let n = hist.n;
    if let Some(t) = t {
        assert!(
            hist.open_bins(Some(t)) > 0,
            "place_histogram_below: no bin has load < {t}"
        );
        let capacity = hist.capacity_below(t);
        assert!(
            count <= capacity,
            "place_histogram_below: {count} balls exceed the remaining capacity {capacity} \
             below {t}"
        );
    }

    let mut left = count;
    let mut samples = 0u64;
    while left >= ROUND_CUTOFF {
        let k = hist.open_bins(t);
        samples += round_samples(left, k as f64 / n as f64, rng);
        let kept = round_uniform(hist, t, left, scratch, hit_scratch, rng);
        debug_assert!(kept > 0, "a round with open capacity must place something");
        if kept == 0 {
            break; // defensive: the exact tail below is always correct
        }
        left -= kept;
    }

    let mut max_samples = u64::from(count > left);
    // Exact per-ball tail on the collapsed chain: class ∝ open count.
    let mut k = hist.open_bins(t);
    let mut geo: Option<(u64, GeometricSampler)> = None;
    while left > 0 {
        debug_assert!(k > 0);
        let s = if k == n {
            1
        } else {
            // The sampler caches ln(1−p); rebuild only when k changes
            // (a bin closed), not per ball.
            let g = match &geo {
                Some((gk, g)) if *gk == k => *g,
                _ => {
                    let g = GeometricSampler::new(k as f64 / n as f64);
                    geo = Some((k, g));
                    g
                }
            };
            g.sample(rng)
        };
        samples += s;
        max_samples = max_samples.max(s);
        // CDF walk from the top open class downward: under a threshold
        // rule the mass piles up just below the bound, so the reversed
        // walk terminates after a couple of classes.
        let mut r = rng.range_u64(k);
        let top = match t {
            Some(t) => ((t - hist.base) as usize).min(hist.counts.len()),
            None => hist.counts.len(),
        };
        let mut chosen = hist.base;
        for i in (0..top).rev() {
            let c = hist.counts[i];
            if r < c {
                chosen = hist.base + i as u32;
                break;
            }
            r -= c;
        }
        hist.promote(chosen, 1, 1);
        if t == Some(chosen + 1) {
            k -= 1;
        }
        left -= 1;
    }

    BatchStats {
        samples,
        max_samples_per_ball: max_samples,
    }
}

/// Places `count` balls under the `greedy[d]` law, exactly: order the
/// bins ascending by load and the least loaded of `d` uniform samples
/// (with replacement) is the class containing the minimum of `d`
/// uniform ranks; within the class the receiving bin is exchangeable,
/// and both tie-break rules collapse to the same class choice.
pub fn place_least_of_d<R: Rng64 + ?Sized>(
    hist: &mut OccupancyHistogram,
    d: u32,
    count: u64,
    rng: &mut R,
) -> BatchStats {
    debug_assert!(d >= 1);
    let n = hist.n;
    for _ in 0..count {
        let mut r = rng.range_u64(n);
        for _ in 1..d {
            r = r.min(rng.range_u64(n));
        }
        let mut chosen = hist.base;
        for (i, &c) in hist.counts.iter().enumerate() {
            if r < c {
                chosen = hist.base + i as u32;
                break;
            }
            r -= c;
        }
        hist.promote(chosen, 1, 1);
    }
    BatchStats {
        samples: count * d as u64,
        max_samples_per_ball: if count > 0 { d as u64 } else { 0 },
    }
}

/// An exact in-place Fisher–Yates for cache-resident blocks, drawing
/// its index picks from 16-bit Lemire lanes — four exactly-uniform
/// small-range draws per `u64`, with the rejection thresholds
/// (`2^16 mod r`) precomputed so the hot loop never divides. This is
/// the arrangement half of the blocked load materialization
/// ([`OccupancyHistogram::shuffled_loads`] and the parallel round
/// engines' sharded reconstruction); at `n = 10⁷` it is ~4× cheaper
/// than a full-width Fisher–Yates.
pub struct BlockShuffler {
    /// `thresh[r] = 2^16 mod r` — a 16-bit lane `x` is accepted for
    /// range `r` iff `(x·r) & 0xFFFF ≥ thresh[r]`.
    thresh: Vec<u32>,
}

impl BlockShuffler {
    /// Builds the rejection table for blocks of at most `max_block`
    /// elements (`max_block ≤ 2^16` so a 16-bit lane covers every
    /// range).
    pub fn new(max_block: usize) -> Self {
        assert!(max_block <= 1 << 16, "BlockShuffler: block too large");
        let mut thresh = vec![0u32; max_block + 1];
        for (r, t) in thresh.iter_mut().enumerate().skip(1) {
            *t = ((1u64 << 16) % r as u64) as u32;
        }
        Self { thresh }
    }

    /// Writes a uniformly random arrangement of the element stream
    /// `next` into `block` by the *inside-out* Fisher–Yates — one fused
    /// pass instead of fill-then-shuffle, which is what the `O(n)`
    /// reconstruction at `m = n` scale wants. `next` is called exactly
    /// `block.len()` times; the result is an exact uniform shuffle of
    /// that sequence (`block`'s prior contents are overwritten).
    pub fn arrange<R, F>(&self, block: &mut [u32], mut next: F, rng: &mut R)
    where
        R: Rng64 + ?Sized,
        F: FnMut() -> u32,
    {
        debug_assert!(block.len() < self.thresh.len());
        let mut bits = 0u64;
        let mut lanes = 0u32;
        for i in 0..block.len() {
            let range = (i + 1) as u32;
            let j = loop {
                if lanes == 0 {
                    bits = rng.next_u64();
                    lanes = 4;
                }
                let x = (bits & 0xFFFF) as u32;
                bits >>= 16;
                lanes -= 1;
                let m = x * range;
                if (m & 0xFFFF) >= self.thresh[range as usize] {
                    break (m >> 16) as usize;
                }
            };
            block[i] = block[j];
            block[j] = next();
        }
    }
}

/// A uniform random permutation of `0..n` (Fisher–Yates).
pub fn random_permutation<R: Rng64 + ?Sized>(n: usize, rng: &mut R) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.range_usize(i + 1));
    }
    perm
}

/// Assigns the histogram's sorted loads to bin indices through `perm` —
/// the identity-reconstruction step shared by every histogram-state
/// engine: drivers that emit stage traces draw one permutation up front
/// and materialize through it at every stage so the synthetic bin
/// identities stay consistent across the run.
pub fn materialize(hist: &OccupancyHistogram, perm: &[u32]) -> Vec<u32> {
    let sorted = hist.to_sorted_loads();
    let mut loads = vec![0u32; perm.len()];
    for (i, &l) in sorted.iter().enumerate() {
        loads[perm[i] as usize] = l;
    }
    loads
}

/// Block size of the sharded reconstruction: compositions are drawn per
/// block of this many bins, shuffled independently.
const SHARD_BLOCK: u64 = 1024;

/// Below this many bins the sharded reconstruction's thread-scope setup
/// costs more than it saves; [`crate::loads::Loads`] materializes
/// inline with [`OccupancyHistogram::shuffled_loads`] below it.
pub const SHARD_MIN_BINS: u64 = 1 << 21;

/// The blocked uniform load assignment of
/// [`OccupancyHistogram::shuffled_loads`], with the per-block
/// fill-and-shuffle work sharded over scoped OS threads. Fully
/// deterministic in the caller's seed and **independent of the thread
/// count**: the block compositions are drawn sequentially from the
/// caller's stream (one conditional [`hypergeometric`] per class per
/// block), the caller's stream then contributes one base seed, and
/// every block shuffles with its own child rng
/// (`SeedSequence(base).child(block)`) — the same seed discipline that
/// makes replicated runs scheduling-independent.
pub fn sharded_shuffled_loads<R: Rng64 + ?Sized>(
    hist: &OccupancyHistogram,
    rng: &mut R,
) -> Vec<u32> {
    let n = hist.n();
    let mut classes: Vec<(u32, u64)> = hist.levels().collect();
    if classes.len() == 1 {
        return vec![classes[0].0; n as usize];
    }
    let k = classes.len();
    let num_blocks = n.div_ceil(SHARD_BLOCK) as usize;
    // Block compositions, block-major (`comps[b·k + i]` = bins of class
    // `i` in block `b`), drawn sequentially through the shared
    // [`block_composition`] chain — ~`k` draws per block, a fraction of
    // a percent of the fill-and-shuffle work.
    let mut comps: Vec<u32> = vec![0; num_blocks * k];
    let mut remaining = n;
    for b in 0..num_blocks {
        let block = SHARD_BLOCK.min(remaining);
        block_composition(&mut classes, remaining, block, rng, |i, _, t| {
            // lint:allow(N1): t ≤ SHARD_BLOCK = 2¹⁰ fits u32 by construction
            comps[b * k + i] = t as u32
        });
        remaining -= block;
    }
    let base = rng.next_u64();
    let levels: Vec<u32> = hist.levels().map(|(l, _)| l).collect();

    let mut loads = vec![0u32; n as usize];
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(num_blocks)
        .max(1);
    let blocks_per_thread = num_blocks.div_ceil(threads);
    let chunk_len = blocks_per_thread * SHARD_BLOCK as usize;
    let fill_chunk = |t: usize, chunk: &mut [u32]| {
        let shuffler = BlockShuffler::new(SHARD_BLOCK as usize);
        let first_block = t * blocks_per_thread;
        for (bi, block) in chunk.chunks_mut(SHARD_BLOCK as usize).enumerate() {
            let b = first_block + bi;
            // Stream the block's composition runs through the fused
            // inside-out arrangement, on the block's own child stream.
            let mut stream = comps[b * k..(b + 1) * k]
                .iter()
                .zip(levels.iter())
                .flat_map(|(&t, &l)| std::iter::repeat_n(l, t as usize));
            let mut brng = SeedSequence::new(base).child(b as u64).rng();
            shuffler.arrange(
                block,
                || stream.next().expect("run stream exhausted early"),
                &mut brng,
            );
        }
    };
    if threads == 1 {
        // Single worker: run inline, no scope overhead. Identical
        // output — block streams never depend on the thread layout.
        fill_chunk(0, &mut loads);
    } else {
        std::thread::scope(|scope| {
            for (t, chunk) in loads.chunks_mut(chunk_len).enumerate() {
                let fill_chunk = &fill_chunk;
                scope.spawn(move || fill_chunk(t, chunk));
            }
        });
    }
    loads
}

/// Runs a whole allocation under [`Engine::Histogram`]: walks the
/// schedule's constant-rule segments and places each with the batched
/// class machinery. Bin identities are synthetic — and stay *virtual*
/// on the no-observer path: the outcome carries the histogram plus one
/// reconstruction seed ([`crate::loads::Loads::from_histogram`]), so no
/// `O(n)` pass runs unless a caller later asks for per-bin loads.
/// Drivers with a stage-trace observer instead draw one uniform seeded
/// permutation up front (derived from the same seed) and materialize
/// through it at every stage end and for the final outcome, keeping the
/// synthetic bin identities consistent across the trace. The per-bin
/// marginal law is exact either way because the faithful process is
/// exchangeable.
///
/// [`Engine::Histogram`]: crate::protocol::Engine::Histogram
pub fn drive_histogram<S, R, O>(
    name: String,
    cfg: &RunConfig,
    rng: &mut R,
    obs: &mut O,
    schedule: &S,
) -> Outcome
where
    S: HistogramSchedule + ?Sized,
    R: Rng64 + ?Sized,
    O: Observer + ?Sized,
{
    let n64 = cfg.n as u64;
    let mut hist = OccupancyHistogram::new(cfg.n);
    // One seed draw where the eager engine drew its whole permutation:
    // the placement stream below is identical whether or not a trace
    // consumer is attached, and reconstruction is a pure function of
    // this seed no matter when (or whether) it happens.
    let recon_seed = rng.next_u64();
    let want_stages = obs.wants_stage_ends();
    let perm = want_stages.then(|| random_permutation(cfg.n, &mut SplitMix64::new(recon_seed)));
    let mut total_samples = 0u64;
    let mut max_samples = 0u64;
    let mut scratch: Vec<(u32, u64)> = Vec::new();
    let mut hit_scratch: Vec<u64> = Vec::new();
    let mut ball = 1u64;
    while ball <= cfg.m {
        let seg = schedule.histogram_segment(cfg, ball);
        let mut end = seg.end.min(cfg.m);
        debug_assert!(end >= ball, "segment end must not precede its ball");
        if want_stages {
            end = end.min(((ball - 1) / n64 + 1) * n64);
        }
        let count = end - ball + 1;
        let stats = match seg.rule {
            LandingRule::UniformBelow(t) => {
                place_histogram_below_with(&mut hist, t, count, &mut scratch, &mut hit_scratch, rng)
            }
            LandingRule::LeastOfD(d) => place_least_of_d(&mut hist, d, count, rng),
        };
        total_samples += stats.samples;
        max_samples = max_samples.max(stats.max_samples_per_ball);
        if let Some(perm) = perm.as_deref() {
            if end.is_multiple_of(n64) {
                obs.on_stage_end(end / n64, &materialize(&hist, perm), end);
            }
        }
        ball = end + 1;
    }
    if cfg.m > 0 && !cfg.m.is_multiple_of(n64) {
        if let Some(perm) = perm.as_deref() {
            obs.on_stage_end(cfg.m / n64 + 1, &materialize(&hist, perm), cfg.m);
        }
    }
    let loads = match perm.as_deref() {
        // Trace runs materialize through the permutation so the final
        // loads agree with the last trace frame.
        Some(perm) => crate::loads::Loads::from_vec(materialize(&hist, perm)),
        None => crate::loads::Loads::from_histogram(hist, recon_seed),
    };
    Outcome {
        protocol: name,
        n: cfg.n,
        m: cfg.m,
        total_samples,
        max_samples_per_ball: max_samples,
        loads,
        scenario: Scenario::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_rng::SplitMix64;

    fn total_balls(h: &OccupancyHistogram) -> u64 {
        h.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (h.base + i as u32) as u64 * c)
            .sum()
    }

    #[test]
    fn histogram_promote_and_queries() {
        let mut h = OccupancyHistogram::new(10);
        assert_eq!(h.count(0), 10);
        assert_eq!(h.open_bins(Some(1)), 10);
        assert_eq!(h.open_bins(None), 10);
        assert_eq!(h.capacity_below(3), 30);
        h.promote(0, 4, 1);
        h.promote(0, 1, 5);
        h.check_invariants();
        assert_eq!(h.count(0), 5);
        assert_eq!(h.count(1), 4);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.min_load(), 0);
        assert_eq!(h.max_load(), 5);
        assert_eq!(h.open_bins(Some(1)), 5);
        assert_eq!(h.open_bins(Some(2)), 9);
        assert_eq!(h.capacity_below(2), 2 * 5 + 4);
        assert_eq!(total_balls(&h), 9);
    }

    #[test]
    fn histogram_base_slides_on_long_jumps() {
        // A single bin jumping far ahead must not blow up the dense span.
        let mut h = OccupancyHistogram::new(1);
        h.promote(0, 1, 1_000_000);
        h.check_invariants();
        assert_eq!(h.min_load(), 1_000_000);
        assert_eq!(h.max_load(), 1_000_000);
        assert!(h.counts.len() < 8, "span not compacted: {}", h.counts.len());
        h.promote(1_000_000, 1, 3);
        assert_eq!(h.count(1_000_003), 1);
    }

    #[test]
    fn sorted_loads_round_trip() {
        let mut h = OccupancyHistogram::new(5);
        h.promote(0, 2, 2);
        h.promote(0, 1, 1);
        assert_eq!(h.to_sorted_loads(), vec![0, 0, 1, 2, 2]);
    }

    #[test]
    fn scatter_conserves_mass_in_every_path() {
        // (c, h) pairs chosen to hit: single bin, per-hit, per-bin
        // chain, and the hazard walk.
        for (c, h, cap) in [
            (1u64, 1000u64, Some(7u32)),
            (100, 50, Some(3)),
            (50, 5000, Some(4)),
            (1000, 5000, Some(2)),
            (1000, 5000, None),
            (300, 100_000, Some(400)),
        ] {
            let mut hist = OccupancyHistogram::new(c as usize);
            let mut rng = SplitMix64::new(c ^ h);
            let kept = scatter_class(&mut hist, 0, c, h, cap, &mut Vec::new(), &mut rng);
            hist.check_invariants();
            assert!(kept <= h, "c={c} h={h}: kept {kept} > thrown {h}");
            assert!(kept >= 1);
            assert_eq!(total_balls(&hist), kept, "c={c} h={h}");
            if let Some(q) = cap {
                assert!(hist.max_load() <= q, "c={c} h={h}: cap violated");
                assert!(kept <= c * q as u64);
            } else {
                assert_eq!(kept, h, "unbounded scatter must keep everything");
            }
        }
    }

    #[test]
    fn scatter_hazard_mean_matches_exact_path() {
        // Number of untouched bins after h hits on c bins: the hazard
        // walk's level-0 count must agree in mean with the exact
        // per-bin chain, c·(1−1/c)^h.
        let (c, h) = (500u64, 800u64);
        let reps = 600;
        let expect = c as f64 * (1.0 - 1.0 / c as f64).powi(h as i32);
        let mut rng = SplitMix64::new(9);
        let mut mean = 0.0;
        for _ in 0..reps {
            let mut hist = OccupancyHistogram::new(c as usize);
            scatter_class(&mut hist, 0, c, h, None, &mut Vec::new(), &mut rng);
            mean += hist.count(0) as f64 / reps as f64;
        }
        // sd of the estimator ≈ √(c·p(1−p)/reps) ≈ 0.4
        assert!(
            (mean - expect).abs() < 2.5,
            "untouched-bin mean {mean} vs {expect}"
        );
    }

    #[test]
    fn place_below_fills_exact_capacity() {
        let mut hist = OccupancyHistogram::new(16);
        let mut rng = SplitMix64::new(1);
        let stats = place_histogram_below(&mut hist, Some(3), 48, &mut rng);
        assert_eq!(hist.count(3), 16);
        assert!(stats.samples >= 48);
    }

    #[test]
    fn place_below_unbounded_is_one_sample_per_ball() {
        let mut hist = OccupancyHistogram::new(32);
        let mut rng = SplitMix64::new(2);
        let stats = place_histogram_below(&mut hist, None, 10_000, &mut rng);
        hist.check_invariants();
        assert_eq!(stats.samples, 10_000, "one-choice wastes no samples");
        assert_eq!(total_balls(&hist), 10_000);
    }

    #[test]
    fn place_below_single_bin_exact() {
        let mut hist = OccupancyHistogram::new(1);
        let mut rng = SplitMix64::new(3);
        let stats = place_histogram_below(&mut hist, Some(1000), 1000, &mut rng);
        assert_eq!(hist.count(1000), 1);
        assert_eq!(stats.samples, 1000);
    }

    #[test]
    #[should_panic]
    fn place_below_rejects_over_capacity() {
        let mut hist = OccupancyHistogram::new(2);
        let mut rng = SplitMix64::new(4);
        place_histogram_below(&mut hist, Some(2), 5, &mut rng);
    }

    #[test]
    #[should_panic]
    fn place_below_rejects_impossible_threshold() {
        let mut hist = OccupancyHistogram::new(2);
        hist.promote(0, 2, 2);
        let mut rng = SplitMix64::new(5);
        place_histogram_below(&mut hist, Some(1), 1, &mut rng);
    }

    #[test]
    fn place_below_mass_and_bound_across_scales() {
        for (n, count, t) in [
            (8u64, 700u64, 100u32),
            (64, 10_000, 200),
            (500, 40_000, 100),
        ] {
            let mut hist = OccupancyHistogram::new(n as usize);
            let mut rng = SplitMix64::new(count);
            let stats = place_histogram_below(&mut hist, Some(t), count, &mut rng);
            hist.check_invariants();
            assert_eq!(total_balls(&hist), count, "n={n}");
            assert!(hist.max_load() <= t);
            assert!(stats.samples >= count);
        }
    }

    #[test]
    fn least_of_d_prefers_low_classes() {
        // With loads split 0/1, greedy[2] hits the empty class with
        // probability 1 − (1/2)² = 3/4.
        let n = 1000u64;
        let mut hist = OccupancyHistogram::new(n as usize);
        hist.promote(0, n / 2, 1);
        let mut rng = SplitMix64::new(6);
        let balls = 10_000u64;
        let stats = place_least_of_d(&mut hist, 2, balls, &mut rng);
        assert_eq!(stats.samples, 2 * balls);
        hist.check_invariants();
        assert_eq!(total_balls(&hist), balls + n / 2);
        // Two choices keep the spread tight: with 10.5 balls/bin on
        // average the max−min gap sits around 7 (measured against the
        // sequential greedy[2] at this size) — far below one-choice's.
        assert!(hist.min_load() >= 1, "greedy should fill the empty class");
        assert!(
            hist.max_load() - hist.min_load() <= 12,
            "greedy[2] gap blew up"
        );
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let mut rng = SplitMix64::new(7);
        let p = random_permutation(257, &mut rng);
        let mut seen = vec![false; 257];
        for &i in &p {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        // Not the identity (probability 1/257! of a false failure).
        assert!(p.iter().enumerate().any(|(i, &v)| i as u32 != v));
    }

    #[test]
    fn split_binomial_moments_across_regimes() {
        let mut rng = SplitMix64::new(8);
        for (n, p) in [(100u64, 0.3f64), (1_000_000, 0.25)] {
            let reps = 3000;
            let xs: Vec<f64> = (0..reps)
                .map(|_| split_binomial(n, p, &mut rng) as f64)
                .collect();
            let mean = xs.iter().sum::<f64>() / reps as f64;
            let expect = n as f64 * p;
            let sd = (n as f64 * p * (1.0 - p)).sqrt();
            assert!(
                (mean - expect).abs() < 4.0 * sd / (reps as f64).sqrt(),
                "n={n}: mean {mean} vs {expect}"
            );
            assert!(xs.iter().all(|&x| x >= 0.0 && x <= n as f64));
        }
        assert_eq!(split_binomial(10, 0.0, &mut rng), 0);
        assert_eq!(split_binomial(10, 1.0, &mut rng), 10);
    }

    #[test]
    fn hazard_walks_stay_bounded_at_giant_scale() {
        // Regression: at k = h = 2²⁷ the powi-seeded pmf left the walked
        // tail floored above the 1e-12 exhaustion cutoff, and straggler
        // bins rode the walk to j = h — 2²⁷ + 1 cells and a ~3h drift
        // for the repair loop to crawl (minutes per round). The log
        // seed plus the `park_level` bound keep every walk O(λ + √λ).
        let mut cells = Vec::new();
        for seed in 0..20u64 {
            let mut rng = SplitMix64::new(seed);
            occupancy_profile(1 << 27, 1 << 27, &mut cells, &mut rng);
            assert!(
                cells.len() as u64 <= park_level(1 << 27, 1 << 27) + 1,
                "seed {seed}: walk produced {} cells",
                cells.len()
            );
            assert_eq!(cells.iter().sum::<u64>(), 1 << 27);
            let consumed: u64 = cells.iter().enumerate().map(|(j, &c)| j as u64 * c).sum();
            assert_eq!(consumed, 1 << 27);
        }
        // The capped scatter path at the same scale: one class, all of
        // stage 3's intake, threshold 4 — the exact shape that stalled.
        let mut hist = OccupancyHistogram::new(1 << 27);
        let mut rng = SplitMix64::new(7);
        let n = 1u64 << 27;
        let stats = place_histogram_below(&mut hist, Some(2), n, &mut rng);
        hist.check_invariants();
        assert_eq!(total_balls(&hist), n);
        assert!(stats.samples >= n);
    }
}
