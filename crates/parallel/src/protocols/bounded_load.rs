//! Lenzen–Wattenhofer-style bounded-load parallel allocation [12].
//!
//! Reproduction note (see DESIGN.md §2): the published protocol's exact
//! contact schedule is tuned for the `log* n + O(1)` constant; we
//! implement the operational core — *bins accept at most `cap` balls
//! ever; unplaced balls contact `k_r` bins in round `r` with `k_r`
//! doubling; each bin with spare capacity accepts one uniformly random
//! requester per round* — which reproduces the qualitative behaviour:
//! max load exactly ≤ `cap`, a round count that grows extremely slowly
//! with `n`, and O(1) messages per ball.

use super::round_occupancy::{resolve_round_engine, LevelSlots, RoundTrace};
use bib_core::error::ProtocolError;
use bib_core::histogram::{
    distinct_hit_count, rounded_normal_count, split_binomial, OccupancyHistogram,
};
use bib_core::protocol::{Engine, Observer, Outcome, Protocol, RunConfig};
use bib_core::scenario::Scenario;
use bib_rng::{Rng64, RngExt};

/// Rounds whose total contact count is at most this run the exact
/// within-round simulation on exchangeable bins; larger rounds use the
/// moment-matched draws (distinct accepting bins, placed balls).
const EXACT_CONTACTS: u64 = 64;

/// The bounded-load parallel protocol.
///
/// # Examples
///
/// ```
/// use bib_parallel::protocols::BoundedLoad;
/// use bib_rng::SeedSequence;
///
/// let mut rng = SeedSequence::new(1).rng();
/// let out = BoundedLoad::new(2).run(256, 256, &mut rng); // m = n
/// out.validate();
/// assert!(out.max_load() <= 2);        // by construction
/// assert!(out.rounds() <= 10);         // ~log* n
/// assert!(out.messages_per_ball() < 8.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BoundedLoad {
    cap: u32,
    /// Safety limit on rounds (the process must finish far earlier).
    max_rounds: u32,
}

impl BoundedLoad {
    /// Bins accept at most `cap ≥ 1` balls.
    pub fn new(cap: u32) -> Self {
        assert!(cap >= 1, "bin capacity must be ≥ 1");
        Self {
            cap,
            max_rounds: 64,
        }
    }

    /// The per-bin capacity.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// Convenience entry point mirroring the sequential protocols'
    /// shape: runs `m` balls into `n` bins with no observer.
    pub fn run<R: Rng64 + ?Sized>(&self, n: usize, m: u64, rng: &mut R) -> Outcome {
        self.allocate(
            &RunConfig::new(n, m),
            rng,
            &mut bib_core::protocol::NullObserver,
        )
    }

    /// Fallible counterpart of [`BoundedLoad::run`].
    pub fn try_run<R: Rng64 + ?Sized>(
        &self,
        n: usize,
        m: u64,
        rng: &mut R,
    ) -> Result<Outcome, ProtocolError> {
        self.try_allocate(
            &RunConfig::new(n, m),
            rng,
            &mut bib_core::protocol::NullObserver,
        )
    }

    /// Fallible allocation: an infeasible configuration (`m > cap·n`)
    /// or an exhausted round budget comes back as a [`ProtocolError`]
    /// instead of a panic, so a service caller can shed, degrade, or
    /// exit non-zero. [`Protocol::allocate`] is a thin `unwrap` over
    /// this path.
    pub fn try_allocate<R, O>(
        &self,
        cfg: &RunConfig,
        rng: &mut R,
        obs: &mut O,
    ) -> Result<Outcome, ProtocolError>
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        let capacity = u64::from(self.cap) * cfg.n as u64;
        if cfg.m > capacity {
            return Err(ProtocolError::InfeasibleCapacity { m: cfg.m, capacity });
        }
        match resolve_round_engine(cfg.engine, cfg.n, cfg.m, cfg.threads) {
            Engine::Histogram => self.allocate_round_occupancy(cfg, rng, obs),
            Engine::Concurrent => super::concurrent::bounded_load(
                self.cap,
                self.max_rounds,
                self.name(),
                cfg,
                rng,
                obs,
            ),
            _ => self.allocate_faithful(cfg, rng, obs),
        }
    }
}

impl Protocol for BoundedLoad {
    fn name(&self) -> String {
        format!("bounded-load(cap={})", self.cap)
    }

    /// Runs the process; panics (with the [`ProtocolError`] display) if
    /// `m > cap·n` (capacity infeasible) or if the safety round limit
    /// is exceeded (indicates a bug, not bad luck — 64 rounds is
    /// astronomically beyond `log* n`). Callers that want the failure
    /// as a value use [`BoundedLoad::try_allocate`].
    ///
    /// The engine in `cfg` resolves by the parallel family's fixed rule
    /// (see [`super`]): `Faithful`/`Jump` run the per-contact rounds,
    /// `Histogram`/`LevelBatched` the round-occupancy engine,
    /// `Concurrent` the sharded multi-thread engine
    /// ([`super::concurrent`]), `Auto` the measured cutoff
    /// [`Engine::auto_parallel`] (promoted to `Concurrent` when
    /// `cfg.threads > 1`).
    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        self.try_allocate(cfg, rng, obs)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

impl BoundedLoad {
    /// The faithful per-contact path. Per-round cost is
    /// `O(unplaced · k_r)`: requester lists are cleared through the
    /// touched-bin list (never an `O(n)` sweep), and the
    /// placement flags are allocated once — a placed ball never returns,
    /// so its flag never needs resetting.
    fn allocate_faithful<R, O>(
        &self,
        cfg: &RunConfig,
        rng: &mut R,
        obs: &mut O,
    ) -> Result<Outcome, ProtocolError>
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        let (n, m) = (cfg.n, cfg.m);
        assert!(n > 0, "need at least one bin");
        debug_assert!(m <= self.cap as u64 * n as u64, "checked by try_allocate");
        let want_stages = obs.wants_stage_ends();
        let mut loads = vec![0u32; n];
        // Balls still unplaced, by id.
        let mut unplaced: Vec<u32> = (0..m as u32).collect();
        let mut messages = 0u64;
        let mut rounds = 0u32;
        // Per-bin requester lists plus the bins touched this round, both
        // reused across rounds: only touched lists are read and cleared.
        let mut requests: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut touched: Vec<u32> = Vec::new();
        // Placement flags by ball id, allocated once for the whole run.
        let mut placed: Vec<bool> = vec![false; m as usize];
        let mut contacts = 1usize; // k_r: doubles each round
        let mut contacts_cum = 0u64; // Σ k_r — a surviving ball's sent total
        let mut max_contacts = 0u64;

        while !unplaced.is_empty() {
            rounds += 1;
            if rounds > self.max_rounds {
                return Err(ProtocolError::Unconverged {
                    protocol: self.name(),
                    rounds: u64::from(self.max_rounds),
                });
            }
            contacts_cum += contacts as u64;
            // Phase 1: contacts.
            for &ball in &unplaced {
                for _ in 0..contacts {
                    let b = rng.range_usize(n);
                    if requests[b].is_empty() {
                        touched.push(b as u32);
                    }
                    requests[b].push(ball);
                    messages += 1;
                }
            }
            // Phase 2: each bin with spare capacity accepts one uniformly
            // random requester. A ball may receive several acceptances;
            // it takes the first by bin order (any deterministic rule
            // works — the bin keeps its slot only if the ball commits).
            // Touched bins are visited in ascending index order so the
            // tie-break matches the full-scan original exactly.
            touched.sort_unstable();
            for &bin in &touched {
                let reqs = &mut requests[bin as usize];
                if loads[bin as usize] < self.cap {
                    let ball = *rng.choose(reqs);
                    messages += 1; // the accept message
                    if !placed[ball as usize] {
                        placed[ball as usize] = true;
                        loads[bin as usize] += 1;
                    }
                }
                reqs.clear();
            }
            touched.clear();
            // Phase 3: commit placements. Any ball placed this round has
            // sent `contacts_cum` contacts so far — the per-ball max.
            let before = unplaced.len();
            unplaced.retain(|&ball| !placed[ball as usize]);
            if unplaced.len() < before {
                max_contacts = contacts_cum;
            }
            contacts = (contacts * 2).min(n);
            if want_stages {
                obs.on_stage_end(rounds as u64, &loads, m - unplaced.len() as u64);
            }
        }

        Ok(Outcome {
            protocol: self.name(),
            n,
            m,
            total_samples: messages,
            max_samples_per_ball: max_contacts,
            loads: loads.into(),
            scenario: Scenario::rounds(rounds, messages),
        })
    }

    /// The round-occupancy path. A round with `u` unplaced balls and
    /// `k` contacts each collapses to three draws:
    ///
    /// 1. the number of the `u·k` contacts landing on *open* bins
    ///    (load `< cap`) — one binomial split;
    /// 2. the number of **distinct open bins hit** `D` — each sends one
    ///    accept ([`distinct_hit_count`]);
    /// 3. the number of **balls placed** `P` — the accepting bins' picks
    ///    collapse onto distinct balls. The picks are modelled as `D`
    ///    requests drawn without replacement from the `u·k` sent, so a
    ///    ball is missed with probability `q1 ≈ ((T−D)/T)^k`; `P = u −
    ///    missed` is a rounded normal on the closed-form moments,
    ///    clamped to the sure support `[⌈D/k⌉, min(D, u)]`. `k = 1` is
    ///    exact: every pick is a distinct ball, `P = D`.
    ///
    /// The `P` gaining bins are a uniform subset of the open bins
    /// (contacts are load-blind), so the increments spread over the open
    /// occupancy classes without replacement ([`LevelSlots`]). Rounds
    /// with at most 64 total contacts instead run an exact within-round
    /// simulation on exchangeable bins (request walk, per-bin requester
    /// lists, random tie-break order), so small cases stay exact.
    ///
    /// Approximation note: the faithful tie-break ("first accepting bin
    /// by index") is replaced by an exchangeable one; the residual
    /// cross-round correlation (a fixed low-index bin wins every tie it
    /// is part of) is not representable in histogram state and is
    /// bounded by the equivalence suite.
    fn allocate_round_occupancy<R, O>(
        &self,
        cfg: &RunConfig,
        rng: &mut R,
        obs: &mut O,
    ) -> Result<Outcome, ProtocolError>
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        let (n, m) = (cfg.n, cfg.m);
        assert!(n > 0, "need at least one bin");
        debug_assert!(m <= self.cap as u64 * n as u64, "checked by try_allocate");
        let mut hist = OccupancyHistogram::new(n);
        let trace = RoundTrace::new(n, rng, obs);
        let mut unplaced = m;
        let mut messages = 0u64;
        let mut rounds = 0u32;
        let mut level_buf: Vec<(u32, u64)> = Vec::new();
        let mut contacts = 1u64;
        let mut contacts_cum = 0u64;
        let mut max_contacts = 0u64;

        while unplaced > 0 {
            rounds += 1;
            if rounds > self.max_rounds {
                return Err(ProtocolError::Unconverged {
                    protocol: self.name(),
                    rounds: u64::from(self.max_rounds),
                });
            }
            contacts_cum += contacts;
            let total = unplaced * contacts;
            messages += total;
            let open = hist.open_bins(Some(self.cap));
            debug_assert!(open > 0, "unplaced balls but no open bin");

            let placed = if total <= EXACT_CONTACTS {
                let (accepts, placed) =
                    self.exact_round(&mut hist, unplaced, contacts, &mut level_buf, rng);
                messages += accepts;
                placed
            } else {
                // 1. Contacts landing on open bins.
                let t_open = split_binomial(total, open as f64 / n as f64, rng);
                // 2. Distinct open bins hit — one accept message each.
                let d = distinct_hit_count(open, t_open, rng);
                messages += d;
                // 3. Balls placed.
                let placed = if d == 0 {
                    0
                } else if contacts == 1 {
                    d
                } else {
                    // A ball is missed iff none of its k requests is
                    // among the D picked: `Π_{i<k} (T−D−i)/(T−i)`,
                    // approximated with the midpoint-corrected power
                    // `((T−D−(k−1)/2)/(T−(k−1)/2))^k`; the pairwise
                    // miss runs the same product over 2k terms, which
                    // is strictly below q1² — that gap is the negative
                    // association of the missed counts (a missed ball
                    // concentrates the picks on the others).
                    let t = total as f64;
                    let dd = d as f64;
                    let q_miss = |j: f64| -> f64 {
                        let num = t - dd - (j - 1.0) / 2.0;
                        let den = t - (j - 1.0) / 2.0;
                        if num <= 0.0 {
                            0.0
                        } else {
                            (j * (num / den).ln()).exp()
                        }
                    };
                    let q1 = q_miss(contacts as f64);
                    let q2 = q_miss(2.0 * contacts as f64);
                    let u = unplaced as f64;
                    let mean_missed = u * q1;
                    let var = (u * (q1 - q2) + u * u * (q2 - q1 * q1)).max(0.0);
                    let hi_placed = d.min(unplaced);
                    let lo_placed = d.div_ceil(contacts).min(hi_placed);
                    let missed = rounded_normal_count(
                        mean_missed,
                        var,
                        unplaced - hi_placed,
                        unplaced - lo_placed,
                        rng,
                    );
                    unplaced - missed
                };
                // The gaining bins are a uniform size-`placed` subset of
                // the open bins: spread the +1 increments over the open
                // classes.
                let mut slots = LevelSlots::snapshot(&hist, Some(self.cap), level_buf);
                slots.assign(placed, rng, |l, cnt| hist.promote(l, cnt, 1));
                level_buf = slots.into_buf();
                placed
            };

            unplaced -= placed;
            if placed > 0 {
                max_contacts = contacts_cum;
            }
            contacts = (contacts * 2).min(n as u64);
            trace.stage_end(obs, rounds, &hist, m - unplaced);
        }

        Ok(Outcome {
            protocol: self.name(),
            n,
            m,
            total_samples: messages,
            max_samples_per_ball: max_contacts,
            loads: trace.finish(&hist, rng),
            scenario: Scenario::rounds(rounds, messages),
        })
    }

    /// Exact within-round simulation for small rounds (`u·k ≤ 64`): the
    /// contact walk materializes the touched bins with their requester
    /// lists on exchangeable bin indices, each touched bin draws its
    /// occupancy class without replacement, and the accepting bins
    /// resolve in a uniformly random order (the faithful index order is
    /// uniform over the exchangeable labels). Returns `(accept
    /// messages, balls placed)`.
    fn exact_round<R: Rng64 + ?Sized>(
        &self,
        hist: &mut OccupancyHistogram,
        unplaced: u64,
        contacts: u64,
        level_buf: &mut Vec<(u32, u64)>,
        rng: &mut R,
    ) -> (u64, u64) {
        let n = hist.n();
        // Contact walk: touched bins indexed 0.. in discovery order;
        // each contact hits touched bin `r` iff `r < #touched`.
        let mut requesters: Vec<Vec<u32>> = Vec::new();
        for ball in 0..unplaced as u32 {
            for _ in 0..contacts {
                let r = rng.range_u64(n);
                if (r as usize) < requesters.len() {
                    requesters[r as usize].push(ball);
                } else {
                    requesters.push(vec![ball]);
                }
            }
        }
        // Assign each touched bin its occupancy class, without
        // replacement (exact sequential picks — the group is ≤ 64).
        let mut slots = LevelSlots::snapshot(hist, None, std::mem::take(level_buf));
        let mut bin_level: Vec<u32> = Vec::with_capacity(requesters.len());
        for _ in 0..requesters.len() {
            slots.assign(1, rng, |l, _| bin_level.push(l));
        }
        *level_buf = slots.into_buf();
        // Resolve accepts in a uniformly random bin order.
        let mut order: Vec<u32> = (0..requesters.len() as u32).collect();
        rng.shuffle(&mut order);
        let mut placed_flag = vec![false; unplaced as usize];
        let mut accepts = 0u64;
        let mut placed = 0u64;
        for &bi in &order {
            let level = bin_level[bi as usize];
            if level >= self.cap {
                continue; // bin already full at round start
            }
            let ball = *rng.choose(&requesters[bi as usize]);
            accepts += 1;
            if !placed_flag[ball as usize] {
                placed_flag[ball as usize] = true;
                hist.promote(level, 1, 1);
                placed += 1;
            }
        }
        (accepts, placed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_rng::SplitMix64;

    #[test]
    fn max_load_never_exceeds_cap() {
        for seed in 0..5u64 {
            let mut rng = SplitMix64::new(seed);
            let out = BoundedLoad::new(2).run(256, 256, &mut rng);
            out.validate();
            assert!(out.max_load() <= 2, "seed {seed}: {}", out.max_load());
        }
    }

    #[test]
    fn all_balls_placed_at_full_capacity() {
        // m = cap·n is the tight case: every slot must fill.
        let mut rng = SplitMix64::new(7);
        let out = BoundedLoad::new(2).run(64, 128, &mut rng);
        out.validate();
        assert_eq!(out.loads, vec![2u32; 64]);
    }

    #[test]
    fn rounds_grow_very_slowly() {
        // log*-ish: going from n = 2⁸ to n = 2¹⁶ should add at most a
        // few rounds.
        let mut rng = SplitMix64::new(8);
        let small = BoundedLoad::new(2).run(1 << 8, 1 << 8, &mut rng);
        let big = BoundedLoad::new(2).run(1 << 16, 1 << 16, &mut rng);
        assert!(small.rounds() <= 12, "small rounds {}", small.rounds());
        assert!(
            big.rounds() <= small.rounds() + 4,
            "{} vs {}",
            big.rounds(),
            small.rounds()
        );
    }

    #[test]
    fn messages_linear_in_m() {
        let mut rng = SplitMix64::new(9);
        let out = BoundedLoad::new(2).run(1 << 14, 1 << 14, &mut rng);
        assert!(
            out.messages_per_ball() < 12.0,
            "messages per ball {}",
            out.messages_per_ball()
        );
        // The unified record mirrors messages into the allocation time.
        assert_eq!(out.total_samples, out.messages());
        assert!(out.max_samples_per_ball >= 1);
    }

    #[test]
    fn round_observer_fires_once_per_round() {
        use bib_core::protocol::StageTrace;
        let cfg = RunConfig::new(128, 128);
        let mut rng = SplitMix64::new(12);
        let mut trace = StageTrace::new();
        let out = BoundedLoad::new(2).allocate(&cfg, &mut rng, &mut trace);
        out.validate();
        assert_eq!(trace.stages.len(), out.rounds() as usize);
        assert_eq!(trace.stages, (1..=out.rounds() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn zero_balls() {
        let mut rng = SplitMix64::new(10);
        let out = BoundedLoad::new(2).run(8, 0, &mut rng);
        out.validate();
        assert_eq!(out.rounds(), 0);
        assert_eq!(out.messages(), 0);
    }

    #[test]
    fn infeasible_capacity_is_a_typed_error() {
        let mut rng = SplitMix64::new(11);
        let err = BoundedLoad::new(1)
            .try_run(4, 5, &mut rng)
            .expect_err("m > cap·n must be rejected");
        assert_eq!(err, ProtocolError::InfeasibleCapacity { m: 5, capacity: 4 });
        assert_eq!(
            err.to_string(),
            "infeasible: m = 5 exceeds total capacity 4"
        );
        // The concurrent engine rejects it too (as a value, no panic).
        let mut rng = SplitMix64::new(11);
        let cfg = RunConfig::new(4, 5).with_threads(2);
        let err = BoundedLoad::new(1)
            .try_allocate(&cfg, &mut rng, &mut bib_core::protocol::NullObserver)
            .expect_err("concurrent path must also reject");
        assert!(matches!(err, ProtocolError::InfeasibleCapacity { .. }));
    }

    #[test]
    #[should_panic(expected = "infeasible: m = 5 exceeds total capacity 4")]
    fn infallible_entry_point_panics_with_the_error_display() {
        let mut rng = SplitMix64::new(11);
        BoundedLoad::new(1).run(4, 5, &mut rng);
    }
}
