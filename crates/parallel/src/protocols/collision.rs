//! Collision-style parallel allocation (Adler, Chakrabarti,
//! Mitzenmacher & Rasmussen [1] flavour).
//!
//! Round structure: every unplaced ball contacts one uniformly random
//! bin; a bin *accepts all* its requesters in this round if they number
//! at most `c` (the collision threshold), otherwise it rejects them all.
//! Accepted balls are placed; rejected balls retry next round. For
//! `m = n` and constant `c` the expected number of unplaced balls drops
//! doubly exponentially, giving `O(log log n)` rounds.

use bib_core::protocol::{Observer, Outcome, Protocol, RunConfig};
use bib_core::scenario::Scenario;
use bib_rng::{Rng64, RngExt};

/// The collision protocol.
///
/// Degenerate inputs can livelock the pure protocol (e.g. `n = 1`,
/// `m = 2`, `c = 1`: both balls collide in the only bin forever). After
/// [`Collision::STALL_LIMIT`] consecutive rounds with no placement the
/// implementation falls back to one-choice placement for the remaining
/// balls — a documented deviation that only fires outside the `m ≤ n`
/// regime the protocol is designed for.
#[derive(Debug, Clone, Copy)]
pub struct Collision {
    c: u32,
    max_rounds: u32,
}

impl Collision {
    /// Collision threshold `c ≥ 1`.
    pub fn new(c: u32) -> Self {
        assert!(c >= 1, "collision threshold must be ≥ 1");
        Self { c, max_rounds: 256 }
    }

    /// The collision threshold.
    pub fn c(&self) -> u32 {
        self.c
    }

    /// Consecutive zero-progress rounds tolerated before the one-choice
    /// fallback kicks in.
    pub const STALL_LIMIT: u32 = 8;

    /// Convenience entry point mirroring the sequential protocols'
    /// shape: runs `m` balls into `n` bins with no observer.
    pub fn run<R: Rng64 + ?Sized>(&self, n: usize, m: u64, rng: &mut R) -> Outcome {
        self.allocate(
            &RunConfig::new(n, m),
            rng,
            &mut bib_core::protocol::NullObserver,
        )
    }
}

impl Protocol for Collision {
    fn name(&self) -> String {
        format!("collision(c={})", self.c)
    }

    /// Runs the process to completion; panics only if the safety round
    /// cap (256) is hit, which indicates a bug. The engine in `cfg` is
    /// ignored: round protocols have one execution path.
    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        let (n, m) = (cfg.n, cfg.m);
        assert!(n > 0, "need at least one bin");
        let want_stages = obs.wants_stage_ends();
        let mut loads = vec![0u32; n];
        let mut unplaced = m;
        let mut messages = 0u64;
        let mut rounds = 0u32;
        // Per-bin requester counts, reused.
        let mut counts = vec![0u32; n];
        // Ball ids are interchangeable here (no per-ball state), so we
        // track only the count and re-sample contacts per round.
        let mut stalled = 0u32;
        while unplaced > 0 {
            rounds += 1;
            assert!(
                rounds <= self.max_rounds,
                "collision protocol failed to converge in {} rounds",
                self.max_rounds
            );
            counts.iter_mut().for_each(|c| *c = 0);
            for _ in 0..unplaced {
                let b = rng.range_usize(n);
                counts[b] += 1;
                messages += 1;
            }
            let mut placed_this_round = 0u64;
            for (bin, &c) in counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if c <= self.c {
                    loads[bin] += c;
                    placed_this_round += c as u64;
                    messages += c as u64; // accept messages
                }
            }
            unplaced -= placed_this_round;
            if placed_this_round == 0 {
                stalled += 1;
                if stalled >= Self::STALL_LIMIT {
                    // Livelock (only possible far outside the m ≤ n design
                    // regime): finish with one-choice placements in one
                    // extra round.
                    rounds += 1;
                    for _ in 0..unplaced {
                        loads[rng.range_usize(n)] += 1;
                        messages += 2; // request + forced accept
                    }
                    unplaced = 0;
                }
            } else {
                stalled = 0;
            }
            if want_stages {
                obs.on_stage_end(rounds as u64, &loads, m - unplaced);
            }
        }
        Outcome {
            protocol: self.name(),
            n,
            m,
            total_samples: messages,
            // Balls are interchangeable: the worst-off ball contacted a
            // bin once in every round (exact — some ball survives to
            // the last placing round).
            max_samples_per_ball: if m > 0 { rounds as u64 } else { 0 },
            loads,
            scenario: Scenario::rounds(rounds, messages),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_rng::SplitMix64;

    #[test]
    fn terminates_and_conserves_mass() {
        for seed in 0..5u64 {
            let mut rng = SplitMix64::new(seed);
            let out = Collision::new(1).run(512, 512, &mut rng);
            out.validate();
            assert!(out.rounds() >= 1);
        }
    }

    #[test]
    fn rounds_are_log_log_ish() {
        // With c = 1 and m = n, rounds should stay in the single digits
        // well past n = 10⁵ (log log n ≈ 4).
        let mut rng = SplitMix64::new(6);
        let out = Collision::new(1).run(1 << 17, 1 << 17, &mut rng);
        assert!(out.rounds() <= 15, "rounds {}", out.rounds());
    }

    #[test]
    fn larger_threshold_fewer_rounds() {
        let mut r1 = SplitMix64::new(7);
        let mut r2 = SplitMix64::new(7);
        let tight = Collision::new(1).run(1 << 14, 1 << 14, &mut r1);
        let loose = Collision::new(4).run(1 << 14, 1 << 14, &mut r2);
        assert!(
            loose.rounds() <= tight.rounds(),
            "{} vs {}",
            loose.rounds(),
            tight.rounds()
        );
    }

    #[test]
    fn max_load_bounded_by_c_times_rounds() {
        let mut rng = SplitMix64::new(8);
        let out = Collision::new(2).run(1024, 1024, &mut rng);
        assert!(out.max_load() <= 2 * out.rounds());
        // Empirically far smaller: a bin rarely wins twice.
        assert!(out.max_load() <= 8, "max load {}", out.max_load());
    }

    #[test]
    fn zero_balls() {
        let mut rng = SplitMix64::new(9);
        let out = Collision::new(1).run(4, 0, &mut rng);
        out.validate();
        assert_eq!(out.rounds(), 0);
    }
}
