//! `balls-into-bins` — a reproduction of *Balls-into-Bins with Nearly
//! Optimal Load Distribution* (Berenbrink, Khodamoradi, Sauerwald &
//! Stauffer, SPAA 2013).
//!
//! This facade crate re-exports the workspace's public surface:
//!
//! * [`core`] — the `adaptive` and `threshold` protocols, all baselines,
//!   load structures, potentials and the run harness;
//! * [`rng`] — deterministic PRNGs, seeding and samplers;
//! * [`analysis`] — exact distributions, concentration bounds, the
//!   paper's numeric constants and summary statistics;
//! * [`parallel`] — parallel replication and round-based parallel
//!   protocols;
//! * [`reloc`] — reallocation schemes (CRS self-balancing, cuckoo
//!   hashing).
//!
//! See the `examples/` directory for runnable walkthroughs and the
//! `bib-bench` crate for the per-table/figure experiment binaries.
//!
//! # Example
//!
//! ```
//! use balls_into_bins::core::prelude::*;
//!
//! // Allocate one million balls into ten thousand bins without knowing
//! // m in advance, with the jump engine for speed.
//! let cfg = RunConfig::new(10_000, 1_000_000).with_engine(Engine::Jump);
//! let out = run_protocol(&Adaptive::paper(), &cfg, 7);
//! assert!(out.max_load() as u64 <= cfg.max_load_bound());
//! assert!(out.time_ratio() < 3.0); // Theorem 3.1: O(m) samples
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bib_analysis as analysis;
pub use bib_core as core;
pub use bib_parallel as parallel;
pub use bib_reloc as reloc;
pub use bib_rng as rng;
