//! `balls-into-bins` command-line interface.
//!
//! ```text
//! balls-into-bins list
//! balls-into-bins constants
//! balls-into-bins run --protocol adaptive --n 10000 --m 1000000 \
//!     [--seed 2013] [--engine jump|faithful|level-batched|histogram|auto] [--reps 1] [--trace]
//! ```
//!
//! `run` prints one summary line per replicate (CSV with a header), or a
//! per-stage potential trace with `--trace` (single replicate).

use balls_into_bins::core::prelude::*;
use balls_into_bins::core::protocol::StageTrace;
use balls_into_bins::core::protocols::by_name;
use balls_into_bins::core::run::{replicate_seed, run_with_observer};
use balls_into_bins::rng::SeedSequence;

const PROTOCOLS: &[&str] = &[
    "one-choice",
    "greedy[2]",
    "greedy[3]",
    "left[2]",
    "memory(1,1)",
    "threshold",
    "adaptive",
    "adaptive-tight",
];

fn usage() -> ! {
    eprintln!(
        "usage:\n  balls-into-bins list\n  balls-into-bins constants\n  \
         balls-into-bins run --protocol <name> --n <bins> --m <balls>\n      \
         [--seed <u64>] [--engine jump|faithful|level-batched|histogram|auto] [--reps <count>] [--trace]\n\n\
         protocols: {}",
        PROTOCOLS.join(", ")
    );
    std::process::exit(2)
}

fn parse_u64(v: Option<String>, flag: &str) -> u64 {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("error: {flag} needs an unsigned integer");
        usage()
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("list") => {
            for p in PROTOCOLS {
                println!("{p}");
            }
        }
        Some("constants") => {
            println!("{}", balls_into_bins::analysis::paper::constants());
        }
        Some("run") => {
            let mut protocol = None;
            let mut n = None;
            let mut m = None;
            let mut seed = 2013u64;
            let mut engine = Engine::Jump;
            let mut reps = 1u64;
            let mut trace = false;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--protocol" => protocol = args.next(),
                    "--n" => n = Some(parse_u64(args.next(), "--n") as usize),
                    "--m" => m = Some(parse_u64(args.next(), "--m")),
                    "--seed" => seed = parse_u64(args.next(), "--seed"),
                    "--reps" => reps = parse_u64(args.next(), "--reps"),
                    "--trace" => trace = true,
                    "--engine" => match args.next().as_deref().map(str::parse) {
                        Some(Ok(e)) => engine = e,
                        Some(Err(msg)) => {
                            eprintln!("error: {msg}");
                            usage()
                        }
                        None => {
                            eprintln!("error: --engine needs a value");
                            usage()
                        }
                    },
                    other => {
                        eprintln!("error: unknown flag {other}");
                        usage()
                    }
                }
            }
            let (Some(pname), Some(n), Some(m)) = (protocol, n, m) else {
                eprintln!("error: run needs --protocol, --n and --m");
                usage()
            };
            let Some(proto) = by_name(&pname) else {
                eprintln!("error: unknown protocol {pname}");
                usage()
            };
            let cfg = RunConfig::new(n, m).with_engine(engine);

            if trace {
                let mut st = StageTrace::new();
                let out = run_with_observer(proto.as_ref(), &cfg, seed, &mut st);
                println!("stage,psi,ln_phi,gap");
                for i in 0..st.stages.len() {
                    println!(
                        "{},{:.4},{:.4},{}",
                        st.stages[i], st.psi[i], st.ln_phi[i], st.gaps[i]
                    );
                }
                eprintln!(
                    "# {}: samples={} T/m={:.4} max={} gap={}",
                    out.protocol,
                    out.total_samples,
                    out.time_ratio(),
                    out.max_load(),
                    out.gap()
                );
            } else {
                println!("replicate,protocol,n,m,samples,time_ratio,max_load,gap,psi");
                for rep in 0..reps {
                    let s = replicate_seed(seed, &proto.name(), rep);
                    let mut rng = SeedSequence::new(s).rng();
                    let out = proto.allocate(&cfg, &mut rng, &mut NullObserver);
                    out.validate();
                    println!(
                        "{},{},{},{},{},{:.6},{},{},{:.4}",
                        rep,
                        out.protocol,
                        out.n,
                        out.m,
                        out.total_samples,
                        out.time_ratio(),
                        out.max_load(),
                        out.gap(),
                        out.psi()
                    );
                }
            }
        }
        _ => usage(),
    }
}
