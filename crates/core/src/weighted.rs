//! Heterogeneous-capacity extension: bins with weights.
//!
//! The paper's model gives every bin the same capacity share. A natural
//! extension (think servers of different sizes) assigns bin `j` a weight
//! `w_j > 0`; bin `j`'s *fair share* of `t` balls is `t·w_j/W` where
//! `W = Σ w`. The weighted analogue of `adaptive` then samples bins
//! **proportionally to weight** (via an alias table) and accepts bin `j`
//! for ball `i` iff
//!
//! ```text
//! load_j < i·w_j/W + 1
//! ```
//!
//! which degenerates to the paper's protocol for uniform weights and
//! yields the per-bin guarantee `load_j ≤ ⌈m·w_j/W⌉ + 1` by the same
//! one-line argument as in the uniform case. Feasibility also carries
//! over: if every bin had `load_j ≥ i·w_j/W + 1` then summing gives
//! `i − 1 ≥ Σ load_j ≥ i + n`, a contradiction.
//!
//! This module is an *extension*, not part of the paper's claims; the
//! `weighted_adaptive` experiment treats it as an ablation of the
//! uniformity assumption.

use crate::bins::LoadVector;
use bib_rng::dist::{AliasTable, Distribution};
use bib_rng::Rng64;

/// Outcome of a weighted allocation run.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedOutcome {
    /// Protocol display name.
    pub protocol: String,
    /// Bin weights (normalised copies are kept internally by the run).
    pub weights: Vec<f64>,
    /// Balls placed.
    pub m: u64,
    /// Total bin samples (allocation time).
    pub total_samples: u64,
    /// Final loads.
    pub loads: Vec<u32>,
}

impl WeightedOutcome {
    /// Per-bin overload: `load_j − m·w_j/W` (positive = above fair
    /// share). The weighted max-load guarantee bounds this by ≤ 2
    /// (⌈·⌉ rounding plus the +1 slack).
    pub fn overloads(&self) -> Vec<f64> {
        let w_total: f64 = self.weights.iter().sum();
        self.loads
            .iter()
            .zip(&self.weights)
            .map(|(&l, &w)| l as f64 - self.m as f64 * w / w_total)
            .collect()
    }

    /// The largest per-bin overload.
    pub fn max_overload(&self) -> f64 {
        self.overloads()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Allocation time per ball.
    pub fn time_ratio(&self) -> f64 {
        if self.m == 0 {
            0.0
        } else {
            self.total_samples as f64 / self.m as f64
        }
    }

    /// Weighted quadratic potential `Σ_j (load_j − m·w_j/W)²`.
    pub fn weighted_psi(&self) -> f64 {
        self.overloads().iter().map(|d| d * d).sum()
    }

    /// Asserts mass conservation.
    pub fn validate(&self) {
        assert_eq!(self.loads.len(), self.weights.len());
        assert_eq!(self.loads.iter().map(|&l| l as u64).sum::<u64>(), self.m);
    }
}

/// The weighted adaptive protocol.
///
/// # Examples
///
/// ```
/// use bib_core::weighted::WeightedAdaptive;
/// use bib_rng::SeedSequence;
///
/// // One big server (weight 3) and three small ones.
/// let proto = WeightedAdaptive::new(vec![3.0, 1.0, 1.0, 1.0]);
/// let mut rng = SeedSequence::new(5).rng();
/// let out = proto.run(6_000, &mut rng);
/// out.validate();
/// // Every bin within +2 of its fair share m·w/W.
/// assert!(out.max_overload() <= 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct WeightedAdaptive {
    weights: Vec<f64>,
}

impl WeightedAdaptive {
    /// Creates the protocol; panics if `weights` is empty or any weight
    /// is non-positive/non-finite.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need at least one bin");
        for &w in &weights {
            assert!(
                w > 0.0 && w.is_finite(),
                "weights must be positive and finite, got {w}"
            );
        }
        Self { weights }
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Whether bin `j` accepts ball `i` at load `l`:
    /// `l < i·w_j/W + 1`.
    fn accepts(&self, w_total: f64, i: u64, j: usize, l: u32) -> bool {
        (l as f64) < i as f64 * self.weights[j] / w_total + 1.0
    }

    /// Runs the full allocation of `m` balls.
    pub fn run<R: Rng64 + ?Sized>(&self, m: u64, rng: &mut R) -> WeightedOutcome {
        let n = self.weights.len();
        let w_total: f64 = self.weights.iter().sum();
        let alias = AliasTable::new(&self.weights);
        let mut loads = LoadVector::new(n);
        let mut samples = 0u64;
        for i in 1..=m {
            loop {
                samples += 1;
                let j = alias.sample(rng);
                if self.accepts(w_total, i, j, loads.load(j)) {
                    loads.place(j);
                    break;
                }
            }
        }
        WeightedOutcome {
            protocol: "weighted-adaptive".into(),
            weights: self.weights.clone(),
            m,
            total_samples: samples,
            loads: loads.into_loads(),
        }
    }
}

/// Weighted one-choice baseline: each ball joins one weight-proportional
/// sample, no retry.
#[derive(Debug, Clone)]
pub struct WeightedOneChoice {
    weights: Vec<f64>,
}

impl WeightedOneChoice {
    /// Creates the baseline; same validation as [`WeightedAdaptive`].
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need at least one bin");
        for &w in &weights {
            assert!(w > 0.0 && w.is_finite(), "bad weight {w}");
        }
        Self { weights }
    }

    /// Runs the full allocation of `m` balls.
    pub fn run<R: Rng64 + ?Sized>(&self, m: u64, rng: &mut R) -> WeightedOutcome {
        let alias = AliasTable::new(&self.weights);
        let mut loads = LoadVector::new(self.weights.len());
        for _ in 0..m {
            loads.place(alias.sample(rng));
        }
        WeightedOutcome {
            protocol: "weighted-one-choice".into(),
            weights: self.weights.clone(),
            m,
            total_samples: m,
            loads: loads.into_loads(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_rng::SplitMix64;

    #[test]
    fn uniform_weights_match_guarantee() {
        let n = 64usize;
        let m = 64 * 16u64;
        let p = WeightedAdaptive::new(vec![1.0; n]);
        let mut rng = SplitMix64::new(1);
        let out = p.run(m, &mut rng);
        out.validate();
        // Uniform fair share: the paper's ⌈m/n⌉ + 1 bound.
        let bound = m.div_ceil(n as u64) + 1;
        assert!(out.loads.iter().all(|&l| (l as u64) <= bound));
        assert!(out.max_overload() <= 2.0 + 1e-9);
    }

    #[test]
    fn per_bin_guarantee_holds_for_skewed_weights() {
        // Weights 1..=n: bin j's share is proportional to j.
        let n = 32usize;
        let weights: Vec<f64> = (1..=n).map(|j| j as f64).collect();
        let w_total: f64 = weights.iter().sum();
        let m = 4_000u64;
        let p = WeightedAdaptive::new(weights.clone());
        for seed in 0..5u64 {
            let mut rng = SplitMix64::new(seed);
            let out = p.run(m, &mut rng);
            out.validate();
            for (j, &l) in out.loads.iter().enumerate() {
                let fair = m as f64 * weights[j] / w_total;
                assert!(
                    (l as f64) <= fair.ceil() + 1.0 + 1e-9,
                    "seed {seed} bin {j}: load {l} fair {fair}"
                );
            }
        }
    }

    #[test]
    fn allocation_time_stays_linear_with_skew() {
        let n = 256usize;
        // Two classes: heavy bins (weight 8) and light bins (weight 1).
        let weights: Vec<f64> = (0..n).map(|j| if j % 4 == 0 { 8.0 } else { 1.0 }).collect();
        let m = 16_000u64;
        let mut rng = SplitMix64::new(7);
        let out = WeightedAdaptive::new(weights).run(m, &mut rng);
        out.validate();
        assert!(out.time_ratio() < 4.0, "time ratio {}", out.time_ratio());
    }

    #[test]
    fn weighted_one_choice_tracks_fair_share_only_on_average() {
        let weights: Vec<f64> = vec![1.0, 3.0];
        let m = 40_000u64;
        let mut rng = SplitMix64::new(9);
        let out = WeightedOneChoice::new(weights).run(m, &mut rng);
        out.validate();
        // Means near 10k / 30k, but deviation ~ √m ≫ the adaptive bound.
        assert!((out.loads[0] as f64 - 10_000.0).abs() < 600.0);
        assert!((out.loads[1] as f64 - 30_000.0).abs() < 600.0);
    }

    #[test]
    fn weighted_adaptive_beats_one_choice_on_overload() {
        let n = 64usize;
        let weights: Vec<f64> = (0..n).map(|j| 1.0 + (j % 5) as f64).collect();
        let m = 64 * 64u64;
        let mut r1 = SplitMix64::new(11);
        let mut r2 = SplitMix64::new(11);
        let ada = WeightedAdaptive::new(weights.clone()).run(m, &mut r1);
        let one = WeightedOneChoice::new(weights).run(m, &mut r2);
        assert!(ada.max_overload() <= 2.0 + 1e-9);
        assert!(one.max_overload() > ada.max_overload());
        assert!(ada.weighted_psi() < one.weighted_psi());
    }

    #[test]
    fn zero_balls_and_single_bin() {
        let mut rng = SplitMix64::new(13);
        let out = WeightedAdaptive::new(vec![2.5]).run(0, &mut rng);
        out.validate();
        assert_eq!(out.total_samples, 0);
        let out = WeightedAdaptive::new(vec![2.5]).run(9, &mut rng);
        assert_eq!(out.loads, vec![9]);
    }

    #[test]
    #[should_panic]
    fn rejects_non_positive_weight() {
        WeightedAdaptive::new(vec![1.0, 0.0]);
    }
}
