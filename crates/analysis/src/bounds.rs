//! Evaluators for the concentration inequalities of Appendix A.
//!
//! Each function returns the *value of the bound*, so experiments can
//! print "empirical tail vs. Theorem A.x bound" side by side and tests can
//! check that the empirical process never violates the theory (up to
//! statistical noise).

/// Hoeffding's inequality (Theorem A.2): for `n` independent binary random
/// variables with sum `X`, `Pr[|X − E X| ≥ λ] ≤ 2 e^{−λ²/n}`.
///
/// (This is the convention used in the paper's proof of Theorem 4.1, where
/// it is applied with `λ = √(n log n)`.)
pub fn hoeffding_binary(n: u64, lambda: f64) -> f64 {
    assert!(n > 0, "hoeffding_binary: n must be positive");
    assert!(lambda >= 0.0, "hoeffding_binary: λ must be non-negative");
    (2.0 * (-(lambda * lambda) / n as f64).exp()).min(1.0)
}

/// Azuma's inequality (Theorem A.3): for a martingale with bounded
/// differences `|X_k − X_{k−1}| ≤ c_k`,
/// `Pr[|X_n − X_0| ≥ ε] ≤ 2 exp(−ε² / (2 Σ c_k²))`.
pub fn azuma(cs: &[f64], eps: f64) -> f64 {
    assert!(!cs.is_empty(), "azuma: need at least one difference bound");
    assert!(eps >= 0.0, "azuma: ε must be non-negative");
    let s2: f64 = cs.iter().map(|c| c * c).sum();
    (2.0 * (-(eps * eps) / (2.0 * s2)).exp()).min(1.0)
}

/// Poisson lower-tail Chernoff bound (Theorem A.4, first part):
/// `Pr[Poi(μ) ≤ (1−ε)μ] ≤ e^{−ε²μ/2}`.
pub fn poisson_lower_tail(mu: f64, eps: f64) -> f64 {
    assert!(mu > 0.0, "poisson_lower_tail: μ must be positive");
    assert!(
        (0.0..=1.0).contains(&eps),
        "poisson_lower_tail: ε must be in [0,1]"
    );
    (-(eps * eps) * mu / 2.0).exp().min(1.0)
}

/// Poisson upper-tail Chernoff bound (Theorem A.4, second part):
/// `Pr[Poi(μ) ≥ (1+ε)μ] ≤ [e^ε (1+ε)^{−(1+ε)}]^μ`.
pub fn poisson_upper_tail(mu: f64, eps: f64) -> f64 {
    assert!(mu > 0.0, "poisson_upper_tail: μ must be positive");
    assert!(eps >= 0.0, "poisson_upper_tail: ε must be non-negative");
    // Work in log space to avoid under/overflow for large μ.
    let ln_base = eps - (1.0 + eps) * (1.0 + eps).ln();
    (ln_base * mu).exp().min(1.0)
}

/// Chernoff bound for a sum of `n` i.i.d. geometric variables with
/// success probability `δ` (Theorem A.5): with `μ = n/δ`,
/// `Pr[X ≥ (1+ε)μ] ≤ e^{−ε²n/(2(1+ε))}`.
pub fn geometric_sum_tail(n: u64, eps: f64) -> f64 {
    assert!(n > 0, "geometric_sum_tail: n must be positive");
    assert!(eps >= 0.0, "geometric_sum_tail: ε must be non-negative");
    (-(eps * eps) * n as f64 / (2.0 * (1.0 + eps)))
        .exp()
        .min(1.0)
}

/// The extension to sub-geometric variables (Theorem A.6): variables on ℕ
/// with `Pr[X = k+1] ≤ (1−δ) Pr[X = k]` for all `k ≥ 1` satisfy the same
/// tail bound as geometric sums, and `E X_i ≤ 1/δ`.
///
/// This helper checks the *precondition* on an explicit pmf prefix and
/// returns the resulting `(mean_bound, tail_fn_eps)` closure inputs;
/// see `theorem_a6_precondition_holds` for the check alone.
pub fn theorem_a6_precondition_holds(pmf: &[f64], delta: f64) -> bool {
    assert!((0.0..1.0).contains(&delta), "delta must be in (0,1)");
    // pmf[k] = Pr[X = k+1] for k ≥ 0 (support starts at 1).
    pmf.windows(2).all(|w| w[1] <= (1.0 - delta) * w[0] + 1e-15)
}

/// Multiplicative Chernoff bound for binomials:
/// `Pr[X ≥ (1+ε) E X] ≤ exp(−min(ε², ε) · E X / 3)`, as used in the proof
/// of Lemma 4.2.
pub fn binomial_upper_tail(mean: f64, eps: f64) -> f64 {
    assert!(mean > 0.0, "binomial_upper_tail: mean must be positive");
    assert!(eps >= 0.0, "binomial_upper_tail: ε must be non-negative");
    (-(eps * eps).min(eps) * mean / 3.0).exp().min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Poisson;

    #[test]
    fn hoeffding_is_trivial_at_zero_and_decays() {
        assert_eq!(hoeffding_binary(100, 0.0), 1.0);
        let a = hoeffding_binary(100, 5.0);
        let b = hoeffding_binary(100, 10.0);
        assert!(a > b && b > 0.0);
    }

    #[test]
    fn hoeffding_dominates_exact_binomial_tail() {
        // For Bin(n, 1/2), Pr[|X − n/2| ≥ λ] must be ≤ the bound.
        let n = 200u64;
        let d = crate::dist::Binomial::new(n, 0.5);
        for lam in [5.0f64, 10.0, 20.0] {
            let lo = (n as f64 / 2.0 - lam).floor();
            let hi = (n as f64 / 2.0 + lam).ceil() as u64;
            let exact = d.cdf(lo.max(0.0) as u64) + d.sf(hi.min(n));
            assert!(
                exact <= hoeffding_binary(n, lam) + 1e-12,
                "λ={lam} exact={exact}"
            );
        }
    }

    #[test]
    fn azuma_matches_hoeffding_for_unit_increments() {
        // With all c_i = 1 Azuma gives 2e^{−ε²/2n}; cross-check shape.
        let cs = vec![1.0; 50];
        let v = azuma(&cs, 10.0);
        assert!((v - 2.0 * (-(100.0) / 100.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn poisson_chernoff_dominates_exact_tails() {
        let mu = 40.0;
        let d = Poisson::new(mu);
        for &eps in &[0.1, 0.25, 0.5] {
            let k_lo = ((1.0 - eps) * mu).floor() as u64;
            let exact_lo = d.cdf(k_lo);
            assert!(
                exact_lo <= poisson_lower_tail(mu, eps) + 1e-12,
                "eps={eps} exact={exact_lo}"
            );
            let k_hi = ((1.0 + eps) * mu).ceil() as u64;
            let exact_hi = d.tail(k_hi);
            assert!(
                exact_hi <= poisson_upper_tail(mu, eps) + 1e-12,
                "eps={eps} exact={exact_hi}"
            );
        }
    }

    #[test]
    fn theorem41_tail_regime() {
        // The proof of Theorem 4.1 uses ε = ϕ^{3/4}/α with α = ϕ + ϕ^{3/4} + 1
        // and concludes Pr[Y ≤ ϕ+1] ≤ e^{−α^{1/2}/4}. Check our evaluator
        // reproduces an at-least-as-strong bound for a concrete ϕ.
        let phi = 256.0f64;
        let alpha = phi + phi.powf(0.75) + 1.0;
        let eps = phi.powf(0.75) / alpha;
        let bound = poisson_lower_tail(alpha, eps);
        assert!(bound <= (-(alpha.sqrt()) / 4.0).exp() * 1.01);
    }

    #[test]
    fn geometric_sum_tail_sane() {
        assert_eq!(geometric_sum_tail(10, 0.0), 1.0);
        assert!(geometric_sum_tail(100, 1.0) < 1e-10);
    }

    #[test]
    fn theorem_a6_precondition_detects_ratio() {
        // Geometric(0.5) pmf on {1,2,...}: 0.5, 0.25, 0.125, ...
        let pmf: Vec<f64> = (0..10).map(|k| 0.5f64.powi(k + 1)).collect();
        assert!(theorem_a6_precondition_holds(&pmf, 0.5));
        assert!(theorem_a6_precondition_holds(&pmf, 0.4));
        assert!(!theorem_a6_precondition_holds(&pmf, 0.6));
    }

    #[test]
    fn binomial_upper_tail_dominates_exact() {
        let d = crate::dist::Binomial::new(500, 0.1);
        let mean = d.mean();
        for &eps in &[0.2, 0.5, 1.0] {
            let k = ((1.0 + eps) * mean).ceil() as u64;
            assert!(
                d.tail(k) <= binomial_upper_tail(mean, eps) + 1e-12,
                "eps={eps}"
            );
        }
    }
}
