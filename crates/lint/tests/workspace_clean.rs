//! The meta-test: the live workspace itself must satisfy every rule,
//! modulo the committed `lint.toml` ratchet — plus binary-level tests
//! of the CLI's exit-code contract (0 clean, 1 findings, 2 usage).

use lint::config::parse_allowlist;
use lint::{audit_workspace, find_workspace_root};
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(manifest).expect("crates/lint lives inside the workspace")
}

#[test]
fn live_workspace_is_clean_modulo_allowlist() {
    let root = workspace_root();
    let audit = audit_workspace(&root);
    assert!(
        audit.files.len() >= 50,
        "workspace walk found only {} files — skip list too broad?",
        audit.files.len()
    );
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("committed lint.toml");
    let allowlist = parse_allowlist(&toml).expect("lint.toml parses");
    let findings = lint::config::apply_allowlist(audit.findings, &allowlist);
    assert!(
        findings.is_empty(),
        "the workspace is not lint-clean:\n{}",
        findings
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn allowlist_is_a_live_ratchet() {
    // Every grandfathered entry still matches real findings: stale
    // entries would make apply_allowlist itself report (rule
    // `allowlist`), which the clean meta-test above would catch — here
    // we check the entries point at files that still exist.
    let root = workspace_root();
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("committed lint.toml");
    for entry in parse_allowlist(&toml).expect("lint.toml parses") {
        assert!(
            root.join(&entry.file).is_file(),
            "lint.toml entry for missing file {}",
            entry.file
        );
    }
}

fn lint_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lint"))
}

#[test]
fn binary_exits_zero_on_the_real_workspace() {
    let out = lint_bin()
        .args(["--workspace", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run lint binary");
    assert!(
        out.status.success(),
        "lint --workspace failed on the live tree:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn binary_json_report_is_emitted() {
    let out = lint_bin()
        .args(["--workspace", "--json", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run lint binary");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"schema\": \"balls-lint/v1\""), "{text}");
    assert!(text.contains("\"findings\": []"), "{text}");
}

/// A scratch workspace with one injected source file, torn down on drop.
struct ScratchWorkspace {
    root: PathBuf,
}

impl ScratchWorkspace {
    fn new(tag: &str, injected_rel: &str, injected_src: &str) -> Self {
        let root = std::env::temp_dir().join(format!("balls-lint-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let file = root.join(injected_rel);
        std::fs::create_dir_all(file.parent().expect("injected path has a parent"))
            .expect("create scratch dirs");
        std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n")
            .expect("write scratch manifest");
        std::fs::write(file, injected_src).expect("write injected source");
        Self { root }
    }
}

impl Drop for ScratchWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn binary_exits_nonzero_on_injected_violations() {
    // The acceptance criterion: each golden violating fixture, injected
    // into a scratch workspace at an in-scope path, must fail the run
    // with exit code 1 (finding), not 2 (usage error).
    let cases: &[(&str, &str, &str)] = &[
        (
            "d1",
            "crates/core/src/bad.rs",
            include_str!("fixtures/d1/violating.rs"),
        ),
        (
            "d2",
            "crates/parallel/tests/bad.rs",
            include_str!("fixtures/d2/violating.rs"),
        ),
        (
            "d3",
            "crates/rng/src/bad.rs",
            include_str!("fixtures/d3/violating.rs"),
        ),
        (
            "p1",
            "crates/core/src/bad.rs",
            include_str!("fixtures/p1/violating.rs"),
        ),
        (
            "n1",
            "crates/core/src/bad.rs",
            include_str!("fixtures/n1/violating.rs"),
        ),
        (
            "c1",
            "crates/parallel/src/bad.rs",
            include_str!("fixtures/c1/violating.rs"),
        ),
    ];
    for (tag, rel, src) in cases {
        let scratch = ScratchWorkspace::new(tag, rel, src);
        let out = lint_bin()
            .args(["--workspace", "--root"])
            .arg(&scratch.root)
            .output()
            .expect("run lint binary");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{tag}: injected violation should exit 1:\nstdout: {}\nstderr: {}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.contains(rel),
            "{tag}: report does not name the injected file:\n{text}"
        );
    }
}

#[test]
fn binary_check_bench_accepts_committed_results() {
    let path = workspace_root().join("BENCH_engines.json");
    if !path.is_file() {
        // The results file is optional in a fresh checkout; CI checks
        // the freshly generated one.
        return;
    }
    let out = lint_bin()
        .arg("--check-bench")
        .arg(&path)
        .output()
        .expect("run lint binary");
    assert!(
        out.status.success(),
        "--check-bench rejected the committed BENCH_engines.json:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn binary_check_bench_rejects_malformed_results() {
    let path =
        std::env::temp_dir().join(format!("balls-lint-bad-bench-{}.json", std::process::id()));
    std::fs::write(&path, "{\"schema\": \"wrong/schema\", \"results\": []}")
        .expect("write malformed bench file");
    let out = lint_bin()
        .arg("--check-bench")
        .arg(&path)
        .output()
        .expect("run lint binary");
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        out.status.code(),
        Some(1),
        "malformed bench file should exit 1:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn binary_usage_errors_exit_two() {
    for args in [vec!["--frobnicate"], vec![]] {
        let out = lint_bin().args(&args).output().expect("run lint binary");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?} should be a usage error:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
