//! xoshiro256++ and xoshiro256** — Blackman & Vigna's all-purpose
//! generators.
//!
//! 256 bits of state, period 2²⁵⁶ − 1, excellent statistical quality, and
//! `jump()` / `long_jump()` polynomial jumps for carving the sequence into
//! 2¹²⁸-long non-overlapping streams. The simulation crates default to
//! xoshiro256++.

use crate::{Rng64, SplitMix64};

/// Shared 4×u64 state core for the xoshiro256 family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State([u64; 4]);

impl State {
    fn from_seed_u64(seed: u64) -> Self {
        // Reference practice: seed the state from SplitMix64 so that even
        // seed 0 yields a good state (the all-zero state is forbidden).
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        debug_assert!(s.iter().any(|&w| w != 0));
        Self(s)
    }

    #[inline]
    fn advance(&mut self) {
        let s = &mut self.0;
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
    }

    /// Applies a polynomial jump described by `table` (the constants from
    /// the reference implementation).
    fn jump_with(&mut self, table: [u64; 4], mut step: impl FnMut(&mut Self)) {
        let mut acc = [0u64; 4];
        for word in table {
            for bit in 0..64 {
                if (word & (1u64 << bit)) != 0 {
                    for (a, s) in acc.iter_mut().zip(self.0.iter()) {
                        *a ^= s;
                    }
                }
                step(self);
            }
        }
        self.0 = acc;
    }
}

/// Jump polynomial for 2¹²⁸ steps (reference constants).
const JUMP: [u64; 4] = [
    0x180E_C6D3_3CFD_0ABA,
    0xD5A6_1266_F0C9_392C,
    0xA958_6F32_CE81_9089,
    0x39AB_DC45_29B1_661C,
];

/// Jump polynomial for 2¹⁹² steps (reference constants).
const LONG_JUMP: [u64; 4] = [
    0x7674_3594_7B27_C615,
    0x7712_5832_1E21_DBD0,
    0x8B11_6417_FDE8_0ED4,
    0x2338_2723_09CD_9A2E,
];

macro_rules! xoshiro_variant {
    ($(#[$doc:meta])* $name:ident, $output:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name {
            state: State,
        }

        impl $name {
            /// Builds a generator from a single `u64` seed by expanding it
            /// through SplitMix64 (the reference-recommended procedure).
            pub fn seed_from_u64(seed: u64) -> Self {
                Self { state: State::from_seed_u64(seed) }
            }

            /// Builds a generator from four explicit state words.
            ///
            /// Panics if all four words are zero (the one forbidden state).
            pub fn from_state(words: [u64; 4]) -> Self {
                assert!(
                    words.iter().any(|&w| w != 0),
                    "the all-zero state is invalid for xoshiro256"
                );
                Self { state: State(words) }
            }

            /// Returns the four state words (for checkpointing).
            pub fn state_words(&self) -> [u64; 4] {
                self.state.0
            }

            /// Advances the state by 2¹²⁸ steps. Starting from one seed,
            /// repeated `jump()`s give up to 2¹²⁸ non-overlapping
            /// subsequences for parallel replicates.
            pub fn jump(&mut self) {
                self.state.jump_with(JUMP, |s| s.advance());
            }

            /// Advances the state by 2¹⁹² steps, for spacing out groups of
            /// jumped streams.
            pub fn long_jump(&mut self) {
                self.state.jump_with(LONG_JUMP, |s| s.advance());
            }
        }

        impl Rng64 for $name {
            #[inline]
            fn next_u64(&mut self) -> u64 {
                let out = $output(&self.state.0);
                self.state.advance();
                out
            }
        }
    };
}

xoshiro_variant!(
    /// xoshiro256++: output `rotl(s0 + s3, 23) + s0`.
    ///
    /// The default generator for all simulations in this workspace.
    Xoshiro256PlusPlus,
    |s: &[u64; 4]| s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0])
);

xoshiro_variant!(
    /// xoshiro256**: output `rotl(s1 * 5, 7) * 9`.
    ///
    /// Provided as an alternative with a different output function, so
    /// experiments can demonstrate generator-independence of the results.
    Xoshiro256StarStar,
    |s: &[u64; 4]| s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9)
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngExt;

    /// Hand-computed first outputs for the trivially verifiable state
    /// [1, 0, 0, 0]:
    ///  - `++`: rotl(1+0, 23) + 1 = 2^23 + 1.
    ///  - `**`: rotl(0*5, 7) * 9 = 0.
    #[test]
    fn first_output_from_unit_state() {
        let mut pp = Xoshiro256PlusPlus::from_state([1, 0, 0, 0]);
        assert_eq!(pp.next_u64(), (1u64 << 23) + 1);
        let mut ss = Xoshiro256StarStar::from_state([1, 0, 0, 0]);
        assert_eq!(ss.next_u64(), 0);
    }

    /// The state transition is output-independent: both variants must walk
    /// through identical state sequences from the same start.
    #[test]
    fn variants_share_state_evolution() {
        let mut pp = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let mut ss = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        for _ in 0..100 {
            pp.next_u64();
            ss.next_u64();
            assert_eq!(pp.state_words(), ss.state_words());
        }
    }

    /// Second output of `**` from state [_, 1, _, _] after one manual
    /// advance, checked against a by-hand state computation.
    #[test]
    fn manual_state_step() {
        // state = [1, 2, 3, 4]
        // t = 2 << 17 = 262144
        // s2 ^= s0 -> 3 ^ 1 = 2
        // s3 ^= s1 -> 4 ^ 2 = 6
        // s1 ^= s2 -> 2 ^ 2 = 0
        // s0 ^= s3 -> 1 ^ 6 = 7
        // s2 ^= t  -> 2 ^ 262144 = 262146
        // s3 = rotl(6, 45)
        let mut g = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        g.next_u64();
        assert_eq!(g.state_words(), [7, 0, 262146, 6u64.rotate_left(45)]);
    }

    #[test]
    #[should_panic]
    fn zero_state_rejected() {
        Xoshiro256PlusPlus::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn seed_from_u64_matches_splitmix_expansion() {
        use crate::SplitMix64;
        let mut sm = SplitMix64::new(42);
        let words = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        let a = Xoshiro256PlusPlus::seed_from_u64(42);
        assert_eq!(a.state_words(), words);
    }

    #[test]
    fn jump_changes_state_and_streams_diverge() {
        let base = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut s1 = base;
        let mut s2 = base;
        s2.jump();
        assert_ne!(s1.state_words(), s2.state_words());
        // Streams should look unrelated: compare 1k outputs.
        let same = (0..1000).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn long_jump_differs_from_jump() {
        let base = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut j = base;
        let mut lj = base;
        j.jump();
        lj.long_jump();
        assert_ne!(j.state_words(), lj.state_words());
    }

    #[test]
    fn jump_is_deterministic() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(1);
        a.jump();
        b.jump();
        assert_eq!(a.state_words(), b.state_words());
    }

    #[test]
    fn output_equidistribution_rough() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(123);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.range_usize(8)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((9_500..10_500).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn starstar_uniformity_rough() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(321);
        let mut ones = 0u64;
        for _ in 0..10_000 {
            ones += rng.next_u64().count_ones() as u64;
        }
        let mean = ones as f64 / 10_000.0;
        assert!((31.0..33.0).contains(&mean), "mean popcount {mean}");
    }
}
