//! **E8 — the Section 2 remark**: replacing adaptive's threshold
//! `i/n + 1` by `i/n` turns each stage into a coupon collector, for
//! `Θ(m log n)` total allocation time.
//!
//! We run the `adaptive-tight` ablation across `n` and compare its
//! measured time against the exact coupon-collector prediction
//! `m·H_n/n` from `bib-analysis::coupon` — the ratio should approach 1 —
//! while the paper's `adaptive` stays at a small constant multiple of m.
//!
//! ```text
//! cargo run --release -p bib-bench --bin coupon_ablation [-- --quick --csv]
//! ```

use bib_analysis::coupon::expected_full_collection;
use bib_bench::{f, ExpArgs, Table};
use bib_core::prelude::*;
use bib_parallel::replicate::summarize_metric;
use bib_parallel::replicate_outcomes;

fn main() {
    let args = ExpArgs::parse();
    let ns: Vec<usize> = args.pick(
        vec![1 << 8, 1 << 10, 1 << 12, 1 << 14],
        vec![1 << 6, 1 << 8],
    );
    let phi = 8u64;
    let reps = args.reps_or(20, 5);

    println!("# Section 2 ablation: adaptive with slack 0 (threshold i/n) vs the paper's i/n + 1; phi = {phi}, {reps} reps\n");
    let mut table = Table::new(vec![
        "n",
        "tight_T/m",
        "tight_T/(phi*n*H_n)",
        "paper_T/m",
        "tight_gap",
        "paper_gap",
    ]);

    for &n in &ns {
        let m = phi * n as u64;
        let cfg = RunConfig::new(n, m).with_engine(args.engine_or(Engine::Jump));
        let spec = args.replicate_spec(reps);
        let tight = replicate_outcomes(&Adaptive::tight(), &cfg, &spec);
        let papr = replicate_outcomes(&Adaptive::paper(), &cfg, &spec);

        // Exact prediction: each of the phi stages is a full coupon
        // collection: phi · n·H_n samples in expectation.
        let predicted = phi as f64 * expected_full_collection(n as u64);
        let t_time = summarize_metric(&tight, |o| o.total_samples as f64);
        let p_time = summarize_metric(&papr, |o| o.time_ratio());
        let t_gap = summarize_metric(&tight, |o| o.gap() as f64);
        let p_gap = summarize_metric(&papr, |o| o.gap() as f64);

        table.row(vec![
            n.to_string(),
            f(t_time.mean / m as f64),
            f(t_time.mean / predicted),
            f(p_time.mean),
            f(t_gap.mean),
            f(p_gap.mean),
        ]);
    }

    table.print(&args);
    println!("\n# Expected shape: tight_T/m grows like H_n = Theta(log n) while");
    println!("# tight_T/(phi*n*H_n) -> 1 (the coupon-collector prediction is exact);");
    println!("# the paper's adaptive stays at a constant T/m. The tight variant's");
    println!("# gap is 0 (perfect balance) — the price is the log factor in time.");
}
