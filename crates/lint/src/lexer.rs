//! A minimal Rust lexer: just enough structure to lint on.
//!
//! The rule engine only needs to tell four things apart reliably —
//! identifiers/keywords, literals, punctuation, and comments — with a
//! line number attached to each, and it must never confuse a string or
//! comment *mentioning* `unwrap` with code *calling* it. So this lexer
//! handles the full Rust escaping surface (line/block comments with
//! nesting, plain and raw strings with arbitrary `#` fences, byte
//! strings, char literals vs lifetimes, raw identifiers) but makes no
//! attempt at parsing: the token stream is flat, and multi-character
//! operators come out as single-character [`TokenKind::Punct`] runs
//! that rules match as sequences.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `as`, `unsafe`, `HashMap`, …).
    Ident,
    /// Numeric literal (integer or float, any base).
    Number,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// A single punctuation character (`.`, `:`, `#`, `(`, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The token text as written. For [`TokenKind::Str`] this includes
    /// the quotes (and raw-string fences), so an empty string literal
    /// is exactly `"\"\""`.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// One comment (line or block) with its 1-based starting line.
///
/// Comments are kept out of the token stream but preserved here: the
/// suppression pragma (`// lint:allow(…): why`) and the C1 adjacency
/// contract (`// SAFETY:` / `// ORDERING:`) both live in comments.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// 1-based line of the comment's last character (equals `line` for
    /// line comments; larger for multi-line block comments).
    pub end_line: u32,
}

/// A fully lexed source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unterminated constructs (string or block comment) are
/// tolerated by consuming to end of input: the linter must degrade
/// gracefully on files mid-edit rather than panic.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, maintaining the line counter.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push_token(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(String::new()),
                'r' | 'b' => self.raw_or_ident(),
                '\'' => self.char_or_lifetime(),
                _ if is_ident_start(c) => self.ident(String::new()),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    self.bump();
                    self.push_token(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text,
            line,
            end_line: line,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            text,
            line,
            end_line: self.line,
        });
    }

    /// A plain (escaped) string literal; `prefix` carries any `b`.
    fn string(&mut self, prefix: String) {
        let line = self.line;
        let mut text = prefix;
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                text.push(c);
                if let Some(e) = self.bump() {
                    text.push(e);
                }
                continue;
            }
            text.push(c);
            if c == '"' {
                break;
            }
        }
        self.push_token(TokenKind::Str, text, line);
    }

    /// Raw string (`r"…"`, `r#"…"#`, `br##"…"##`), byte string, raw
    /// identifier (`r#match`), or a plain identifier starting with
    /// `r`/`b`.
    fn raw_or_ident(&mut self) {
        let line = self.line;
        let mut prefix = String::new();
        prefix.push(self.peek(0).expect("caller saw a char"));
        // `br` / `rb` double prefix.
        let two = matches!(
            (self.peek(0), self.peek(1)),
            (Some('b'), Some('r')) | (Some('r'), Some('b'))
        );
        let after = if two { 2 } else { 1 };
        if two {
            prefix.push(self.peek(1).expect("two-char prefix"));
        }
        match self.peek(after) {
            // b'x' byte literal.
            Some('\'') if prefix == "b" => {
                self.bump();
                self.char_literal(prefix);
            }
            Some('"') => {
                for _ in 0..after {
                    self.bump();
                }
                if prefix.contains('r') {
                    self.raw_string(prefix, 0);
                } else {
                    self.string(prefix);
                }
            }
            Some('#') if prefix.contains('r') => {
                // Count fence hashes; `r#"` is a raw string, `r#ident`
                // is a raw identifier.
                let mut hashes = 0;
                while self.peek(after + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(after + hashes) == Some('"') {
                    for _ in 0..after + hashes + 1 {
                        self.bump();
                    }
                    self.raw_string(prefix, hashes);
                } else {
                    // Raw identifier: consume prefix + `#`, lex ident.
                    for _ in 0..after + 1 {
                        self.bump();
                    }
                    self.ident(String::new());
                }
            }
            _ => self.ident(String::new()),
        }
        let _ = line;
    }

    /// Body of a raw string whose opening fence is already consumed.
    fn raw_string(&mut self, prefix: String, hashes: usize) {
        let line = self.line;
        let mut text = prefix;
        text.push_str(&"#".repeat(hashes));
        text.push('"');
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..hashes {
                        text.push('#');
                        self.bump();
                    }
                    break;
                }
            }
        }
        self.push_token(TokenKind::Str, text, line);
    }

    /// `'a` lifetime vs `'x'` char literal, disambiguated by lookahead:
    /// a quote-ident not followed by a closing quote is a lifetime.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let one = self.peek(1);
        let two = self.peek(2);
        let is_lifetime = match (one, two) {
            (Some(c), Some(q)) if is_ident_start(c) => q != '\'',
            (Some(c), None) if is_ident_start(c) => true,
            _ => false,
        };
        if is_lifetime {
            self.bump(); // quote
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                self.bump();
            }
            self.push_token(TokenKind::Lifetime, text, line);
        } else {
            self.char_literal(String::new());
        }
    }

    /// A char literal starting at the opening quote.
    fn char_literal(&mut self, prefix: String) {
        let line = self.line;
        let mut text = prefix;
        text.push('\'');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                text.push(c);
                if let Some(e) = self.bump() {
                    text.push(e);
                }
                continue;
            }
            text.push(c);
            if c == '\'' {
                break;
            }
        }
        self.push_token(TokenKind::Char, text, line);
    }

    fn ident(&mut self, mut text: String) {
        let line = self.line;
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push_token(TokenKind::Ident, text, line);
    }

    /// Numeric literal. `.` is consumed only when followed by a digit so
    /// that ranges (`0..n`) and method calls on literals (`1.max(x)`)
    /// keep their punctuation; exponent signs are folded in.
    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
                // `1e-5` / `0x…` handled by the alnum arm; fold the
                // exponent sign so `-5` does not become a Punct.
                if (c == 'e' || c == 'E')
                    && !text.starts_with("0x")
                    && matches!(self.peek(0), Some('+') | Some('-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    text.push(self.bump().expect("peeked sign"));
                }
            } else if c == '.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                seen_dot = true;
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_token(TokenKind::Number, text, line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("// Instant\n/* HashMap */ let x = 1;");
        assert_eq!(l.comments.len(), 2);
        assert!(idents("// Instant\nlet x = 1;")
            .iter()
            .all(|i| i != "Instant"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].text, "/* a /* b */ c */");
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), vec!["fn", "f"]);
    }

    #[test]
    fn strings_hide_identifiers() {
        assert_eq!(idents(r#"let s = "unwrap() HashMap";"#), vec!["let", "s"]);
        assert_eq!(
            idents(r##"let s = r#"Instant "quoted""#;"##),
            vec!["let", "s"]
        );
    }

    #[test]
    fn raw_string_fences() {
        let l = lex(r####"let s = r###"x "## y"###;"####);
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.ends_with("\"###"));
    }

    #[test]
    fn empty_string_literal_is_recognisable() {
        let l = lex(r#"x.expect("")"#);
        let s = l
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("one string");
        assert_eq!(s.text, "\"\"");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "'x'"));
    }

    #[test]
    fn escaped_char_quote() {
        let l = lex(r"let c = '\''; let d = '\n';");
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let l = lex("for i in 0..10 { 1.5e-3; 2.max(i); }");
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3", "2"]);
        assert!(l.tokens.iter().any(|t| t.text == "max"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let l = lex(r#"let a = b"bytes"; let c = b'x';"#);
        assert!(l.tokens.iter().any(|t| t.kind == TokenKind::Str));
        assert!(l.tokens.iter().any(|t| t.kind == TokenKind::Char));
    }

    #[test]
    fn unterminated_string_consumes_to_eof() {
        let l = lex("let s = \"oops");
        assert!(l.tokens.iter().any(|t| t.kind == TokenKind::Str));
    }
}
