//! Criterion: cost of evaluating the Section 2 potential functions on
//! large load vectors.
//!
//! The stage-trace observer evaluates Ψ and ln Φ every `n` balls; this
//! bench confirms those evaluations are linear-time and cheap enough to
//! leave tracing on in experiments.

use bib_core::potential::{
    exponential_potential, gap, ln_exponential_potential, quadratic_potential, EPSILON,
};
use bib_rng::{RngExt, SeedSequence};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn make_loads(n: usize) -> Vec<u32> {
    let mut rng = SeedSequence::new(42).rng();
    (0..n).map(|_| 100 + rng.range_u64(16) as u32).collect()
}

fn bench_potentials(c: &mut Criterion) {
    for n in [1usize << 12, 1 << 16, 1 << 20] {
        let loads = make_loads(n);
        let t: u64 = loads.iter().map(|&l| l as u64).sum();
        let mut group = c.benchmark_group("potentials");
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("quadratic", n), &loads, |b, l| {
            b.iter(|| quadratic_potential(l, t))
        });
        group.bench_with_input(BenchmarkId::new("exponential", n), &loads, |b, l| {
            b.iter(|| exponential_potential(l, t, EPSILON))
        });
        group.bench_with_input(BenchmarkId::new("ln_exponential", n), &loads, |b, l| {
            b.iter(|| ln_exponential_potential(l, t, EPSILON))
        });
        group.bench_with_input(BenchmarkId::new("gap", n), &loads, |b, l| b.iter(|| gap(l)));
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_potentials
}
criterion_main!(benches);
