//! **E9 — parallel allocation rounds** (Table 1 context: Lenzen &
//! Wattenhofer \[12\], Adler et al. \[1\]).
//!
//! Sweeps `n` (with `m = n`) and reports mean rounds, messages per ball
//! and max load for the bounded-load (cap 2) and collision (c = 1)
//! protocols, next to `log*₂(n)` — the round complexity the paper quotes
//! for \[12\].
//!
//! ```text
//! cargo run --release -p bib-bench --bin parallel_rounds [-- --quick --csv]
//! ```

use bib_analysis::Welford;
use bib_bench::{f, ExpArgs, Table};
use bib_parallel::protocols::{log_star, BoundedLoad, Collision, ParallelGreedy};
use bib_rng::SeedSequence;

fn main() {
    let args = ExpArgs::parse();
    let exps: Vec<u32> = args.pick(vec![8, 10, 12, 14, 16, 18, 20], vec![8, 10, 12]);
    let reps = args.reps_or(10, 3);

    println!("# Parallel protocols at m = n; {reps} reps\n");
    let mut table = Table::new(vec![
        "n",
        "log*",
        "bl_rounds",
        "bl_msg/ball",
        "bl_max",
        "col_rounds",
        "col_msg/ball",
        "col_max",
        "pg_r1_max",
        "pg_r4_max",
    ]);

    for &e in &exps {
        let n = 1usize << e;
        let mut blr = Welford::new();
        let mut blm = Welford::new();
        let mut blmax = Welford::new();
        let mut cor = Welford::new();
        let mut com = Welford::new();
        let mut comax = Welford::new();
        let mut pg1 = Welford::new();
        let mut pg4 = Welford::new();
        for rep in 0..reps {
            let mut rng = SeedSequence::new(args.seed)
                .child(e as u64)
                .child(rep)
                .rng();
            let bl = BoundedLoad::new(2).run(n, n as u64, &mut rng);
            bl.validate();
            blr.push(bl.rounds as f64);
            blm.push(bl.messages_per_ball());
            blmax.push(bl.max_load() as f64);
            let co = Collision::new(1).run(n, n as u64, &mut rng);
            co.validate();
            cor.push(co.rounds as f64);
            com.push(co.messages_per_ball());
            comax.push(co.max_load() as f64);
            let g1 = ParallelGreedy::new(2, 1, 1).run(n, n as u64, &mut rng);
            g1.validate();
            pg1.push(g1.max_load() as f64);
            let g4 = ParallelGreedy::new(2, 4, 1).run(n, n as u64, &mut rng);
            g4.validate();
            pg4.push(g4.max_load() as f64);
        }
        table.row(vec![
            n.to_string(),
            log_star(n as f64).to_string(),
            f(blr.mean()),
            f(blm.mean()),
            f(blmax.mean()),
            f(cor.mean()),
            f(com.mean()),
            f(comax.mean()),
            f(pg1.mean()),
            f(pg4.mean()),
        ]);
    }

    table.print(&args);
    println!("\n# Expected shape: bl_rounds grows like log* (very slowly), bl_max <= 2 always,");
    println!("# messages O(1) per ball; collision finishes in log log-ish rounds with");
    println!(
        "# a larger (but still small) max load. parallel-greedy (d=2, [1]): extra
# negotiation rounds shave the max load (pg_r4 <= pg_r1)."
    );
}
