//! Deterministic fault injection for the streaming allocator.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s at virtual times (stream
//! ticks): at tick `at`, a fraction `frac` of the *eligible* bins
//! crashes, drains, slows down, or recovers. Which bins are hit is
//! seed-derived, never wall-clock-derived: every driver draws the
//! affected set from a deterministic stream, so the same seed and the
//! same plan replay the same fault schedule bit-for-bit — across
//! processes and (for the sharded driver in `bib-parallel`) across
//! thread counts.
//!
//! The bin state machine ([`BinState`]) is deliberately small:
//!
//! * **Alive** — accepts placements at the usual one-sample contact
//!   cost.
//! * **Slow** — accepts placements, but every contact costs an extra
//!   sample (a straggling backend: correct answers, doubled latency).
//! * **Draining** — refuses new placements (the probe is wasted and
//!   redrawn) while its resident balls keep departing through churn —
//!   the "finish existing connections" shape of a rolling restart.
//! * **Dead** — refuses placements *and* freezes its resident balls; a
//!   contacted dead bin costs the probe and forces a re-draw. On
//!   recovery the bin rejoins with its frozen load intact, which is
//!   exactly the arbitrary-state re-entry a self-stabilizing allocator
//!   must absorb.
//!
//! The textual grammar (CLI `--faults`, README "Serve mode & fault
//! model") is `kind@tick:frac[,kind@tick:frac…]` with kinds `crash`,
//! `drain`, `slow`, `recover` and `frac` either a float in `(0, 1]` or
//! the word `all`: `crash@60:0.5,recover@90:all`.

use bib_rng::{Rng64, SeedSequence, SplitMix64};

/// What happens to the affected bins at a fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Eligible (non-dead) bins go [`BinState::Dead`]: placements
    /// bounce, resident balls freeze.
    Crash,
    /// Eligible alive/slow bins go [`BinState::Draining`]: placements
    /// bounce, resident balls keep departing.
    Drain,
    /// Eligible alive bins go [`BinState::Slow`]: contacts cost an
    /// extra sample.
    Slow,
    /// Eligible non-alive bins return to [`BinState::Alive`] with
    /// their current load.
    Recover,
}

impl FaultKind {
    /// Canonical grammar keyword.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Drain => "drain",
            FaultKind::Slow => "slow",
            FaultKind::Recover => "recover",
        }
    }
}

/// One scheduled fault: at virtual time `at`, each eligible bin is hit
/// independently with probability `frac` (1.0 = every eligible bin,
/// surely).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Stream tick at which the event fires (before that tick's
    /// arrivals and departures).
    pub at: u64,
    /// Event kind.
    pub kind: FaultKind,
    /// Probability that an eligible bin is affected, in `(0, 1]`.
    pub frac: f64,
}

/// Health of one bin, as consulted by the engines on every contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum BinState {
    /// In service at normal cost.
    #[default]
    Alive = 0,
    /// In service; contacts cost one extra sample.
    Slow = 1,
    /// Refusing placements; resident balls still depart.
    Draining = 2,
    /// Refusing placements; resident balls frozen.
    Dead = 3,
}

impl BinState {
    /// Whether a placement probe landing here can be accepted.
    pub fn accepts(self) -> bool {
        matches!(self, BinState::Alive | BinState::Slow)
    }

    /// Samples one contact costs (slow bins answer late).
    pub fn contact_cost(self) -> u64 {
        match self {
            BinState::Slow => 2,
            _ => 1,
        }
    }

    /// Whether churn departures still happen here.
    pub fn departs(self) -> bool {
        !matches!(self, BinState::Dead)
    }

    /// Stable wire code, for packing into shared atomic cells.
    pub fn code(self) -> u32 {
        match self {
            BinState::Alive => 0,
            BinState::Slow => 1,
            BinState::Draining => 2,
            BinState::Dead => 3,
        }
    }

    /// Inverse of [`BinState::code`]; unknown codes read as `Dead`
    /// (the conservative state: refuses placements, freezes balls).
    pub fn from_code(code: u32) -> Self {
        match code {
            0 => BinState::Alive,
            1 => BinState::Slow,
            2 => BinState::Draining,
            _ => BinState::Dead,
        }
    }
}

/// A deterministic, seed-derived schedule of bin faults.
///
/// The plan itself is pure data (events sorted by time); the *choice*
/// of affected bins is made by the consuming driver through
/// [`FaultPlan::bin_hit`] (dense drivers, one deterministic Bernoulli
/// per (event, bin)) or [`FaultPlan::event_rng`] (collapsed drivers,
/// one binomial split per occupancy class) — both derive from the same
/// plan seed, so a driver's fault trajectory is a pure function of
/// `(seed, plan, n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    seed: u64,
}

impl FaultPlan {
    /// A plan with no events (the always-healthy baseline).
    pub fn none() -> Self {
        Self {
            events: Vec::new(),
            seed: 0,
        }
    }

    /// Builds a plan from events (sorted by `at`, stably) and the seed
    /// the affected-bin draws derive from.
    pub fn new(mut events: Vec<FaultEvent>, seed: u64) -> Self {
        for e in &events {
            assert!(
                e.frac > 0.0 && e.frac <= 1.0,
                "fault frac {} outside (0, 1]",
                e.frac
            );
        }
        events.sort_by_key(|e| e.at);
        Self { events, seed }
    }

    /// The classic robustness drill: crash a fraction of the fleet at
    /// `at`, recover everything at `recover_at`.
    pub fn mass_failure(at: u64, frac: f64, recover_at: u64, seed: u64) -> Self {
        assert!(recover_at > at, "recovery must follow the crash");
        Self::new(
            vec![
                FaultEvent {
                    at,
                    kind: FaultKind::Crash,
                    frac,
                },
                FaultEvent {
                    at: recover_at,
                    kind: FaultKind::Recover,
                    frac: 1.0,
                },
            ],
            seed,
        )
    }

    /// Parses the CLI grammar `kind@tick:frac[,…]`; `frac` is a float
    /// in `(0, 1]` or `all`. Returns a human-readable message on
    /// malformed input.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut events = Vec::new();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let part = part.trim();
            let (kind_s, rest) = part
                .split_once('@')
                .ok_or_else(|| format!("fault `{part}`: expected kind@tick:frac"))?;
            let (tick_s, frac_s) = rest
                .split_once(':')
                .ok_or_else(|| format!("fault `{part}`: expected kind@tick:frac"))?;
            let kind = match kind_s {
                "crash" => FaultKind::Crash,
                "drain" => FaultKind::Drain,
                "slow" => FaultKind::Slow,
                "recover" => FaultKind::Recover,
                other => return Err(format!("unknown fault kind `{other}`")),
            };
            let at: u64 = tick_s
                .parse()
                .map_err(|_| format!("fault `{part}`: bad tick `{tick_s}`"))?;
            let frac: f64 = if frac_s == "all" {
                1.0
            } else {
                frac_s
                    .parse()
                    .map_err(|_| format!("fault `{part}`: bad fraction `{frac_s}`"))?
            };
            if !(frac > 0.0 && frac <= 1.0) {
                return Err(format!("fault `{part}`: fraction must be in (0, 1]"));
            }
            events.push(FaultEvent { at, kind, frac });
        }
        Ok(Self::new(events, seed))
    }

    /// The events, ascending by tick.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The seed the affected-bin draws derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Indices (into [`FaultPlan::events`]) of the events firing at
    /// exactly tick `at`.
    pub fn due_at(&self, at: u64) -> std::ops::Range<usize> {
        let lo = self.events.partition_point(|e| e.at < at);
        let hi = self.events.partition_point(|e| e.at <= at);
        lo..hi
    }

    /// Deterministic per-bin decision for dense drivers: whether event
    /// `event_idx` hits bin `bin` (given the bin is eligible). One
    /// hash, no shared state — safe to evaluate from any thread in any
    /// order, which is what makes the sharded driver's fault
    /// trajectory independent of its thread count.
    pub fn bin_hit(&self, event_idx: usize, bin: u64) -> bool {
        let e = &self.events[event_idx];
        if e.frac >= 1.0 {
            return true;
        }
        // One SplitMix64 step keyed by (plan seed, event, bin): a
        // uniform u64 compared against frac·2⁶⁴.
        let mut h = SplitMix64::new(
            self.seed ^ (event_idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ bin,
        );
        // frac ≤ 1 so the product stays within u64 range (saturating at
        // the top for frac == 1, handled above).
        (h.next_u64() as f64) < e.frac * (u64::MAX as f64)
    }

    /// Deterministic per-event stream for collapsed (histogram-first)
    /// drivers: the binomial class splits for event `event_idx` draw
    /// from this RNG.
    pub fn event_rng(&self, event_idx: usize) -> impl Rng64 {
        SeedSequence::new(self.seed)
            .child_str("fault-event")
            .child(event_idx as u64)
            .rng()
    }

    /// Applies every event due at tick `at` to a dense state vector.
    /// Returns `true` if anything changed. Deterministic in
    /// `(seed, plan, n)`; single-threaded (the sharded driver calls it
    /// from its leader phase only).
    pub fn apply_dense(&self, at: u64, states: &mut [BinState]) -> bool {
        let due = self.due_at(at);
        let mut changed = false;
        for idx in due {
            let kind = self.events[idx].kind;
            for (b, s) in states.iter_mut().enumerate() {
                let eligible = match kind {
                    FaultKind::Crash => *s != BinState::Dead,
                    FaultKind::Drain => s.accepts(),
                    FaultKind::Slow => *s == BinState::Alive,
                    FaultKind::Recover => *s != BinState::Alive,
                };
                if eligible && self.bin_hit(idx, b as u64) {
                    *s = match kind {
                        FaultKind::Crash => BinState::Dead,
                        FaultKind::Drain => BinState::Draining,
                        FaultKind::Slow => BinState::Slow,
                        FaultKind::Recover => BinState::Alive,
                    };
                    changed = true;
                }
            }
        }
        changed
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for e in &self.events {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            if e.frac >= 1.0 {
                write!(f, "{}@{}:all", e.kind.label(), e.at)?;
            } else {
                write!(f, "{}@{}:{}", e.kind.label(), e.at, e.frac)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips() {
        let plan = FaultPlan::parse("crash@60:0.5, slow@10:0.25 ,recover@90:all", 7).unwrap();
        // Sorted by tick.
        assert_eq!(plan.events()[0].kind, FaultKind::Slow);
        assert_eq!(plan.events()[1].at, 60);
        assert_eq!(plan.to_string(), "slow@10:0.25,crash@60:0.5,recover@90:all");
        let reparsed = FaultPlan::parse(&plan.to_string(), 7).unwrap();
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn grammar_rejects_malformed_specs() {
        for bad in [
            "crash60:0.5",
            "crash@60",
            "melt@60:0.5",
            "crash@x:0.5",
            "crash@60:1.5",
            "crash@60:0",
        ] {
            assert!(FaultPlan::parse(bad, 1).is_err(), "{bad} should fail");
        }
        assert!(FaultPlan::parse("", 1).unwrap().is_empty());
    }

    #[test]
    fn due_at_selects_exactly_the_tick() {
        let plan = FaultPlan::parse("crash@5:0.5,drain@5:0.5,recover@9:all", 3).unwrap();
        assert_eq!(plan.due_at(5), 0..2);
        assert_eq!(plan.due_at(9), 2..3);
        assert_eq!(plan.due_at(7), 2..2);
    }

    #[test]
    fn dense_application_is_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::mass_failure(4, 0.5, 8, 11);
        let mut a = vec![BinState::Alive; 1000];
        let mut b = vec![BinState::Alive; 1000];
        plan.apply_dense(4, &mut a);
        plan.apply_dense(4, &mut b);
        assert_eq!(a, b, "same plan, same bins hit");
        let dead = a.iter().filter(|s| **s == BinState::Dead).count();
        // Binomial(1000, 0.5): far from both tails.
        assert!((300..700).contains(&dead), "dead = {dead}");
        let other = FaultPlan::mass_failure(4, 0.5, 8, 12);
        let mut c = vec![BinState::Alive; 1000];
        other.apply_dense(4, &mut c);
        assert_ne!(a, c, "different seed, different bins");
        // Recovery restores everyone.
        plan.apply_dense(8, &mut a);
        assert!(a.iter().all(|s| *s == BinState::Alive));
    }

    #[test]
    fn state_machine_contracts() {
        assert!(BinState::Alive.accepts() && BinState::Slow.accepts());
        assert!(!BinState::Dead.accepts() && !BinState::Draining.accepts());
        assert_eq!(BinState::Slow.contact_cost(), 2);
        assert_eq!(BinState::Dead.contact_cost(), 1);
        assert!(BinState::Draining.departs() && !BinState::Dead.departs());
    }
}
