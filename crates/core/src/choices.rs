//! Choice-vector recording and replay — the proof's deferred-decisions
//! device turned into a debugging tool.
//!
//! The proof of Theorem 4.1 fixes an infinite vector `C` of uniform bin
//! choices *in advance* and lets the protocol consume it left to right;
//! the allocation time is then just "how many entries of C were used".
//! This module makes that operational:
//!
//! * [`RecordingRng`] wraps any generator and logs every raw 64-bit word
//!   it produces;
//! * [`ReplayRng`] plays a recorded tape back (and panics if the
//!   consumer runs past the end).
//!
//! Replaying a protocol run on its own tape reproduces the run *exactly*
//! — loads, placements and sample counts — which gives (a) a shrink-free
//! way to capture and re-examine rare events, and (b) a direct test that
//! protocols are deterministic functions of their choice sequence, the
//! premise of the paper's analysis.

use bib_rng::Rng64;

/// Wraps a generator and records every word drawn through it.
#[derive(Debug)]
pub struct RecordingRng<R> {
    inner: R,
    tape: Vec<u64>,
}

impl<R: Rng64> RecordingRng<R> {
    /// Starts recording on top of `inner`.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            tape: Vec::new(),
        }
    }

    /// Number of words drawn so far.
    pub fn words_used(&self) -> usize {
        self.tape.len()
    }

    /// Consumes the recorder, returning the tape.
    pub fn into_tape(self) -> Vec<u64> {
        self.tape
    }

    /// Borrows the tape recorded so far.
    pub fn tape(&self) -> &[u64] {
        &self.tape
    }
}

impl<R: Rng64> Rng64 for RecordingRng<R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let w = self.inner.next_u64();
        self.tape.push(w);
        w
    }
}

/// Plays a recorded tape back as a generator.
///
/// Panics when the consumer draws more words than the tape holds — a
/// replay that diverges from the recording is a bug, and silence would
/// hide it.
#[derive(Debug, Clone)]
pub struct ReplayRng {
    tape: Vec<u64>,
    pos: usize,
}

impl ReplayRng {
    /// Creates a replayer over `tape`.
    pub fn new(tape: Vec<u64>) -> Self {
        Self { tape, pos: 0 }
    }

    /// Words remaining on the tape.
    pub fn remaining(&self) -> usize {
        self.tape.len() - self.pos
    }

    /// Whether the whole tape was consumed.
    pub fn exhausted(&self) -> bool {
        self.pos == self.tape.len()
    }
}

impl Rng64 for ReplayRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        assert!(
            self.pos < self.tape.len(),
            "replay ran past the end of the tape ({} words): the consumer \
             diverged from the recorded run",
            self.tape.len()
        );
        let w = self.tape[self.pos];
        self.pos += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::protocol::NullObserver;
    use bib_rng::{RngExt, SplitMix64};

    #[test]
    fn recording_is_transparent() {
        // Drawing through the recorder gives the same stream as drawing
        // directly.
        let mut direct = SplitMix64::new(9);
        let mut rec = RecordingRng::new(SplitMix64::new(9));
        for _ in 0..100 {
            assert_eq!(direct.next_u64(), rec.next_u64());
        }
        assert_eq!(rec.words_used(), 100);
    }

    #[test]
    fn replay_reproduces_tape_exactly() {
        let mut rec = RecordingRng::new(SplitMix64::new(5));
        let drawn: Vec<u64> = (0..32).map(|_| rec.next_u64()).collect();
        let mut rep = ReplayRng::new(rec.into_tape());
        let replayed: Vec<u64> = (0..32).map(|_| rep.next_u64()).collect();
        assert_eq!(drawn, replayed);
        assert!(rep.exhausted());
    }

    #[test]
    #[should_panic]
    fn replay_overrun_panics() {
        let mut rep = ReplayRng::new(vec![1, 2]);
        rep.next_u64();
        rep.next_u64();
        rep.next_u64();
    }

    /// The headline property: a protocol is a deterministic function of
    /// its choice tape — replaying the tape reproduces the entire
    /// outcome.
    #[test]
    fn protocol_run_replays_exactly() {
        for engine in [Engine::Faithful, Engine::Jump] {
            let cfg = RunConfig::new(32, 500).with_engine(engine);
            let mut rec = RecordingRng::new(SplitMix64::new(13));
            let original = Threshold.allocate(&cfg, &mut rec, &mut NullObserver);
            let tape = rec.into_tape();
            let mut rep = ReplayRng::new(tape);
            let replayed = Threshold.allocate(&cfg, &mut rep, &mut NullObserver);
            assert_eq!(original, replayed, "{engine:?}");
            assert!(rep.exhausted(), "{engine:?}: tape not fully consumed");
        }
    }

    /// The proof's accounting: under the naive engine, the number of
    /// *range draws* equals the allocation time (each sample consumes
    /// one choice-vector entry). Lemire rejection can cost extra raw
    /// words, so compare against a range-draw counter rather than raw
    /// words.
    #[test]
    fn allocation_time_equals_choice_vector_consumption() {
        struct CountingRanges<R> {
            inner: R,
            ranges: u64,
        }
        impl<R: Rng64> Rng64 for CountingRanges<R> {
            fn next_u64(&mut self) -> u64 {
                self.inner.next_u64()
            }
        }
        impl<R: Rng64> CountingRanges<R> {
            fn range(&mut self, n: u64) -> u64 {
                self.ranges += 1;
                self.inner.range_u64(n)
            }
        }
        // Drive the naive sampling loop manually, mirroring threshold.
        let n = 16usize;
        let m = 200u64;
        let mut rng = CountingRanges {
            inner: SplitMix64::new(7),
            ranges: 0,
        };
        let mut bins = crate::partitioned::PartitionedBins::new(n);
        let bound = Threshold::acceptance_bound(n, m);
        let mut total_samples = 0u64;
        for _ in 0..m {
            loop {
                total_samples += 1;
                let j = rng.range(n as u64) as usize;
                if bins.load(j) < bound {
                    bins.place(j);
                    break;
                }
            }
        }
        assert_eq!(rng.ranges, total_samples);
        assert_eq!(bins.total(), m);
    }
}
