//! Integration tests spanning the substrate crates: parallel replication
//! vs sequential, reallocation schemes vs core outcomes, RNG/analysis
//! agreement.

use balls_into_bins::analysis::chisq::chi_square_uniform;
use balls_into_bins::core::prelude::*;
use balls_into_bins::parallel::{replicate_outcomes, ReplicateSpec};
use balls_into_bins::reloc::Crs;
use balls_into_bins::rng::{RngExt, SeedSequence};

#[test]
fn parallel_replication_matches_sequential_exactly() {
    let cfg = RunConfig::new(64, 640).with_engine(Engine::Jump);
    let seq = run_replicates(&Threshold, &cfg, 123, 12);
    let par = replicate_outcomes(
        &Threshold,
        &cfg,
        &ReplicateSpec::new(12, 123).with_threads(4),
    );
    assert_eq!(seq, par);
}

#[test]
fn crs_beats_paper_protocols_on_balance_but_pays_reallocations() {
    // Table 1's trade-off in one test: CRS reaches ⌈m/n⌉(+1) but moves
    // balls; adaptive/threshold never move balls but allow +1 over ⌈m/n⌉.
    let n = 512usize;
    let m = 32 * n as u64;
    let mut rng = SeedSequence::new(5).rng();
    let crs = Crs::new().run(n, m, &mut rng);
    crs.validate();
    assert!(crs.max_load() <= crs.target() + 1);
    assert!(crs.reallocations > 0, "self-balancing should do some work");

    let cfg = RunConfig::new(n, m).with_engine(Engine::Jump);
    let ada = run_protocol(&Adaptive::paper(), &cfg, 5);
    assert!(ada.max_load() as u64 <= cfg.max_load_bound());
}

#[test]
fn protocol_bin_choices_are_uniform() {
    // End-to-end RNG sanity: one-choice's final loads over many balls
    // must pass a uniformity chi-square against the analysis crate.
    let n = 64usize;
    let m = 64_000u64;
    let cfg = RunConfig::new(n, m);
    let out = run_protocol(&OneChoice, &cfg, 321);
    let counts: Vec<u64> = out.loads.iter().map(|&l| l as u64).collect();
    let r = chi_square_uniform(&counts);
    assert!(r.p_value > 1e-4, "chi2 {} p {}", r.statistic, r.p_value);
}

#[test]
fn seed_sequences_do_not_collide_across_crate_usages() {
    // The harness derives seeds by (master, name, replicate); two
    // protocols sharing a master seed must still see distinct streams —
    // verified on raw u64 output.
    let a = SeedSequence::new(9).child_str("adaptive").child(0);
    let b = SeedSequence::new(9).child_str("threshold").child(0);
    let mut ra = a.rng();
    let mut rb = b.rng();
    let va: Vec<u64> = (0..8).map(|_| ra.range_u64(u64::MAX)).collect();
    let vb: Vec<u64> = (0..8).map(|_| rb.range_u64(u64::MAX)).collect();
    assert_ne!(va, vb);
}

#[test]
fn facade_reexports_are_usable_together() {
    // Compile-time integration: one program touching all five crates.
    use balls_into_bins::analysis::paper::constants;
    use balls_into_bins::parallel::protocols::BoundedLoad;
    use balls_into_bins::reloc::CuckooTable;

    let k = constants();
    assert!(k.kappa > 0.0);

    let mut rng = SeedSequence::new(1).rng();
    let po = BoundedLoad::new(2).run(128, 128, &mut rng);
    assert!(po.max_load() <= 2);

    let mut t = CuckooTable::new(64, 2, 2, 3);
    t.insert(42, &mut rng).unwrap();
    assert!(t.contains(42));

    let cfg = RunConfig::new(32, 320);
    let out = run_protocol(&Adaptive::paper(), &cfg, 1);
    assert!(out.max_load() as u64 <= cfg.max_load_bound());
}
