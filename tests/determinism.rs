//! Deterministic-seed regression tests.
//!
//! The whole experiment harness is seeded: the same
//! `(protocol, RunConfig, seed)` triple must reproduce the same
//! [`Outcome`] bit for bit, on any machine and any run. This is what
//! makes the paper's tables reproducible and the sampler-equivalence
//! claim of Section 3 (faithful retry loop ≡ geometric jump, in
//! distribution) testable at all.

use balls_into_bins::core::prelude::*;
use balls_into_bins::core::protocols::by_name;

const PROTOCOLS: &[&str] = &[
    "one-choice",
    "greedy[2]",
    "left[2]",
    "memory(1,1)",
    "threshold",
    "adaptive",
    "adaptive-tight",
];

/// Two runs of the same `(protocol, RunConfig, seed)` triple produce
/// identical outcomes — total samples, per-ball maximum, and the entire
/// load vector — under both engines.
#[test]
fn same_triple_same_outcome() {
    for name in PROTOCOLS {
        for engine in Engine::ALL {
            let proto = by_name(name).expect("known protocol");
            let cfg = RunConfig::new(128, 1280).with_engine(engine);
            for seed in [0u64, 7, 2013] {
                let a = run_protocol(proto.as_ref(), &cfg, seed);
                let b = run_protocol(proto.as_ref(), &cfg, seed);
                assert_eq!(a.protocol, b.protocol);
                assert_eq!(a.n, b.n);
                assert_eq!(a.m, b.m);
                assert_eq!(
                    a.total_samples, b.total_samples,
                    "{name}/{engine:?}/seed {seed}: sample count not reproducible"
                );
                assert_eq!(
                    a.max_samples_per_ball, b.max_samples_per_ball,
                    "{name}/{engine:?}/seed {seed}: per-ball max not reproducible"
                );
                assert_eq!(
                    a.loads, b.loads,
                    "{name}/{engine:?}/seed {seed}: load vector not reproducible"
                );
            }
        }
    }
}

/// Replicate seeds are a pure function of `(master, protocol, rep)`, so
/// replicate batches are reproducible too, and distinct replicates are
/// actually distinct runs.
#[test]
fn replicate_batches_reproduce() {
    let proto = by_name("adaptive").expect("known protocol");
    let cfg = RunConfig::new(64, 640).with_engine(Engine::Jump);
    let a = run_replicates(proto.as_ref(), &cfg, 99, 8);
    let b = run_replicates(proto.as_ref(), &cfg, 99, 8);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.loads, y.loads);
        assert_eq!(x.total_samples, y.total_samples);
    }
    // Different replicates see different randomness (all-equal batches
    // would mean the replicate-seed derivation collapsed).
    assert!(
        a.windows(2).any(|w| w[0].loads != w[1].loads),
        "all 8 replicates identical — replicate seeding is broken"
    );
}

/// Section 3 sampler equivalence: the faithful engine and the jump
/// engine simulate the *same* stochastic process.
///
/// The two engines consume randomness differently (the jump engine
/// replaces a retry run by one geometric draw), so outcomes cannot be
/// compared ball-for-ball at a fixed seed; the paper's claim is equality
/// in distribution. With all seeds fixed this test is still fully
/// deterministic: both engines run the same replicate batch and must
/// agree on the distribution summaries, and each replicate must respect
/// the `⌈m/n⌉ + 1` bound of Theorem 3.1 under either engine.
#[test]
fn engines_agree_in_distribution() {
    let (n, phi, reps) = (256usize, 10u64, 32u64);
    let m = phi * n as u64;
    for name in ["adaptive", "threshold"] {
        let proto = by_name(name).expect("known protocol");
        let mut mean_max = [0.0f64; Engine::ALL.len()];
        let mut mean_ratio = [0.0f64; Engine::ALL.len()];
        for (e, engine) in Engine::ALL.into_iter().enumerate() {
            let cfg = RunConfig::new(n, m).with_engine(engine);
            let outs = run_replicates(proto.as_ref(), &cfg, 424242, reps);
            for out in &outs {
                assert!(
                    out.max_load() as u64 <= cfg.max_load_bound(),
                    "{name}/{engine:?}: max load {} over bound {}",
                    out.max_load(),
                    cfg.max_load_bound()
                );
            }
            mean_max[e] = outs.iter().map(|o| o.max_load() as f64).sum::<f64>() / reps as f64;
            mean_ratio[e] = outs.iter().map(|o| o.time_ratio()).sum::<f64>() / reps as f64;
        }
        // Replicate means over 32 runs: engine disagreement beyond these
        // windows would be a distributional (i.e. implementation) gap,
        // not noise. Every fast engine is held against the faithful one.
        for e in 1..Engine::ALL.len() {
            assert!(
                (mean_max[0] - mean_max[e]).abs() <= 0.5,
                "{name}: mean max load differs, faithful {} vs {:?} {}",
                mean_max[0],
                Engine::ALL[e],
                mean_max[e]
            );
            assert!(
                (mean_ratio[0] - mean_ratio[e]).abs() <= 0.1 * mean_ratio[0].max(mean_ratio[e]),
                "{name}: mean T/m differs, faithful {} vs {:?} {}",
                mean_ratio[0],
                Engine::ALL[e],
                mean_ratio[e]
            );
        }
    }
}
