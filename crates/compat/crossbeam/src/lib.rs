//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the crossbeam API that `bib-parallel`
//! actually uses: multi-producer/single-consumer channels created with
//! [`channel::bounded`] (clonable senders, an iterable receiver).
//!
//! The implementation delegates to `std::sync::mpsc`, which provides the
//! same semantics for this usage pattern (every worker owns a `Sender`
//! clone; the receiver drains until all senders are dropped). Swapping
//! in the real crossbeam later only requires deleting this crate from
//! the workspace and pointing `[workspace.dependencies]` at the
//! registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! MPMC-style channels; see the crate docs for the supported subset.

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Sending half of a channel. Clonable, like crossbeam's.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error returned by [`Sender::send`] when the receiver has hung up.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is delivered or the channel disconnects.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of a channel.
    ///
    /// Unlike `std::sync::mpsc::Receiver`, crossbeam receivers are
    /// `Sync + Clone`; the `Arc<Mutex<_>>` wrapper preserves that
    /// contract for callers that share one receiver across scoped
    /// threads.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .expect("receiver mutex poisoned")
                .recv()
                .map_err(|_| RecvError)
        }

        /// Iterates over received messages until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over a receiver; ends when all senders drop.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Owning blocking iterator over a receiver.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_from_clones() {
            let (tx, rx) = bounded::<usize>(64);
            std::thread::scope(|s| {
                for t in 0..4 {
                    let tx = tx.clone();
                    s.spawn(move || {
                        for i in 0..16 {
                            tx.send(t * 16 + i).unwrap();
                        }
                    });
                }
                drop(tx);
            });
            let mut got: Vec<usize> = rx.into_iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..64).collect::<Vec<_>>());
        }

        #[test]
        fn recv_err_after_disconnect() {
            let (tx, rx) = bounded::<u8>(1);
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
