//! Criterion: **E11 engine ablation** — the faithful retry loop vs the
//! geometric-jump engine, across load levels.
//!
//! The two engines are distributionally identical (see
//! `bib-core::sampler`); this bench quantifies the wall-clock win that
//! justifies the jump engine's existence, especially at high ϕ where
//! `threshold` wastes many samples near the end of a run.

use bib_core::prelude::*;
use bib_rng::SeedSequence;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn bench_engines(c: &mut Criterion) {
    let n = 2048usize;
    for phi in [1u64, 16, 256] {
        let m = phi * n as u64;
        let mut group = c.benchmark_group(format!("engines/phi={phi}"));
        group.throughput(Throughput::Elements(m));
        for (label, engine) in [("faithful", Engine::Faithful), ("jump", Engine::Jump)] {
            for proto in [
                Box::new(Adaptive::paper()) as Box<dyn Protocol>,
                Box::new(Threshold),
            ] {
                let cfg = RunConfig::new(n, m).with_engine(engine);
                group.bench_with_input(BenchmarkId::new(proto.name(), label), &cfg, |b, cfg| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let mut rng = SeedSequence::new(seed).rng();
                        proto.allocate(cfg, &mut rng, &mut NullObserver)
                    });
                });
            }
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_engines
}
criterion_main!(benches);
