//! The `adaptive` protocol — the paper's main contribution (Figure 1).
//!
//! Ball `i` re-samples uniform bins until it finds one with load strictly
//! less than `i/n + 1`. Unlike `threshold`, the total number of balls `m`
//! need not be known in advance: the acceptance bound adapts to how many
//! balls have been placed. Maximum load is `⌈m/n⌉ + 1` by construction;
//! Theorem 3.1 proves expected allocation time `O(m)`, and Corollary 3.5
//! proves the load stays *smooth*: `E[Φ] = O(n)`, `E[Ψ] = O(n)`, gap
//! `O(log n)` w.h.p.
//!
//! The `slack = 0` variant (acceptance `load < i/n`) is the ablation
//! discussed in Section 2: each stage degenerates into a coupon-collector
//! process and the allocation time becomes `Θ(m log n)`.

use crate::level_batched::{allocate_scheduled, ThresholdSchedule};
use crate::protocol::{Observer, Outcome, Protocol, RunConfig};
use bib_rng::Rng64;

/// The adaptive-threshold protocol, parameterised by the additive slack
/// in the acceptance bound (`load < i/n + slack`).
///
/// # Examples
///
/// ```
/// use bib_core::prelude::*;
///
/// let cfg = RunConfig::new(100, 5_000).with_engine(Engine::Jump);
/// let out = run_protocol(&Adaptive::paper(), &cfg, 7);
/// assert!(out.max_load() as u64 <= cfg.max_load_bound()); // ⌈m/n⌉ + 1
/// assert!(out.time_ratio() < 3.0);                        // Theorem 3.1
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Adaptive {
    slack: u32,
}

impl Adaptive {
    /// The paper's protocol: acceptance `load < i/n + 1`.
    pub fn paper() -> Self {
        Self { slack: 1 }
    }

    /// The Section 2 ablation: acceptance `load < i/n` — a coupon
    /// collector per stage, `Θ(m log n)` total.
    pub fn tight() -> Self {
        Self { slack: 0 }
    }

    /// Generalised slack (`load < i/n + slack`); larger slack trades
    /// smoothness for speed.
    pub fn with_slack(slack: u32) -> Self {
        Self { slack }
    }

    /// The configured slack.
    pub fn slack(&self) -> u32 {
        self.slack
    }

    /// Integer acceptance bound for ball `i` (1-based): a bin accepts iff
    /// `load < t_i` where `t_i = ⌈(i + slack·n)/n⌉` — the smallest
    /// integer bound equivalent to `load < i/n + slack` for integer
    /// loads.
    ///
    /// Within stage `τ` (balls `(τ−1)n+1 … τn`) this is constant at
    /// `τ + slack`, matching the paper's observation that the threshold
    /// "only changes after n balls are allocated".
    pub fn acceptance_bound(&self, n: usize, ball: u64) -> u32 {
        debug_assert!(ball >= 1);
        u32::try_from((ball + self.slack as u64 * n as u64).div_ceil(n as u64))
            .expect("stage index ⌈ball/n⌉ + slack exceeds u32 — loads are u32 workspace-wide")
    }
}

impl ThresholdSchedule for Adaptive {
    fn bound(&self, cfg: &RunConfig, ball: u64) -> u32 {
        self.acceptance_bound(cfg.n, ball)
    }

    fn segment_end(&self, cfg: &RunConfig, ball: u64) -> u64 {
        // The bound is constant within a stage of n balls.
        ((ball - 1) / cfg.n as u64 + 1) * cfg.n as u64
    }
}

impl Protocol for Adaptive {
    fn name(&self) -> String {
        match self.slack {
            1 => "adaptive".into(),
            0 => "adaptive-tight".into(),
            s => format!("adaptive(+{s})"),
        }
    }

    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        allocate_scheduled(self, cfg, rng, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Engine, NullObserver};
    use bib_rng::SplitMix64;

    #[test]
    fn acceptance_bound_is_stagewise_constant() {
        let a = Adaptive::paper();
        let n = 10usize;
        // Stage 1: balls 1..=10 ⇒ bound 2 (load < i/10 + 1 ⇒ load ≤ 1).
        for i in 1..=10u64 {
            assert_eq!(a.acceptance_bound(n, i), 2, "ball {i}");
        }
        // Stage 2: balls 11..=20 ⇒ bound 3.
        for i in 11..=20u64 {
            assert_eq!(a.acceptance_bound(n, i), 3, "ball {i}");
        }
    }

    #[test]
    fn tight_variant_bound() {
        let a = Adaptive::tight();
        let n = 10usize;
        // Ball 1..=10: load < i/10 ⇒ only empty bins (bound 1).
        for i in 1..=10u64 {
            assert_eq!(a.acceptance_bound(n, i), 1, "ball {i}");
        }
        assert_eq!(a.acceptance_bound(n, 11), 2);
    }

    #[test]
    fn max_load_bound_holds_always() {
        for seed in 0..5u64 {
            for engine in [Engine::Faithful, Engine::Jump] {
                let cfg = RunConfig::new(16, 103).with_engine(engine);
                let mut rng = SplitMix64::new(seed);
                let out = Adaptive::paper().allocate(&cfg, &mut rng, &mut NullObserver);
                out.validate();
                assert!(
                    out.max_load() as u64 <= cfg.max_load_bound(),
                    "seed={seed} {engine:?}"
                );
            }
        }
    }

    #[test]
    fn tight_variant_is_perfectly_balanced() {
        // slack = 0 forces load < ⌈i/n⌉, so after m = ϕn balls every bin
        // has exactly ϕ.
        let cfg = RunConfig::new(8, 8 * 5).with_engine(Engine::Jump);
        let mut rng = SplitMix64::new(3);
        let out = Adaptive::tight().allocate(&cfg, &mut rng, &mut NullObserver);
        out.validate();
        assert_eq!(out.loads, vec![5u32; 8]);
        assert_eq!(out.gap(), 0);
    }

    #[test]
    fn tight_variant_costs_coupon_collector() {
        // Θ(m log n): at n = 64, ϕ = 4 the ratio T/m should be around
        // H_n ≈ 4.7, far above adaptive's small constant.
        let n = 64usize;
        let cfg = RunConfig::new(n, (n * 4) as u64).with_engine(Engine::Jump);
        let mut rng = SplitMix64::new(4);
        let tight = Adaptive::tight().allocate(&cfg, &mut rng, &mut NullObserver);
        let mut rng = SplitMix64::new(4);
        let paper = Adaptive::paper().allocate(&cfg, &mut rng, &mut NullObserver);
        assert!(
            tight.time_ratio() > 2.0 * paper.time_ratio(),
            "tight {} vs paper {}",
            tight.time_ratio(),
            paper.time_ratio()
        );
    }

    #[test]
    fn smoothness_beats_threshold_at_heavy_load() {
        // Corollary 3.5 vs Lemma 4.2 in miniature: m = n² with n = 64.
        let n = 64usize;
        let cfg = RunConfig::new(n, (n as u64) * (n as u64)).with_engine(Engine::Jump);
        let mut rng = SplitMix64::new(5);
        let ada = Adaptive::paper().allocate(&cfg, &mut rng, &mut NullObserver);
        let mut rng = SplitMix64::new(5);
        let thr = crate::protocols::Threshold.allocate(&cfg, &mut rng, &mut NullObserver);
        assert!(
            ada.psi() < thr.psi(),
            "adaptive Ψ {} should be below threshold Ψ {}",
            ada.psi(),
            thr.psi()
        );
        assert!(ada.gap() <= thr.gap());
    }

    #[test]
    fn name_reflects_variant() {
        assert_eq!(Adaptive::paper().name(), "adaptive");
        assert_eq!(Adaptive::tight().name(), "adaptive-tight");
        assert_eq!(Adaptive::with_slack(3).name(), "adaptive(+3)");
        assert_eq!(Adaptive::with_slack(3).slack(), 3);
    }

    #[test]
    fn works_when_m_not_multiple_of_n() {
        let cfg = RunConfig::new(7, 23).with_engine(Engine::Jump);
        let mut rng = SplitMix64::new(6);
        let out = Adaptive::paper().allocate(&cfg, &mut rng, &mut NullObserver);
        out.validate();
        assert!(out.max_load() as u64 <= cfg.max_load_bound());
    }
}
