//! Hand-rolled JSON: a minimal parser for `--check-bench` and an
//! escaping writer for `--json` output. Covers the full JSON grammar
//! (objects, arrays, strings with escapes, numbers, literals) minus
//! `\u` surrogate-pair decoding, which the bench schema never emits.

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys are kept in a `BTreeMap`: the
/// checker only looks values up by name, and deterministic order keeps
/// error messages stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Parses `text` as a single JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing content at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{c}` at offset {}, found {:?}",
                self.pos,
                self.peek()
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.get(self.pos).copied() {
                None => return Err("unterminated string".to_string()),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.chars.get(self.pos).copied() {
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        Some('r') => out.push('\r'),
                        Some('b') => out.push('\u{8}'),
                        Some('f') => out.push('\u{c}'),
                        Some('u') => {
                            let hex: String = self.chars[self.pos + 1..].iter().take(4).collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        Some(c) => out.push(c),
                        None => return Err("unterminated escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || "+-.eE".contains(c))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }
}

/// Field spec for one bench result row.
const ROW_STRINGS: &[&str] = &["protocol", "scenario", "engine"];
const ROW_NUMBERS: &[&str] = &[
    "n",
    "m",
    "reps",
    "threads",
    "wall_ms_mean",
    "wall_ms_best",
    "samples_per_ball",
    "mballs_per_sec",
    "shed_rate",
    "alive_frac",
];
const ROW_BOOLS: &[&str] = &["loads_materialized"];
const SCENARIOS: &[&str] = &["uniform", "weighted", "parallel", "stream"];
const ENGINES: &[&str] = &[
    "faithful",
    "jump",
    "level-batched",
    "histogram",
    "concurrent",
    "auto",
    "stream",
];

/// Validates a committed `BENCH_engines.json` document. Returns the
/// list of problems (empty = valid).
pub fn check_bench(text: &str) -> Vec<String> {
    let doc = match parse(text) {
        Ok(v) => v,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    let mut errs = Vec::new();
    let Value::Obj(top) = &doc else {
        return vec![format!(
            "top level must be an object, found {}",
            doc.type_name()
        )];
    };
    match top.get("schema") {
        Some(Value::Str(s)) if s == "bib-bench/engines/v6" => {}
        Some(Value::Str(s)) => {
            errs.push(format!("schema is `{s}`, expected `bib-bench/engines/v6`"))
        }
        _ => errs.push("missing string field `schema`".to_string()),
    }
    // Full (non-smoke) documents must carry a giant-n histogram-only
    // row: the lazy-outcome regime the engines are meant to reach.
    let smoke = matches!(top.get("smoke"), Some(Value::Bool(true)));
    if !matches!(top.get("seed"), Some(Value::Num(s)) if s.fract() == 0.0) {
        errs.push("missing integer field `seed`".to_string());
    }
    match top.get("host") {
        Some(Value::Obj(host)) => {
            for key in ["threads", "rustc"] {
                if !host.contains_key(key) {
                    errs.push(format!("host metadata missing `{key}`"));
                }
            }
        }
        _ => errs.push("missing object field `host`".to_string()),
    }
    let rows = match top.get("results") {
        Some(Value::Arr(rows)) if !rows.is_empty() => rows,
        Some(Value::Arr(_)) => {
            errs.push("`results` is empty".to_string());
            return errs;
        }
        _ => {
            errs.push("missing array field `results`".to_string());
            return errs;
        }
    };
    let mut has_parallel_histogram = false;
    let mut has_giant_lazy_row = false;
    // Every document must carry at least one stream-mode row (the
    // serve-mode fault/churn driver); full documents additionally need
    // one on the sharded engine at threads > 1.
    let mut has_stream_row = false;
    let mut has_multithread_stream_row = false;
    // Per-protocol multi-thread coverage for the parallel scenario: a
    // full document must show each round protocol on the concurrent
    // engine at more than one thread.
    let mut parallel_protocols = std::collections::BTreeSet::new();
    let mut multithreaded_protocols = std::collections::BTreeSet::new();
    for (i, row) in rows.iter().enumerate() {
        let Value::Obj(row) = row else {
            errs.push(format!(
                "results[{i}] is {}, not an object",
                row.type_name()
            ));
            continue;
        };
        for key in ROW_STRINGS {
            match row.get(*key) {
                Some(Value::Str(_)) => {}
                _ => errs.push(format!("results[{i}] missing string `{key}`")),
            }
        }
        for key in ROW_NUMBERS {
            match row.get(*key) {
                Some(Value::Num(v)) if v.is_finite() && *v >= 0.0 => {}
                Some(Value::Num(v)) => errs.push(format!(
                    "results[{i}].{key} = {v} is not a finite non-negative number"
                )),
                _ => errs.push(format!("results[{i}] missing number `{key}`")),
            }
        }
        for key in ROW_BOOLS {
            if !matches!(row.get(*key), Some(Value::Bool(_))) {
                errs.push(format!("results[{i}] missing bool `{key}`"));
            }
        }
        if let (Some(Value::Num(n)), Some(Value::Bool(false))) =
            (row.get("n"), row.get("loads_materialized"))
        {
            if *n >= 1e9 {
                has_giant_lazy_row = true;
            }
        }
        if let (Some(Value::Str(scenario)), Some(Value::Str(engine))) =
            (row.get("scenario"), row.get("engine"))
        {
            if !SCENARIOS.contains(&scenario.as_str()) {
                errs.push(format!(
                    "results[{i}].scenario `{scenario}` not in {SCENARIOS:?}"
                ));
            }
            if !ENGINES.contains(&engine.as_str()) {
                errs.push(format!("results[{i}].engine `{engine}` not in {ENGINES:?}"));
            }
            if scenario == "parallel" && engine == "histogram" {
                has_parallel_histogram = true;
            }
            if scenario == "stream" {
                has_stream_row = true;
                if matches!(row.get("threads"), Some(Value::Num(t)) if *t > 1.0) {
                    has_multithread_stream_row = true;
                }
            }
            if scenario == "parallel" {
                if let Some(Value::Str(protocol)) = row.get("protocol") {
                    parallel_protocols.insert(protocol.clone());
                    if matches!(row.get("threads"), Some(Value::Num(t)) if *t > 1.0) {
                        multithreaded_protocols.insert(protocol.clone());
                    }
                }
            }
        }
        if let (Some(Value::Num(mean)), Some(Value::Num(best))) =
            (row.get("wall_ms_mean"), row.get("wall_ms_best"))
        {
            if best > mean {
                errs.push(format!(
                    "results[{i}]: wall_ms_best {best} exceeds wall_ms_mean {mean}"
                ));
            }
        }
        for key in ["shed_rate", "alive_frac"] {
            if let Some(Value::Num(v)) = row.get(key) {
                if !(0.0..=1.0).contains(v) {
                    errs.push(format!("results[{i}].{key} = {v} is outside [0, 1]"));
                }
            }
        }
    }
    if !has_parallel_histogram {
        errs.push(
            "no parallel-scenario histogram-engine row (round-occupancy rows missing)".to_string(),
        );
    }
    if !has_stream_row {
        errs.push("no stream-scenario row (serve-mode rows missing)".to_string());
    }
    if !smoke && !has_multithread_stream_row {
        errs.push(
            "full run has no threads > 1 stream-scenario row \
             (sharded serve-mode rows missing)"
                .to_string(),
        );
    }
    if !smoke && !has_giant_lazy_row {
        errs.push(
            "full run has no n >= 10^9 row with loads_materialized = false \
             (giant-n lazy-outcome rows missing)"
                .to_string(),
        );
    }
    if !smoke {
        for protocol in parallel_protocols.difference(&multithreaded_protocols) {
            errs.push(format!(
                "full run has no threads > 1 row for parallel protocol \
                 `{protocol}` (concurrent-engine rows missing)"
            ));
        }
    }
    errs
}

/// Escapes a string for JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes findings as the `balls-lint/v1` report document.
pub fn findings_to_json(findings: &[Finding], checked_files: usize) -> String {
    let mut out = String::from("{\n  \"schema\": \"balls-lint/v1\",\n");
    let _ = write!(
        out,
        "  \"checked_files\": {checked_files},\n  \"findings\": ["
    );
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(f.rule),
            escape(&f.file),
            f.line,
            escape(&f.message),
        );
    }
    if findings.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trip_shapes() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null}"#)
            .expect("valid JSON parses");
        let Value::Obj(o) = v else { panic!("object") };
        assert_eq!(
            o["a"],
            Value::Arr(vec![Value::Num(1.0), Value::Num(2.5), Value::Num(-300.0)])
        );
        assert_eq!(o["b"], Value::Str("x\ny".to_string()));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
    }

    fn valid_doc() -> String {
        r#"{
  "schema": "bib-bench/engines/v6",
  "seed": 2013,
  "smoke": true,
  "host": {"threads": 1, "rustc": "rustc"},
  "results": [
    {"protocol": "collision(c=1)", "scenario": "parallel", "engine": "histogram",
     "n": 4096, "m": 4096, "reps": 3, "threads": 1, "wall_ms_mean": 2.0, "wall_ms_best": 1.0,
     "samples_per_ball": 3.0, "mballs_per_sec": 10.0, "shed_rate": 0.0, "alive_frac": 1.0,
     "loads_materialized": false},
    {"protocol": "collision(c=1)", "scenario": "parallel", "engine": "concurrent",
     "n": 8192, "m": 8192, "reps": 3, "threads": 8, "wall_ms_mean": 2.0, "wall_ms_best": 1.0,
     "samples_per_ball": 3.0, "mballs_per_sec": 10.0, "shed_rate": 0.0, "alive_frac": 1.0,
     "loads_materialized": true},
    {"protocol": "stream-greedy[2]", "scenario": "stream", "engine": "concurrent",
     "n": 1024, "m": 65536, "reps": 3, "threads": 4, "wall_ms_mean": 2.0, "wall_ms_best": 1.0,
     "samples_per_ball": 2.1, "mballs_per_sec": 20.0, "shed_rate": 0.001, "alive_frac": 1.0,
     "loads_materialized": true}
  ]
}"#
        .to_string()
    }

    #[test]
    fn valid_bench_doc_passes() {
        assert_eq!(check_bench(&valid_doc()), Vec::<String>::new());
    }

    #[test]
    fn full_runs_require_a_giant_lazy_row() {
        // A smoke doc passes without the n >= 10^9 row; flipping the
        // `smoke` flag alone must trip the gate …
        let full = valid_doc().replace("\"smoke\": true", "\"smoke\": false");
        assert!(check_bench(&full)
            .iter()
            .any(|e| e.contains("giant-n lazy-outcome rows missing")));
        // … and a lazy 10^9 row satisfies it; a materialized one does not.
        let with_giant = full.replace("\"n\": 4096,", "\"n\": 1000000000,");
        assert_eq!(check_bench(&with_giant), Vec::<String>::new());
        let materialized = with_giant.replace(
            "\"loads_materialized\": false",
            "\"loads_materialized\": true",
        );
        assert!(check_bench(&materialized)
            .iter()
            .any(|e| e.contains("giant-n lazy-outcome rows missing")));
    }

    #[test]
    fn full_runs_require_a_multithreaded_row_per_parallel_protocol() {
        // Smoke docs skip the gate; a full doc whose only threads > 1
        // row is gone must name the uncovered protocol.
        let full = valid_doc()
            .replace("\"smoke\": true", "\"smoke\": false")
            .replace("\"n\": 4096,", "\"n\": 1000000000,");
        assert_eq!(check_bench(&full), Vec::<String>::new());
        let serial_only = full.replace("\"threads\": 8,", "\"threads\": 1,");
        assert!(check_bench(&serial_only)
            .iter()
            .any(|e| e.contains("no threads > 1 row for parallel protocol `collision(c=1)`")));
    }

    #[test]
    fn stream_rows_are_gated_and_range_checked() {
        // Dropping the stream row trips the always-on gate.
        let no_stream =
            valid_doc().replace("\"scenario\": \"stream\"", "\"scenario\": \"parallel\"");
        assert!(check_bench(&no_stream)
            .iter()
            .any(|e| e.contains("serve-mode rows missing")));
        // A full run also needs a threads > 1 stream row.
        let serial_stream = valid_doc()
            .replace("\"smoke\": true", "\"smoke\": false")
            .replace("\"n\": 4096,", "\"n\": 1000000000,")
            .replace("\"threads\": 4,", "\"threads\": 1,");
        assert!(check_bench(&serial_stream)
            .iter()
            .any(|e| e.contains("sharded serve-mode rows missing")));
        // shed_rate / alive_frac must be rates.
        let bad_rate = valid_doc().replace(
            "\"alive_frac\": 1.0,\n     \"loads",
            "\"alive_frac\": 1.5,\n     \"loads",
        );
        assert!(check_bench(&bad_rate)
            .iter()
            .any(|e| e.contains("outside [0, 1]")));
    }

    #[test]
    fn bench_doc_catches_schema_and_row_defects() {
        let bad_schema = valid_doc().replace("engines/v6", "engines/v3");
        assert!(check_bench(&bad_schema)[0].contains("expected `bib-bench/engines/v6`"));

        let missing_bool = valid_doc().replace(",\n     \"loads_materialized\": false}", "}");
        assert!(check_bench(&missing_bool)
            .iter()
            .any(|e| e.contains("missing bool `loads_materialized`")));

        let bad_engine = valid_doc().replace("\"histogram\"", "\"warp-drive\"");
        let errs = check_bench(&bad_engine);
        assert!(errs.iter().any(|e| e.contains("warp-drive")));
        // Also loses the required parallel histogram row.
        assert!(errs.iter().any(|e| e.contains("round-occupancy")));

        let missing_field = valid_doc().replace("\"reps\": 3,", "");
        assert!(check_bench(&missing_field)
            .iter()
            .any(|e| e.contains("missing number `reps`")));

        let best_above_mean = valid_doc().replace("\"wall_ms_best\": 1.0", "\"wall_ms_best\": 9.0");
        assert!(check_bench(&best_above_mean)
            .iter()
            .any(|e| e.contains("exceeds wall_ms_mean")));
    }

    #[test]
    fn findings_json_escapes() {
        use crate::rules::Finding;
        let fs = vec![Finding {
            rule: "D1",
            file: "a\"b.rs".to_string(),
            line: 3,
            message: "say \"hi\"\n".to_string(),
        }];
        let s = findings_to_json(&fs, 7);
        assert!(s.contains("\\\"hi\\\"\\n"));
        assert!(s.contains("\"checked_files\": 7"));
        assert!(parse(&s).is_ok(), "output must be valid JSON");
    }
}
