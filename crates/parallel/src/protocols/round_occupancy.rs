//! Shared machinery of the **round-occupancy engine** — the parallel
//! family's `Engine::Histogram` path.
//!
//! The faithful round protocols pay `O(contacts)` per round: every
//! unplaced ball draws its contact bins one at a time and the per-bin
//! request structure is materialized. But the protocols are *symmetric*:
//! bins with equal load are exchangeable, unplaced balls carry no state
//! (collision, bounded-load) or only state the engine re-draws
//! (parallel-greedy's committed candidates), so a round is determined in
//! distribution by the **multiplicity profile** — the number of bins
//! receiving exactly `k` requests — plus how those bins spread over the
//! occupancy classes. Both are drawn in `O(max multiplicity + #classes)`
//! with the primitives `bib-core::histogram` exposes
//! ([`occupancy_profile`], [`hypergeometric`], [`distinct_hit_count`]):
//! per-round cost becomes independent of `n` and of the contact count.
//! On the no-observer path even the final identity reconstruction is
//! *skipped*: the outcome is a lazy [`bib_core::loads::Loads`] carrying
//! the histogram plus a reconstruction seed, so no `O(n)` pass runs
//! unless a caller later demands per-bin loads.
//!
//! What each protocol's engine preserves is documented on its
//! `allocate`; the shared contract: *rounds* and *messages* are
//! accumulated by the same counting rules as the faithful path, final
//! loads — if demanded — are reconstructed through a uniform random
//! assignment (the faithful law is exchangeable over bin identities),
//! stage traces fire once per round through one up-front permutation,
//! and `Observer::on_ball` never fires (it never fires for round
//! protocols anyway — balls act simultaneously).
//!
//! # Engine resolution
//!
//! The parallel family has exactly three concrete paths, so the engine
//! request in `RunConfig` resolves by a fixed documented rule
//! ([`resolve_round_engine`]): `Faithful` and `Jump` run the faithful
//! per-contact rounds (there is no geometric-jump shortcut for a
//! synchronous round), `Histogram` and `LevelBatched` run the
//! round-occupancy engine (the round engine *is* the family's batched
//! path), `Concurrent` runs the sharded multi-thread engine
//! ([`super::concurrent`]), and `Auto` resolves through
//! [`Engine::auto_parallel`] — except that an explicit `--threads`
//! request above one promotes `Auto` to `Concurrent` (a multi-thread
//! run on a serial engine would be a silent lie). No request is
//! silently ignored.
//!
//! [`occupancy_profile`]: bib_core::histogram::occupancy_profile
//! [`hypergeometric`]: bib_core::histogram::hypergeometric
//! [`distinct_hit_count`]: bib_core::histogram::distinct_hit_count
//! [`OccupancyHistogram::shuffled_loads`]: bib_core::histogram::OccupancyHistogram::shuffled_loads
//! [`Engine::auto_parallel`]: bib_core::protocol::Engine::auto_parallel

use bib_core::histogram::{block_composition, materialize, random_permutation, OccupancyHistogram};
use bib_core::loads::Loads;
use bib_core::protocol::{Engine, Observer};
use bib_rng::{Rng64, RngExt};

/// Groups of at most this many bins are assigned to their occupancy
/// classes one exact uniform pick at a time; larger groups run the
/// hypergeometric chain (mirrors the sequential engine's
/// `PER_HIT_SPLIT`).
const EXACT_GROUP: u64 = 8;

/// Resolves the engine request for a round protocol: the family's fixed
/// three-path rule (see the module docs). Never returns `Auto`, `Jump`
/// or `LevelBatched`.
pub(crate) fn resolve_round_engine(engine: Engine, n: usize, m: u64, threads: usize) -> Engine {
    match engine {
        Engine::Auto if threads > 1 => Engine::Concurrent,
        Engine::Auto => Engine::auto_parallel(n, m),
        Engine::Faithful | Engine::Jump => Engine::Faithful,
        Engine::Histogram | Engine::LevelBatched => Engine::Histogram,
        Engine::Concurrent => Engine::Concurrent,
    }
}

/// A frozen snapshot of the occupancy classes at round start, consumed
/// as groups of bins are assigned to classes *without replacement*
/// (different multiplicity groups of one round are disjoint bin sets,
/// so each group's class split conditions on everything already
/// assigned).
pub(crate) struct LevelSlots {
    /// `(load, unassigned bins)` in ascending load order.
    levels: Vec<(u32, u64)>,
    /// Total unassigned bins across all levels.
    total: u64,
}

impl LevelSlots {
    /// Snapshots the classes with load `< below` (`None` = every
    /// class), reusing `buf` for the level storage.
    pub(crate) fn snapshot(
        hist: &OccupancyHistogram,
        below: Option<u32>,
        mut buf: Vec<(u32, u64)>,
    ) -> Self {
        buf.clear();
        let mut total = 0u64;
        for (l, c) in hist.levels() {
            if below.is_some_and(|t| l >= t) {
                break; // levels are ascending
            }
            buf.push((l, c));
            total += c;
        }
        Self { levels: buf, total }
    }

    /// Bins not yet assigned this round.
    pub(crate) fn remaining(&self) -> u64 {
        self.total
    }

    /// Recovers the level buffer for reuse in the next round.
    pub(crate) fn into_buf(self) -> Vec<(u32, u64)> {
        self.levels
    }

    /// Assigns `group` bins to classes without replacement, calling
    /// `f(load, count)` once per receiving class. Exact sequential
    /// picks for small groups; a hypergeometric chain (exact mean and
    /// finite-population variance, clamped to the feasible support so
    /// the chain surely completes) for large ones.
    pub(crate) fn assign<R, F>(&mut self, group: u64, rng: &mut R, mut f: F)
    where
        R: Rng64 + ?Sized,
        F: FnMut(u32, u64),
    {
        debug_assert!(group <= self.total, "assign: group exceeds the pool");
        if group == 0 {
            return;
        }
        let live = self.levels.iter().filter(|&&(_, c)| c > 0).count();
        if live == 1 {
            let (l, c) = self
                .levels
                .iter_mut()
                .find(|&&mut (_, c)| c > 0)
                .expect("live == 1");
            f(*l, group);
            *c -= group;
            self.total -= group;
            return;
        }
        if group <= EXACT_GROUP {
            for _ in 0..group {
                let mut r = rng.range_u64(self.total);
                for &mut (l, ref mut c) in self.levels.iter_mut() {
                    if r < *c {
                        f(l, 1);
                        *c -= 1;
                        break;
                    }
                    r -= *c;
                }
                self.total -= 1;
            }
            return;
        }
        // Large groups run the shared conditional-hypergeometric chain.
        block_composition(&mut self.levels, self.total, group, rng, |_, l, t| f(l, t));
        self.total -= group;
    }
}

/// Stage-trace plumbing for the round engines: drivers that run with a
/// trace-consuming observer draw one permutation up front and
/// materialize the histogram through it at every round end, so the
/// synthetic bin identities are consistent across the trace and the
/// final loads. Trace-free runs skip the permutation entirely and
/// reconstruct once at the end with the cache-friendly sequential
/// assignment.
pub(crate) struct RoundTrace {
    perm: Option<Vec<u32>>,
}

impl RoundTrace {
    /// Draws the permutation iff the observer consumes stage ends.
    pub(crate) fn new<R, O>(n: usize, rng: &mut R, obs: &O) -> Self
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        Self {
            perm: obs.wants_stage_ends().then(|| random_permutation(n, rng)),
        }
    }

    /// Reports the end of round `round` with `placed` balls down.
    pub(crate) fn stage_end<O: Observer + ?Sized>(
        &self,
        obs: &mut O,
        round: u32,
        hist: &OccupancyHistogram,
        placed: u64,
    ) {
        if let Some(perm) = &self.perm {
            obs.on_stage_end(round as u64, &materialize(hist, perm), placed);
        }
    }

    /// Final loads: through the trace permutation when one exists (so
    /// the last trace frame and the outcome agree — dense-born), else a
    /// *virtual* [`Loads`]: the histogram plus one reconstruction seed,
    /// deferring the `O(n)` assignment (sharded over threads at large
    /// `n`, see [`bib_core::histogram::sharded_shuffled_loads`]) until
    /// someone actually asks for per-bin loads.
    pub(crate) fn finish<R: Rng64 + ?Sized>(
        &self,
        hist: &OccupancyHistogram,
        rng: &mut R,
    ) -> Loads {
        match &self.perm {
            Some(perm) => Loads::from_vec(materialize(hist, perm)),
            None => Loads::from_histogram(hist.clone(), rng.next_u64()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_rng::SplitMix64;

    #[test]
    fn resolve_covers_every_request() {
        // Aliases are fixed and documented; Auto resolves by size, but
        // an explicit multi-thread request promotes Auto to Concurrent.
        assert_eq!(
            resolve_round_engine(Engine::Faithful, 8, 8, 1),
            Engine::Faithful
        );
        assert_eq!(
            resolve_round_engine(Engine::Jump, 8, 8, 1),
            Engine::Faithful
        );
        assert_eq!(
            resolve_round_engine(Engine::Histogram, 8, 8, 1),
            Engine::Histogram
        );
        assert_eq!(
            resolve_round_engine(Engine::LevelBatched, 8, 8, 1),
            Engine::Histogram
        );
        assert_eq!(
            resolve_round_engine(Engine::Auto, 8, 8, 1),
            Engine::Faithful
        );
        assert_eq!(
            resolve_round_engine(Engine::Auto, 1 << 20, 1 << 20, 1),
            Engine::Histogram
        );
        assert_eq!(
            resolve_round_engine(Engine::Auto, 8, 8, 4),
            Engine::Concurrent
        );
        assert_eq!(
            resolve_round_engine(Engine::Concurrent, 8, 8, 1),
            Engine::Concurrent
        );
        // Serial engine requests win over a thread count: the caller
        // asked for a specific path.
        assert_eq!(
            resolve_round_engine(Engine::Histogram, 8, 8, 4),
            Engine::Histogram
        );
    }

    #[test]
    fn assign_conserves_bins_across_paths() {
        // Small (exact) and large (chain) groups, multi-level pools.
        for group in [1u64, 5, 8, 9, 100, 900] {
            let mut hist = OccupancyHistogram::new(1000);
            hist.promote(0, 400, 1);
            hist.promote(0, 100, 2);
            let mut rng = SplitMix64::new(group);
            let mut slots = LevelSlots::snapshot(&hist, None, Vec::new());
            assert_eq!(slots.remaining(), 1000);
            let mut seen = 0u64;
            slots.assign(group, &mut rng, |_, c| seen += c);
            assert_eq!(seen, group, "group {group}");
            assert_eq!(slots.remaining(), 1000 - group);
        }
    }

    #[test]
    fn snapshot_respects_the_open_bound() {
        let mut hist = OccupancyHistogram::new(10);
        hist.promote(0, 4, 1);
        hist.promote(0, 2, 3);
        let slots = LevelSlots::snapshot(&hist, Some(3), Vec::new());
        assert_eq!(slots.remaining(), 8); // loads 0 and 1 only
        let all = LevelSlots::snapshot(&hist, None, Vec::new());
        assert_eq!(all.remaining(), 10);
    }

    #[test]
    fn assign_is_uniform_over_the_pool() {
        // Two equal classes: a single assigned bin lands in either with
        // probability 1/2.
        let mut rng = SplitMix64::new(7);
        let mut low = 0u64;
        for _ in 0..4000 {
            let mut hist = OccupancyHistogram::new(100);
            hist.promote(0, 50, 1);
            let mut slots = LevelSlots::snapshot(&hist, None, Vec::new());
            slots.assign(1, &mut rng, |l, c| {
                if l == 0 {
                    low += c;
                }
            });
        }
        assert!((1700..=2300).contains(&low), "low-class picks: {low}");
    }
}
