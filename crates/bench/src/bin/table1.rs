//! **E1 — Table 1**: allocation time and maximum load across schemes.
//!
//! Reproduces the comparison table of the paper empirically: for each
//! protocol, the measured allocation time (as a multiple of `m`) and the
//! measured maximum load (as an excess over the average `⌈m/n⌉`), across
//! light (`ϕ = 1`), moderate (`ϕ = 8`) and heavy (`ϕ = 64`) loads.
//!
//! The CRS reallocation scheme reports its reallocation count in the
//! last column; sample-only protocols show `0` there.
//!
//! ```text
//! cargo run --release -p bib-bench --bin table1 [-- --quick --csv]
//! ```

use bib_analysis::Welford;
use bib_bench::{f, ExpArgs, Table};
use bib_core::prelude::*;
use bib_core::protocols::table1_suite;
use bib_core::run::replicate_seed;
use bib_reloc::Crs;
use bib_rng::SeedSequence;

fn main() {
    let args = ExpArgs::parse();
    let n = args.pick(1usize << 14, 1usize << 10);
    let phis: &[u64] = args.pick(&[1, 8, 64][..], &[1, 8][..]);
    let reps = args.reps_or(30, 5);

    println!("# Table 1 (empirical): n = {n}, reps = {reps}; excess = max load − ⌈m/n⌉\n");
    let mut table = Table::new(vec![
        "protocol",
        "phi",
        "time/m",
        "max_excess",
        "gap",
        "realloc/m",
    ]);

    for &phi in phis {
        let m = phi * n as u64;
        let cfg = RunConfig::new(n, m).with_engine(args.engine_or(Engine::Jump));
        let ceil_avg = m.div_ceil(n as u64) as f64;

        for proto in table1_suite() {
            let mut time = Welford::new();
            let mut excess = Welford::new();
            let mut gap = Welford::new();
            for rep in 0..reps {
                let seed = replicate_seed(args.seed, &proto.name(), rep);
                let mut rng = SeedSequence::new(seed).rng();
                let out = proto.allocate(&cfg, &mut rng, &mut NullObserver);
                out.validate();
                time.push(out.time_ratio());
                excess.push(out.max_load() as f64 - ceil_avg);
                gap.push(out.gap() as f64);
            }
            table.row(vec![
                proto.name(),
                phi.to_string(),
                f(time.mean()),
                f(excess.mean()),
                f(gap.mean()),
                "0".into(),
            ]);
        }

        // CRS (reallocation-based, [6]).
        let mut time = Welford::new();
        let mut excess = Welford::new();
        let mut gap = Welford::new();
        let mut realloc = Welford::new();
        for rep in 0..reps {
            let seed = replicate_seed(args.seed, "crs", rep);
            let mut rng = SeedSequence::new(seed).rng();
            let out = Crs::new().run(n, m, &mut rng);
            out.validate();
            time.push(out.samples as f64 / m.max(1) as f64);
            excess.push(out.max_load() as f64 - ceil_avg);
            let min = out.loads.iter().copied().min().unwrap_or(0);
            gap.push((out.max_load() - min) as f64);
            realloc.push(out.reallocations as f64 / m.max(1) as f64);
        }
        table.row(vec![
            "crs[2]".to_string(),
            phi.to_string(),
            f(time.mean()),
            f(excess.mean()),
            f(gap.mean()),
            f(realloc.mean()),
        ]);
    }

    table.print(&args);
    println!("\n# Expected shapes (paper Table 1):");
    println!("#  one-choice: time/m = 1, worst excess/gap, growing with phi");
    println!("#  greedy[d]/left[d]: time/m = d, excess ~ ln ln n band");
    println!("#  memory(1,1): time/m = 1, excess comparable to greedy[2]");
    println!("#  threshold & adaptive: excess <= 1 ALWAYS; time/m -> 1 resp. small constant");
    println!("#  crs[2]: excess ~ 0 but pays reallocations");
}
