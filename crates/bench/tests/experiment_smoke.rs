//! End-to-end tests of every experiment binary: run with
//! `--quick --csv`, parse the CSV, and assert the headline *shape* each
//! experiment exists to demonstrate.
//!
//! Cargo builds the binaries for integration tests and exposes their
//! paths through `CARGO_BIN_EXE_<name>`.

use std::collections::BTreeMap;
use std::process::Command;

/// Runs a binary with the given args and returns stdout.
fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("non-UTF8 output")
}

/// Extracts the first CSV block (header + rows) from mixed output:
/// lines containing commas, skipping `#` comments and prose.
fn parse_csv(output: &str) -> (Vec<String>, Vec<Vec<String>>) {
    let mut header: Option<Vec<String>> = None;
    let mut rows = Vec::new();
    for line in output.lines() {
        if line.starts_with('#') || !line.contains(',') {
            if header.is_some() && !line.contains(',') && !line.trim().is_empty() {
                break; // end of the first CSV block
            }
            continue;
        }
        let cells: Vec<String> = line.split(',').map(|s| s.trim().to_string()).collect();
        if header.is_none() {
            header = Some(cells);
        } else {
            rows.push(cells);
        }
    }
    (header.expect("no CSV header found"), rows)
}

/// Column accessor by header name.
fn col(header: &[String], rows: &[Vec<String>], name: &str) -> Vec<f64> {
    let idx = header
        .iter()
        .position(|h| h == name)
        .unwrap_or_else(|| panic!("missing column {name} in {header:?}"));
    rows.iter()
        .map(|r| {
            r[idx]
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad cell {}", r[idx]))
        })
        .collect()
}

#[test]
fn table1_shapes() {
    let out = run(env!("CARGO_BIN_EXE_table1"), &["--quick", "--csv"]);
    let (h, rows) = parse_csv(&out);
    assert!(!rows.is_empty());
    // Group rows by protocol.
    let mut excess: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let pi = h.iter().position(|c| c == "protocol").unwrap();
    let ei = h.iter().position(|c| c == "max_excess").unwrap();
    for r in &rows {
        excess
            .entry(r[pi].clone())
            .or_default()
            .push(r[ei].parse().unwrap());
    }
    // The defining row property: threshold & adaptive excess ≤ 1.
    for p in ["threshold", "adaptive"] {
        for &e in &excess[p] {
            assert!(e <= 1.0 + 1e-9, "{p} excess {e}");
        }
    }
    // one-choice strictly worse than greedy[2].
    let one: f64 = excess["one-choice"].iter().sum();
    let g2: f64 = excess["greedy[2]"].iter().sum();
    assert!(one > g2);
}

#[test]
fn figure3a_shapes() {
    let out = run(env!("CARGO_BIN_EXE_figure3a"), &["--quick", "--csv"]);
    let (h, rows) = parse_csv(&out);
    let thr = col(&h, &rows, "threshold_T/m");
    let ada = col(&h, &rows, "adaptive_T/m");
    for (t, a) in thr.iter().zip(&ada) {
        assert!(*t >= 1.0 && *a >= 1.0);
        assert!(a > t, "adaptive {a} should cost more than threshold {t}");
    }
    // threshold's ratio decreases along the sweep.
    assert!(thr.last().unwrap() < thr.first().unwrap());
}

#[test]
fn figure3b_shapes() {
    let out = run(env!("CARGO_BIN_EXE_figure3b"), &["--quick", "--csv"]);
    let (h, rows) = parse_csv(&out);
    let ada = col(&h, &rows, "adaptive_psi");
    let thr = col(&h, &rows, "threshold_psi");
    // adaptive flat (last within 2x of first), threshold growing.
    assert!(ada.last().unwrap() < &(2.0 * ada.first().unwrap()));
    assert!(thr.last().unwrap() > &(1.2 * thr.first().unwrap()));
    for (a, t) in ada.iter().zip(&thr) {
        assert!(t > a, "threshold psi {t} !> adaptive psi {a}");
    }
}

#[test]
fn theorem31_bounded_excess() {
    let out = run(env!("CARGO_BIN_EXE_theorem31"), &["--quick", "--csv"]);
    let (h, rows) = parse_csv(&out);
    for v in col(&h, &rows, "(T-m)/m") {
        assert!((0.0..1.0).contains(&v), "normalised excess {v}");
    }
}

#[test]
fn theorem41_envelope_constant() {
    let out = run(env!("CARGO_BIN_EXE_theorem41"), &["--quick", "--csv"]);
    let (h, rows) = parse_csv(&out);
    let norm = col(&h, &rows, "(T-m)/env");
    for &v in &norm {
        assert!(v > 0.0 && v < 3.0, "envelope-normalised excess {v}");
    }
}

#[test]
fn corollary35_flat_columns() {
    let out = run(env!("CARGO_BIN_EXE_corollary35"), &["--quick", "--csv"]);
    let (h, rows) = parse_csv(&out);
    for v in col(&h, &rows, "phi/n") {
        assert!(v < 5.0, "phi/n {v}");
    }
    for v in col(&h, &rows, "psi/n") {
        assert!(v < 20.0, "psi/n {v}");
    }
}

#[test]
fn lemma42_separation() {
    let out = run(env!("CARGO_BIN_EXE_lemma42"), &["--quick", "--csv"]);
    let (h, rows) = parse_csv(&out);
    let t_psi = col(&h, &rows, "thr_psi/n^1.125");
    let a_psi = col(&h, &rows, "ada_psi/n");
    for &v in &t_psi {
        assert!(
            v > 0.5,
            "threshold psi/n^(9/8) {v} should be bounded away from 0"
        );
    }
    for &v in &a_psi {
        assert!(v < 20.0, "adaptive psi/n {v} should stay O(1)");
    }
}

#[test]
fn coupon_ablation_prediction() {
    let out = run(env!("CARGO_BIN_EXE_coupon_ablation"), &["--quick", "--csv"]);
    let (h, rows) = parse_csv(&out);
    for v in col(&h, &rows, "tight_T/(phi*n*H_n)") {
        assert!((v - 1.0).abs() < 0.2, "coupon prediction ratio {v}");
    }
    for v in col(&h, &rows, "tight_gap") {
        assert_eq!(v, 0.0, "tight variant must balance perfectly");
    }
}

#[test]
fn parallel_rounds_caps() {
    let out = run(env!("CARGO_BIN_EXE_parallel_rounds"), &["--quick", "--csv"]);
    let (h, rows) = parse_csv(&out);
    for v in col(&h, &rows, "bl_max") {
        assert!(v <= 2.0, "bounded-load max {v}");
    }
    for v in col(&h, &rows, "bl_rounds") {
        assert!(v <= 12.0, "rounds {v}");
    }
}

#[test]
fn cuckoo_threshold_explosion() {
    let out = run(
        env!("CARGO_BIN_EXE_cuckoo_thresholds"),
        &["--quick", "--csv"],
    );
    let (h, rows) = parse_csv(&out);
    let kicks = col(&h, &rows, "avg_kicks");
    assert!(!kicks.is_empty());
    // Cost must grow along each k's band sweep (first < last by a lot
    // overall).
    let first = kicks.first().unwrap();
    let max = kicks.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max > 10.0 * (first + 0.01),
        "no explosion: first {first}, max {max}"
    );
}

#[test]
fn paper_constants_verifies_lemma32() {
    let out = run(env!("CARGO_BIN_EXE_paper_constants"), &["--quick"]);
    assert!(out.contains("C1"));
    assert!(
        out.contains("every k <= C1: YES"),
        "Lemma 3.2 check failed:\n{out}"
    );
}

#[test]
fn lemma33_drift_contracts() {
    let out = run(env!("CARGO_BIN_EXE_lemma33_drift"), &["--quick", "--csv"]);
    let (h, rows) = parse_csv(&out);
    let phi = col(&h, &rows, "phi/n");
    // Within each start level the potential decreases along stages; we
    // check the global first-vs-later trend per level via the stage col.
    let stage = col(&h, &rows, "stage");
    let level = col(&h, &rows, "phi0/n");
    for i in 1..rows.len() {
        if level[i] == level[i - 1] && stage[i] > stage[i - 1] {
            assert!(
                phi[i] <= phi[i - 1] * 1.01,
                "phi/n rose: {} -> {} at stage {}",
                phi[i - 1],
                phi[i],
                stage[i]
            );
        }
    }
}

#[test]
fn extensions_hold_guarantees() {
    let out = run(env!("CARGO_BIN_EXE_extensions"), &["--quick", "--csv"]);
    // First CSV block: batched sweep.
    let (h, rows) = parse_csv(&out);
    for v in col(&h, &rows, "max_excess") {
        assert!(v <= 1.0 + 1e-9, "batched excess {v}");
    }
}

#[test]
fn binaries_reject_unknown_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_table1"))
        .arg("--bogus")
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn bench_json_smoke_writes_valid_json() {
    let out_path = std::env::temp_dir().join("bib_bench_engines_smoke.json");
    let path = out_path.to_str().unwrap();
    let echo = run(
        env!("CARGO_BIN_EXE_bench_json"),
        &["--smoke", "--out", path],
    );
    assert!(echo.contains("level-batched"));
    assert!(echo.contains("histogram"));
    let json = std::fs::read_to_string(&out_path).expect("bench_json must write its output file");
    assert!(json.contains("\"schema\": \"bib-bench/engines/v6\""));
    assert!(json.contains("\"host\""), "host metadata missing");
    assert!(json.contains("\"threads\""), "thread count missing");
    assert!(json.contains("\"rustc\""), "rustc version missing");
    // Full matrix: 3 sizes x (4 engines + auto) x 2 protocols, plus the
    // fixed-sample block at the heavy size (2 protocols x 3 engines),
    // the weighted block (3 weight shapes x (3 adaptive engines + 1
    // one-choice row)), the parallel-round block (3 protocols x
    // ({faithful, histogram, auto} + concurrent at 1/2/8 threads)) and
    // the serve-mode block (2 serial families + 1 concurrent row).
    assert_eq!(json.matches("\"protocol\"").count(), 69);
    // Every row is tagged with its scenario, records (schema v4)
    // whether it ever materialized the dense load vector, and carries
    // (schema v5) its in-run worker-thread count.
    assert_eq!(
        json.matches("\"protocol\"").count(),
        json.matches("\"scenario\"").count(),
        "every row must carry a scenario tag"
    );
    assert_eq!(
        json.matches("\"protocol\"").count(),
        json.matches("\"loads_materialized\"").count(),
        "every row must carry the lazy-outcome flag"
    );
    assert!(
        json.contains("\"loads_materialized\": false"),
        "histogram rows must stay lazy"
    );
    assert_eq!(
        json.matches("\"protocol\"").count(),
        json.matches("\"threads\":").count() - 1, // host header has one too
        "every row must carry its thread count"
    );
    assert!(
        json.contains("\"threads\": 8"),
        "the concurrent engine must contribute multi-thread rows"
    );
    for engine in [
        "faithful",
        "jump",
        "level-batched",
        "histogram",
        "auto",
        "concurrent",
    ] {
        assert!(
            json.contains(&format!("\"engine\": \"{engine}\"")),
            "missing engine {engine}"
        );
    }
    for protocol in ["one-choice", "greedy[2]"] {
        assert!(
            json.contains(&format!("\"protocol\": \"{protocol}\"")),
            "missing fixed-sample protocol {protocol}"
        );
    }
    for scenario in ["uniform", "weighted", "parallel", "stream"] {
        assert!(
            json.contains(&format!("\"scenario\": \"{scenario}\"")),
            "missing scenario {scenario}"
        );
    }
    // Serve-mode rows (schema v6) carry the degradation ledger, and
    // the mid-run mass failure must leave a counted trace: at least
    // one stream row records a nonzero shed rate or a sub-1.0 alive
    // fraction is impossible here (the plan recovers), so instead pin
    // the columns themselves plus the stream-keyed protocol name.
    assert_eq!(
        json.matches("\"protocol\"").count(),
        json.matches("\"shed_rate\"").count(),
        "every row must carry shed_rate"
    );
    assert_eq!(
        json.matches("\"protocol\"").count(),
        json.matches("\"alive_frac\"").count(),
        "every row must carry alive_frac"
    );
    assert!(
        json.contains("\"protocol\": \"stream-greedy[2]\""),
        "missing serve-mode stream row"
    );
    assert!(
        json.contains("\"engine\": \"stream\""),
        "missing serial serve-mode row"
    );
    // Weighted rows are keyed by their weight shape so the three shape
    // groups stay distinguishable; parallel rows by protocol name.
    for protocol in [
        "weighted-adaptive[near-degenerate]",
        "weighted-adaptive[two-class]",
        "weighted-adaptive[power-law-16]",
        "weighted-one-choice[two-class]",
        "bounded-load(cap=2)",
        "collision(c=1)",
        "parallel-greedy(d=2,r=4,q=1)",
    ] {
        assert!(
            json.contains(&format!("\"protocol\": \"{protocol}\"")),
            "missing scenario-family protocol {protocol}"
        );
    }
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn histogram_only_sweep_asserts_lazy_outcomes() {
    // --no-loads runs the sweep histogram-only; the binaries panic if
    // any outcome materializes its load vector, so a clean exit is the
    // lazy-contract assertion.
    let out = run(
        env!("CARGO_BIN_EXE_corollary35"),
        &["--quick", "--csv", "--no-loads", "--reps", "2"],
    );
    let (h, rows) = parse_csv(&out);
    assert!(!rows.is_empty());
    assert!(h.iter().any(|c| c == "phi/n"));
    let out = run(
        env!("CARGO_BIN_EXE_lemma42"),
        &["--quick", "--csv", "--no-loads", "--reps", "2"],
    );
    let (_, rows) = parse_csv(&out);
    assert!(!rows.is_empty());
}

#[test]
fn experiment_binaries_accept_engine_flag() {
    // --engine must parse and steer the run on a representative binary.
    let out = run(
        env!("CARGO_BIN_EXE_lemma42"),
        &[
            "--quick",
            "--csv",
            "--engine",
            "level-batched",
            "--reps",
            "2",
        ],
    );
    let (h, rows) = parse_csv(&out);
    assert!(!rows.is_empty());
    assert!(h.iter().any(|c| c == "thr_psi/n^1.125"));
}
