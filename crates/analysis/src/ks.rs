//! One-sample Kolmogorov–Smirnov goodness-of-fit testing.
//!
//! Complements the chi-square machinery in [`crate::chisq`]: chi-square
//! handles discrete samplers (Poisson, binomial, …); the KS test handles
//! *continuous* ones (the uniform `f64` conversion, exponential and
//! normal samplers in `bib-rng`). The p-value uses the asymptotic
//! Kolmogorov distribution with the Stephens finite-sample correction.

/// Result of a one-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic `D_n = sup_x |F_n(x) − F(x)|`.
    pub statistic: f64,
    /// Sample size.
    pub n: usize,
    /// Asymptotic two-sided p-value.
    pub p_value: f64,
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`, clamped to `[0, 1]`.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    assert!(lambda >= 0.0, "kolmogorov_sf: negative statistic");
    if lambda < 1e-6 {
        return 1.0;
    }
    if lambda < 1.18 {
        // The alternating series converges hopelessly slowly for small λ;
        // use the Jacobi-theta representation of the *cdf* instead:
        // P(λ) = (√(2π)/λ) Σ_{k odd} e^{−k²π²/(8λ²)}.
        let t = -(std::f64::consts::PI * std::f64::consts::PI) / (8.0 * lambda * lambda);
        let cdf = (2.0 * std::f64::consts::PI).sqrt() / lambda
            * (t.exp() + (9.0 * t).exp() + (25.0 * t).exp() + (49.0 * t).exp());
        return (1.0 - cdf).clamp(0.0, 1.0);
    }
    let mut sum = 0.0f64;
    let mut sign = 1.0f64;
    for k in 1..=100u32 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One-sample KS test of `data` against the cdf `F` (which must be a
/// valid cdf of a continuous distribution).
///
/// Sorts a copy of the data; panics on empty input or NaNs.
///
/// # Examples
///
/// ```
/// use bib_analysis::ks::ks_test;
/// // A perfect uniform grid fits the uniform cdf…
/// let grid: Vec<f64> = (0..100).map(|i| (i as f64 + 0.5) / 100.0).collect();
/// assert!(ks_test(&grid, |x| x).p_value > 0.99);
/// // …and grossly misfits a skewed cdf.
/// assert!(ks_test(&grid, |x| x * x).p_value < 1e-4);
/// ```
pub fn ks_test<F: Fn(f64) -> f64>(data: &[f64], cdf: F) -> KsTest {
    assert!(!data.is_empty(), "ks_test: empty sample");
    let mut xs = data.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let n = xs.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in xs.iter().enumerate() {
        let f = cdf(x);
        assert!(
            (0.0..=1.0).contains(&f),
            "ks_test: cdf({x}) = {f} out of [0,1]"
        );
        // D⁺ and D⁻ at this order statistic.
        let d_plus = (i as f64 + 1.0) / n - f;
        let d_minus = f - i as f64 / n;
        d = d.max(d_plus).max(d_minus);
    }
    // Stephens' correction for finite n.
    let sqrt_n = n.sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    KsTest {
        statistic: d,
        n: xs.len(),
        p_value: kolmogorov_sf(lambda),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kolmogorov_sf_known_points() {
        // Q(λ) at the classic 5% critical value λ ≈ 1.358.
        assert!((kolmogorov_sf(1.358) - 0.05).abs() < 0.002);
        assert!(kolmogorov_sf(0.0) == 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
        // Monotone decreasing.
        assert!(kolmogorov_sf(0.5) > kolmogorov_sf(1.0));
    }

    #[test]
    fn perfect_uniform_grid_has_tiny_statistic() {
        // Points at (i − 0.5)/n minimise D at 1/(2n).
        let n = 1000usize;
        let data: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let r = ks_test(&data, |x| x.clamp(0.0, 1.0));
        assert!((r.statistic - 0.5 / n as f64).abs() < 1e-12);
        assert!(r.p_value > 0.999);
    }

    #[test]
    fn shifted_sample_is_rejected() {
        // Uniform data tested against a wrong cdf (squared) must fail.
        let n = 2000usize;
        let data: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let r = ks_test(&data, |x| (x * x).clamp(0.0, 1.0));
        assert!(r.p_value < 1e-10, "p={}", r.p_value);
    }

    #[test]
    fn statistic_invariant_under_monotone_transform() {
        // KS is distribution-free: exp-transforming data and cdf must
        // give the same statistic.
        let data: Vec<f64> = (0..500).map(|i| ((i * 37) % 501) as f64 / 501.0).collect();
        let r1 = ks_test(&data, |x| x.clamp(0.0, 1.0));
        let exp_data: Vec<f64> = data.iter().map(|&x| -(1.0 - x).ln()).collect();
        let r2 = ks_test(&exp_data, |x| (1.0 - (-x).exp()).clamp(0.0, 1.0));
        assert!((r1.statistic - r2.statistic).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn empty_sample_panics() {
        ks_test(&[], |x| x);
    }
}
