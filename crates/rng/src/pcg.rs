//! PCG32 (XSH-RR 64/32) — O'Neill's permuted congruential generator.
//!
//! 64-bit LCG state with a 32-bit permuted output. Included both as a
//! third independent generator family for robustness experiments and
//! because its published reference vectors give the test suite an
//! end-to-end correctness anchor that does not depend on our own code.

use crate::Rng64;

/// PCG32 generator (XSH-RR 64/32 variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Creates a generator from a seed and a stream id, following the
    /// reference `pcg32_srandom_r` initialisation.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut g = Self {
            state: 0,
            inc: (stream << 1) | 1,
        };
        g.step();
        g.state = g.state.wrapping_add(seed);
        g.step();
        g
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
    }

    /// Next 32-bit output (the generator's native width).
    #[inline]
    pub fn next_u32_native(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

impl Rng64 for Pcg32 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Two native outputs; high word first.
        let hi = self.next_u32_native() as u64;
        let lo = self.next_u32_native() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngExt;

    /// The canonical demo vector from the PCG reference distribution:
    /// `pcg32_srandom_r(&rng, 42u, 54u)` produces these first outputs.
    #[test]
    fn reference_vector_seed42_stream54() {
        let mut g = Pcg32::new(42, 54);
        let expected: [u32; 6] = [
            0xA15C_02B7,
            0x7B47_F409,
            0xBA1D_3330,
            0x83D2_F293,
            0xBFA4_784B,
            0xCBED_606E,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(g.next_u32_native(), e, "output {i}");
        }
    }

    #[test]
    fn streams_are_distinct() {
        let mut a = Pcg32::new(1, 0);
        let mut b = Pcg32::new(1, 1);
        let same = (0..256)
            .filter(|_| a.next_u32_native() == b.next_u32_native())
            .count();
        assert!(same <= 1, "streams nearly identical: {same} collisions");
    }

    #[test]
    fn u64_combination_is_deterministic() {
        let mut a = Pcg32::new(5, 7);
        let mut b = Pcg32::new(5, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_sampling_uniform_rough() {
        let mut g = Pcg32::new(2024, 1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[g.range_usize(10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((9_300..10_700).contains(&c), "bucket {i}: {c}");
        }
    }
}
