//! Distributional equivalence of the occupancy-histogram engine.
//!
//! The claim (see `bib-core::histogram`): `Engine::Histogram` induces
//! the same distribution on final load vectors as `Engine::Faithful`
//! for every protocol it accepts — `threshold` (and slack variants),
//! `adaptive` (and its batched/tight variants), `one-choice` and
//! `greedy[d]` — with the large-class occupancy splits being
//! moment-exact approximations whose error these tests bound. Checked
//! four ways:
//!
//! * exact small cases — `n = 1` (deterministic), the degenerate
//!   stages of `adaptive-tight` (deterministic), and sure invariants
//!   (mass, the `⌈m/n⌉+1` bound) across sizes including ones that
//!   engage every scatter path;
//! * two-sample chi-square tests on final-load functionals between
//!   faithful and histogram replicate ensembles, at small sizes (where
//!   the engine is exact) *and* at sizes that exercise the
//!   normal-approximated splits and the occupancy-cell walk;
//! * allocation-time tracking against the jump engine's exact
//!   accounting;
//! * `Engine::Auto` resolution: deterministic, valid, and identical to
//!   the concrete engine it resolves to.

use bib_analysis::chisq::chi_square_sf;
use bib_core::prelude::*;
use bib_core::run::run_protocol;

/// Two-sample Pearson chi-square on a pair of histograms with pooling
/// of sparse cells; returns the p-value of "same distribution".
fn two_sample_p(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    assert!(na > 0 && nb > 0);
    let (na, nb) = (na as f64, nb as f64);
    let mut cells: Vec<(f64, f64)> = Vec::new();
    let mut acc = (0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        acc.0 += x as f64;
        acc.1 += y as f64;
        if acc.0 + acc.1 >= 10.0 {
            cells.push(acc);
            acc = (0.0, 0.0);
        }
    }
    if acc.0 + acc.1 > 0.0 {
        if let Some(last) = cells.last_mut() {
            last.0 += acc.0;
            last.1 += acc.1;
        } else {
            cells.push(acc);
        }
    }
    if cells.len() < 2 {
        return 1.0;
    }
    let mut stat = 0.0;
    for &(x, y) in &cells {
        let tot = x + y;
        let ex = tot * na / (na + nb);
        let ey = tot * nb / (na + nb);
        stat += (x - ex) * (x - ex) / ex + (y - ey) * (y - ey) / ey;
    }
    chi_square_sf((cells.len() - 1) as u64, stat)
}

/// Histograms a per-outcome statistic over replicate ensembles of the
/// faithful and histogram engines.
fn engine_histograms<P, F>(
    proto: &P,
    n: usize,
    m: u64,
    reps: u64,
    cells: usize,
    stat: F,
) -> (Vec<u64>, Vec<u64>)
where
    P: Protocol,
    F: Fn(&Outcome) -> usize,
{
    let mut hists = Vec::new();
    for engine in [Engine::Faithful, Engine::Histogram] {
        let cfg = RunConfig::new(n, m).with_engine(engine);
        let mut h = vec![0u64; cells];
        for rep in 0..reps {
            // Distinct seed spaces per engine: the comparison is
            // distributional, not stream-coupled.
            let seed = rep + engine as u64 * 1_000_000;
            let out = run_protocol(proto, &cfg, seed);
            out.validate();
            let idx = stat(&out).min(cells - 1);
            h[idx] += 1;
        }
        hists.push(h);
    }
    let b = hists.pop().unwrap();
    let a = hists.pop().unwrap();
    (a, b)
}

#[test]
fn single_bin_is_deterministic_and_exact() {
    for m in [0u64, 1, 37, 1000] {
        let cfg = RunConfig::new(1, m).with_engine(Engine::Histogram);
        let out = run_protocol(&Threshold, &cfg, 5);
        out.validate();
        assert_eq!(out.loads, vec![m as u32]);
        assert_eq!(out.total_samples, m, "single bin wastes no samples");
        let out = run_protocol(&Adaptive::paper(), &cfg, 5);
        assert_eq!(out.loads, vec![m as u32]);
        let out = run_protocol(&OneChoice, &cfg, 5);
        assert_eq!(out.loads, vec![m as u32]);
        assert_eq!(out.total_samples, m);
        let out = run_protocol(&GreedyD::new(2), &cfg, 5);
        assert_eq!(out.loads, vec![m as u32]);
        assert_eq!(out.total_samples, 2 * m, "greedy[d] costs exactly d·m");
    }
}

#[test]
fn degenerate_tight_stages_are_exact() {
    // adaptive-tight's stage τ accepts only load < τ: every stage fills
    // every bin exactly once, deterministically.
    for n in [2usize, 8, 64, 256] {
        for phi in [1u64, 3] {
            let m = phi * n as u64;
            let cfg = RunConfig::new(n, m).with_engine(Engine::Histogram);
            let out = run_protocol(&Adaptive::tight(), &cfg, 7);
            out.validate();
            assert_eq!(out.loads, vec![phi as u32; n], "n={n} phi={phi}");
            assert_eq!(out.gap(), 0);
        }
    }
}

#[test]
fn invariants_hold_across_sizes_and_protocols() {
    // Sure properties on every run, at sizes spanning the exact per-bin
    // chain (n ≤ 64), the per-hit walk, and the occupancy-cell walk
    // with normal-approximated splits (n = 512, m ≫ n).
    use bib_core::batched::BatchedAdaptive;
    use bib_core::protocols::ThresholdSlack;
    for n in [1usize, 2, 8, 64, 512] {
        for m in [0u64, 1, 7, 64, 4096, 64 * 512] {
            let cfg = RunConfig::new(n, m).with_engine(Engine::Histogram);
            for seed in 0..3u64 {
                let thr = run_protocol(&Threshold, &cfg, seed);
                thr.validate();
                assert!(thr.max_load() as u64 <= cfg.max_load_bound(), "n={n} m={m}");
                let ada = run_protocol(&Adaptive::paper(), &cfg, seed);
                ada.validate();
                assert!(ada.max_load() as u64 <= cfg.max_load_bound(), "n={n} m={m}");
                let slk = run_protocol(&ThresholdSlack::new(3), &cfg, seed);
                slk.validate();
                let one = run_protocol(&OneChoice, &cfg, seed);
                one.validate();
                assert_eq!(one.total_samples, m);
                let grd = run_protocol(&GreedyD::new(2), &cfg, seed);
                grd.validate();
                assert_eq!(grd.total_samples, 2 * m);
                if n > 1 {
                    let bat = run_protocol(&BatchedAdaptive::new(n as u64 / 2 + 1), &cfg, seed);
                    bat.validate();
                    assert!(bat.max_load() as u64 <= cfg.max_load_bound());
                }
            }
        }
    }
}

#[test]
fn chi_square_bin0_load_small_cases() {
    // Tiny runs: every scatter path is exact here, so these pin the
    // collapsed chain itself (class selection, tail, reconstruction).
    let (a, b) = engine_histograms(&Threshold, 2, 4, 4000, 4, |o| o.loads[0] as usize);
    let p = two_sample_p(&a, &b);
    assert!(
        p > 1e-4,
        "threshold n=2 m=4 bin-0 load: p={p}\n{a:?}\n{b:?}"
    );

    let (a, b) = engine_histograms(&Adaptive::paper(), 2, 5, 4000, 4, |o| o.loads[0] as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > 1e-4, "adaptive n=2 m=5 bin-0 load: p={p}\n{a:?}\n{b:?}");

    let (a, b) = engine_histograms(&OneChoice, 4, 12, 4000, 8, |o| o.loads[0] as usize);
    let p = two_sample_p(&a, &b);
    assert!(
        p > 1e-4,
        "one-choice n=4 m=12 bin-0 load: p={p}\n{a:?}\n{b:?}"
    );

    let (a, b) = engine_histograms(&GreedyD::new(2), 4, 12, 4000, 8, |o| o.loads[0] as usize);
    let p = two_sample_p(&a, &b);
    assert!(
        p > 1e-4,
        "greedy[2] n=4 m=12 bin-0 load: p={p}\n{a:?}\n{b:?}"
    );
}

#[test]
fn chi_square_gap_matches_faithful_n8() {
    let (a, b) = engine_histograms(&Threshold, 8, 64, 3000, 8, |o| o.gap() as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > 1e-4, "threshold n=8 gap: p={p}\n{a:?}\n{b:?}");

    let (a, b) = engine_histograms(&Adaptive::paper(), 8, 60, 3000, 8, |o| o.gap() as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > 1e-4, "adaptive n=8 m=60 gap: p={p}\n{a:?}\n{b:?}");
}

#[test]
fn chi_square_heavy_load_regime() {
    // m ≫ n engages the rounds with normal-approximated splits.
    let (a, b) = engine_histograms(&Threshold, 8, 8 * 1024, 1500, 8, |o| o.gap() as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > 1e-4, "threshold n=8 heavy gap: p={p}\n{a:?}\n{b:?}");

    let (a, b) = engine_histograms(&Adaptive::paper(), 8, 8 * 1024, 1500, 8, |o| {
        o.gap() as usize
    });
    let p = two_sample_p(&a, &b);
    assert!(p > 1e-4, "adaptive n=8 heavy gap: p={p}\n{a:?}\n{b:?}");
}

#[test]
fn chi_square_occupancy_walk_regime() {
    // n = 256: classes are large enough that the occupancy-cell walk
    // and the rounded-normal split draws carry the run — the paths
    // whose approximation error these ensembles bound.
    let (a, b) = engine_histograms(&Threshold, 256, 256 * 64, 600, 10, |o| o.gap() as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > 1e-4, "threshold n=256 heavy gap: p={p}\n{a:?}\n{b:?}");

    let (a, b) = engine_histograms(&Adaptive::paper(), 256, 256 * 64, 600, 10, |o| {
        o.gap() as usize
    });
    let p = two_sample_p(&a, &b);
    assert!(p > 1e-4, "adaptive n=256 heavy gap: p={p}\n{a:?}\n{b:?}");

    let (a, b) = engine_histograms(&OneChoice, 256, 256 * 16, 600, 24, |o| o.gap() as usize);
    let p = two_sample_p(&a, &b);
    assert!(p > 1e-4, "one-choice n=256 gap: p={p}\n{a:?}\n{b:?}");

    // greedy's histogram chain is exact at every size; this pins the
    // rank-to-class mapping at a size where classes shift quickly.
    let (a, b) = engine_histograms(&GreedyD::new(2), 256, 256 * 16, 600, 8, |o| {
        o.gap() as usize
    });
    let p = two_sample_p(&a, &b);
    assert!(p > 1e-4, "greedy[2] n=256 gap: p={p}\n{a:?}\n{b:?}");
}

#[test]
fn chi_square_max_load_one_choice() {
    // Max load reads the histogram's upper tail — the statistic most
    // sensitive to occupancy-split errors.
    let (a, b) = engine_histograms(&OneChoice, 128, 128 * 8, 1200, 12, |o| {
        (o.max_load() as usize).saturating_sub(8)
    });
    let p = two_sample_p(&a, &b);
    assert!(p > 1e-4, "one-choice n=128 max load: p={p}\n{a:?}\n{b:?}");
}

#[test]
fn histogram_is_deterministic_per_seed() {
    for proto in [
        "threshold",
        "adaptive",
        "adaptive-tight",
        "one-choice",
        "greedy[2]",
    ] {
        let cfg = RunConfig::new(64, 64 * 100).with_engine(Engine::Histogram);
        let p = bib_core::protocols::by_name(proto).unwrap();
        let x = run_protocol(p.as_ref(), &cfg, 11);
        let y = run_protocol(p.as_ref(), &cfg, 11);
        assert_eq!(x, y, "{proto}");
    }
}

#[test]
fn allocation_time_tracks_jump_engine() {
    // total_samples under Histogram mixes CLT round draws with exact
    // tail geometrics; the ensemble mean must track the jump engine's
    // exact accounting to a couple of percent.
    let n = 64usize;
    let m = 64u64 * 64;
    let reps = 200u64;
    for proto in [&Threshold as &dyn DynProtocol, &Adaptive::paper()] {
        let mean_ratio = |engine: Engine| -> f64 {
            let cfg = RunConfig::new(n, m).with_engine(engine);
            (0..reps)
                .map(|s| run_protocol(proto, &cfg, s).time_ratio())
                .sum::<f64>()
                / reps as f64
        };
        let jump = mean_ratio(Engine::Jump);
        let hist = mean_ratio(Engine::Histogram);
        assert!(
            (jump - hist).abs() < 0.03 * jump,
            "{}: mean T/m jump {jump} vs histogram {hist}",
            proto.dyn_name()
        );
        assert!(hist >= 1.0);
    }
}

#[test]
fn greedy_heavy_case_is_feasible_and_sane() {
    // The acceptance regime in miniature: greedy[2] at n = 2048,
    // m = 512·n (the full n = 10⁴, m = n² run lives in bench_json and
    // the criterion heavy gate). Power of two choices: the gap stays
    // within a few levels of m/n even at heavy load.
    let n = 2048usize;
    let cfg = RunConfig::new(n, 512 * n as u64).with_engine(Engine::Histogram);
    let out = run_protocol(&GreedyD::new(2), &cfg, 3);
    out.validate();
    assert_eq!(out.total_samples, 2 * cfg.m);
    assert!(out.gap() <= 12, "greedy[2] heavy gap {}", out.gap());
}

#[test]
fn auto_resolves_to_a_concrete_engine_stream() {
    // Auto must behave exactly like the concrete engine it resolves to
    // (same rng stream, same outcome) and stay valid across regimes.
    for (n, m) in [(16usize, 64u64), (64, 64 * 600), (512, 512 * 40)] {
        let auto_cfg = RunConfig::new(n, m).with_engine(Engine::Auto);
        for proto in ["threshold", "adaptive", "one-choice", "greedy[2]"] {
            let p = bib_core::protocols::by_name(proto).unwrap();
            let out = run_protocol(p.as_ref(), &auto_cfg, 9);
            out.validate();
            let matched = Engine::ALL.iter().any(|&engine| {
                let cfg = RunConfig::new(n, m).with_engine(engine);
                run_protocol(p.as_ref(), &cfg, 9) == out
            });
            assert!(
                matched,
                "{proto} n={n} m={m}: Auto matches no concrete engine"
            );
        }
    }
}

#[test]
fn stage_traces_fire_like_sequential_engines() {
    use bib_core::protocol::StageTrace;
    use bib_core::run::run_with_observer;
    let cfg = RunConfig::new(32, 32 * 7 + 5).with_engine(Engine::Histogram);
    let mut trace = StageTrace::new();
    let out = run_with_observer(&Adaptive::paper(), &cfg, 3, &mut trace);
    out.validate();
    // 7 full stages plus the remainder stage.
    assert_eq!(trace.stages, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    assert!(trace.psi.iter().all(|&p| p.is_finite() && p >= 0.0));
    // The trace's final gap must match the outcome's (same assignment
    // permutation throughout).
    assert_eq!(*trace.gaps.last().unwrap(), out.gap());
}
