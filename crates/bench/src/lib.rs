//! Shared harness for the experiment binaries.
//!
//! Every table and figure of the paper has a binary under `src/bin/`
//! (see DESIGN.md §4 for the experiment index). This small library holds
//! what they share: command-line handling and aligned-table/CSV output.
//!
//! All binaries accept:
//!
//! * `--quick` — shrink sizes/replicates for a fast smoke run;
//! * `--seed <u64>` — master seed (default 2013);
//! * `--reps <u64>` — override the replicate count;
//! * `--engine <faithful|jump|level-batched|histogram|auto>` — override
//!   the simulation engine (threshold-style protocols support all five;
//!   `one-choice`/`greedy[d]` additionally understand `histogram` and
//!   `auto`);
//! * `--csv` — emit machine-readable CSV instead of an aligned table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bib_core::protocol::Engine;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpArgs {
    /// Shrink the experiment for a smoke run.
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
    /// Replicate-count override.
    pub reps: Option<u64>,
    /// Engine override for threshold-style protocols.
    pub engine: Option<Engine>,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self {
            quick: false,
            seed: 2013,
            reps: None,
            engine: None,
            csv: false,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args`, panicking with a usage message on
    /// unknown flags (these are internal tools; fail loudly).
    pub fn parse() -> Self {
        let mut out = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--csv" => out.csv = true,
                "--seed" => {
                    out.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs a u64");
                }
                "--reps" => {
                    out.reps = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--reps needs a u64"),
                    );
                }
                "--engine" => {
                    out.engine = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--engine needs faithful, jump or level-batched"),
                    );
                }
                other => panic!(
                    "unknown flag {other}; supported: --quick --csv --seed <u64> --reps <u64> \
                     --engine <faithful|jump|level-batched|histogram|auto>"
                ),
            }
        }
        out
    }

    /// Picks the replicate count: explicit `--reps` wins, else `quick`
    /// vs `full` defaults.
    pub fn reps_or(&self, full: u64, quick: u64) -> u64 {
        self.reps.unwrap_or(if self.quick { quick } else { full })
    }

    /// Picks the engine: explicit `--engine` wins, else the experiment's
    /// default.
    pub fn engine_or(&self, default: Engine) -> Engine {
        self.engine.unwrap_or(default)
    }

    /// Picks any size parameter by mode.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// An aligned text table that can also render as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders aligned text (right-aligned numeric-ish cells).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut s = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        s.push_str(&fmt_row(&self.headers, &widths));
        s.push('\n');
        s.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&fmt_row(row, &widths));
            s.push('\n');
        }
        s
    }

    /// Renders CSV (no quoting; cells are numeric or simple tokens).
    pub fn csv(&self) -> String {
        let mut s = self.headers.join(",");
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.join(","));
            s.push('\n');
        }
        s
    }

    /// Prints in the format selected by `args`.
    pub fn print(&self, args: &ExpArgs) {
        if args.csv {
            print!("{}", self.csv());
        } else {
            print!("{}", self.render());
        }
    }
}

/// Formats a float compactly for table cells.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = Table::new(vec!["a", "long_header"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["300", "4"]);
        let txt = t.render();
        assert!(txt.contains("long_header"));
        assert!(txt.lines().count() == 4);
        let csv = t.csv();
        assert_eq!(csv, "a,long_header\n1,2\n300,4\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn row_arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn args_defaults_and_pick() {
        let a = ExpArgs::default();
        assert_eq!(a.seed, 2013);
        assert_eq!(a.reps_or(100, 5), 100);
        assert_eq!(a.pick(10, 1), 10);
        assert_eq!(a.engine_or(Engine::Jump), Engine::Jump);
        let e = ExpArgs {
            engine: Some(Engine::LevelBatched),
            ..ExpArgs::default()
        };
        assert_eq!(e.engine_or(Engine::Jump), Engine::LevelBatched);
        let q = ExpArgs {
            quick: true,
            ..ExpArgs::default()
        };
        assert_eq!(q.reps_or(100, 5), 5);
        assert_eq!(q.pick(10, 1), 1);
        let r = ExpArgs {
            reps: Some(7),
            ..ExpArgs::default()
        };
        assert_eq!(r.reps_or(100, 5), 7);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1.5), "1.5000");
        assert!(f(1.23e9).contains('e'));
        assert!(f(1e-9).contains('e'));
    }
}
