//! The concurrent (dense, sharded) streaming driver.
//!
//! The serial driver in `bib_core::stream` collapses the fleet to
//! occupancy histograms; this one keeps **dense per-bin state** — a
//! load and a [`BinState`] per bin — and shards every phase of a tick
//! over a worker pool, the same superstep shape as the concurrent batch
//! engine in [`super::protocols`]:
//!
//! ```text
//! tick:  [leader: faults, params, arrivals count, due retries]
//!        barrier
//!        [all: snapshot copy of live loads]          (deterministic)
//!        barrier
//!        [all: place due retries + fresh arrivals]   (chunked items)
//!        barrier
//!        [all: per-bin binomial departures]          (chunked bins)
//!        barrier
//!        [leader: merge retry fails, record series]
//!        barrier
//! ```
//!
//! # Determinism across thread counts
//!
//! In deterministic mode (the default) every random decision is a pure
//! function of `(seed, tick, chunk)`: items and bins are claimed by
//! static chunk ownership (`chunk % workers == w`), each chunk draws
//! from its own seed-derived stream, placements read the tick-start
//! *snapshot* and commit with commutative `fetch_add`s, and the retry
//! queue is rebuilt by the leader in global item order. The result —
//! every load, every counter, the whole [`TickStats`] series — is
//! bit-identical for 1, 2 or 4 workers (regression-tested). `--racy`
//! trades that away: per-worker streams and live-load reads, racy by
//! construction but still degraded-never-wedged (shed/fallback
//! semantics are enforced identically).
//!
//! The adaptive/threshold acceptance bound is frozen at tick start
//! (superstep semantics): `in_system` and the alive count are leader
//! snapshots, matching how the batch concurrent engine freezes
//! round-start loads. Faults apply through
//! [`FaultPlan::apply_dense`] on the leader's master state vector, and
//! every contact consults the shared per-bin state: a dead or draining
//! bin costs the probe and forces a re-draw, a slow bin costs an extra
//! sample.

use bib_core::faults::BinState;
use bib_core::loads::Loads;
use bib_core::protocol::{Outcome, RunConfig};
use bib_core::scenario::{strict_int_bound, Family, Scenario};
use bib_core::stream::{
    arrival_count, stream_name, LatencyTail, StreamReport, StreamSpec, TickStats,
};
use bib_rng::{Rng64, RngExt, SeedSequence, Xoshiro256PlusPlus};
use crossbeam::pool;
// ORDERING: import only; every use site documents its own ordering.
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Items (balls) and bins are sharded in chunks of this size.
const CHUNK: u64 = 4096;

/// A ball awaiting placement: attempts so far and samples already
/// spent (carried across retries for the latency tail).
#[derive(Debug, Clone, Copy, Default)]
struct Pending {
    attempts: u32,
    samples: u64,
}

/// Acceptance law for one tick, frozen by the leader: 0 = uniform
/// (one-choice / fallback), 1 = below-bound (adaptive / threshold),
/// 2 = least-of-d (greedy).
#[derive(Clone, Copy)]
enum Style {
    Uniform,
    Below(u32),
    LeastOf(u32),
}

fn chunk_stream(engine_seed: u64, label: &str, tick: u64, chunk: u64) -> Xoshiro256PlusPlus {
    SeedSequence::new(engine_seed)
        .child_str(label)
        .child(tick)
        .child(chunk)
        .rng()
}

fn chunk_range(chunk: u64, items: u64) -> (u64, u64) {
    let lo = chunk * CHUNK;
    (lo, (lo + CHUNK).min(items))
}

/// Runs a stream on the dense sharded engine with `cfg.threads`
/// workers, returning the same [`StreamReport`] surface as the serial
/// [`bib_core::stream::serve`]. Deterministic in `(seed, spec, cfg)`
/// and independent of the worker count unless `cfg.racy`.
pub fn serve_concurrent(
    spec: &StreamSpec,
    family: Family,
    cfg: &RunConfig,
    seed: u64,
) -> StreamReport {
    let n = cfg.n;
    assert!(n > 0, "stream: need at least one bin");
    assert!(spec.ticks > 0, "stream: need at least one tick");
    let retry = spec.retry;
    assert!(retry.probe_budget >= 1, "probe budget must be ≥ 1");
    assert!(retry.retry_budget >= 1, "retry budget must be ≥ 1");
    let workers = cfg.threads.max(1);
    let det = !cfg.racy;
    let budget = u64::from(retry.probe_budget);
    let ring_len = retry.backoff_cap.max(1) as u64 + 1;
    let name = stream_name(family);
    let engine_seed = SeedSequence::new(seed).child_str(&name).rng().next_u64();

    // Dense bin shards. ORDERING: Relaxed throughout this driver — each
    // phase either only writes its own chunk (snapshot copy,
    // departures), takes commutative `fetch_add`s (placements), or
    // reads values settled by the previous phase's barrier; the barrier
    // is the only inter-phase publication (module docs).
    let loads: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let snapshot: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    // ORDERING: Relaxed — same barrier-publication contract as above.
    let states: Vec<AtomicU32> = (0..n)
        .map(|_| AtomicU32::new(BinState::Alive.code()))
        .collect();

    // Per-tick parameters, leader-published before the top-of-tick
    // barrier. ORDERING: Relaxed — barrier-separated control block.
    let due_len = AtomicU64::new(0);
    let fresh_count = AtomicU64::new(0);
    let style_kind = AtomicU32::new(0);
    // ORDERING: Relaxed — leader-published, barrier-separated (above).
    let style_param = AtomicU32::new(0);
    let fallback_flag = AtomicU32::new(0);

    // Run accumulators. ORDERING: Relaxed — commutative adds/maxes,
    // read by the leader only after a barrier (or after the pool).
    let placed_total = AtomicU64::new(0);
    let departed_total = AtomicU64::new(0);
    let shed_total = AtomicU64::new(0);
    // ORDERING: Relaxed — same commutative-accumulator contract.
    let fallback_total = AtomicU64::new(0);
    let arrivals_total = AtomicU64::new(0);
    let samples_total = AtomicU64::new(0);
    // ORDERING: Relaxed — same commutative-accumulator contract.
    let max_samples = AtomicU64::new(0);
    let alive_final = AtomicU64::new(n as u64);

    // Leader-rebuilt per-tick structures (locked only at phase edges).
    let due_shared: Mutex<Vec<Pending>> = Mutex::new(Vec::new());
    let retry_out: Mutex<Vec<(u64, Pending)>> = Mutex::new(Vec::new());
    let series_shared: Mutex<Vec<TickStats>> = Mutex::new(Vec::with_capacity(spec.ticks as usize));
    let latency_shared: Mutex<LatencyTail> = Mutex::new(LatencyTail::new());

    // lint:allow(D1): the wall clock is serve mode's observable (sustained ops/sec), never an input to the deterministic outcome
    let start = std::time::Instant::now();
    pool::scoped(workers, |w, bar| {
        let leader = w == 0;
        // Leader-only persistent state (other workers carry None).
        let mut master: Option<Vec<BinState>> = leader.then(|| vec![BinState::Alive; n]);
        let mut ring: Option<Vec<Vec<Pending>>> =
            leader.then(|| vec![Vec::new(); ring_len as usize]);
        let mut leader_rng =
            leader.then(|| SeedSequence::new(engine_seed).child_str("arrivals").rng());
        let mut alive_n = n as u64;
        // Worker-persistent state.
        let mut racy_rng = (!det).then(|| {
            SeedSequence::new(engine_seed)
                .child_str("racy")
                .child(w as u64)
                .rng()
        });
        let mut due_local: Vec<Pending> = Vec::new();
        let mut fails_local: Vec<(u64, Pending)> = Vec::new();
        let mut local_latency = LatencyTail::new();

        for tick in 0..spec.ticks {
            if leader {
                let master = master.as_mut().expect("leader state");
                let ring = ring.as_mut().expect("leader state");
                // Faults fire at the tick boundary; re-derive the
                // shared dense states and the alive count only when
                // something changed.
                if spec.faults.apply_dense(tick, master) {
                    for (b, s) in master.iter().enumerate() {
                        // ORDERING: Relaxed — leader-only store,
                        // published by the barrier below.
                        states[b].store(s.code(), Ordering::Relaxed);
                    }
                    alive_n = master.iter().filter(|s| s.accepts()).count() as u64;
                }
                // ORDERING: Relaxed — leader reads of barrier-settled
                // accumulators.
                let in_system =
                    placed_total.load(Ordering::Relaxed) - departed_total.load(Ordering::Relaxed);
                let fallback = !matches!(family, Family::OneChoice)
                    && (alive_n as f64) < retry.fallback_alive_frac * n as f64;
                let style = if alive_n == 0 || fallback {
                    Style::Uniform
                } else {
                    match family {
                        Family::OneChoice => Style::Uniform,
                        Family::Greedy(d) => Style::LeastOf(d.max(1)),
                        Family::Adaptive => Style::Below(strict_int_bound(
                            (in_system + 1) as f64 / alive_n as f64 + 1.0,
                        )),
                        Family::Threshold => {
                            Style::Below(strict_int_bound(cfg.m as f64 / alive_n as f64 + 1.0))
                        }
                    }
                };
                let (kind, param) = match style {
                    Style::Uniform => (0, 0),
                    Style::Below(t) => (1, t),
                    Style::LeastOf(d) => (2, d),
                };
                let rng = leader_rng.as_mut().expect("leader rng");
                let fresh = arrival_count(cfg.m, spec.ticks, tick, spec.poisson, rng);
                let due = std::mem::take(&mut ring[(tick % ring_len) as usize]);
                // ORDERING: Relaxed — leader-published tick parameters,
                // separated from the readers by the barrier below.
                arrivals_total.fetch_add(fresh, Ordering::Relaxed);
                due_len.store(due.len() as u64, Ordering::Relaxed);
                fresh_count.store(fresh, Ordering::Relaxed);
                // ORDERING: Relaxed — same leader-published block.
                style_kind.store(kind, Ordering::Relaxed);
                style_param.store(param, Ordering::Relaxed);
                fallback_flag.store(u32::from(fallback), Ordering::Relaxed);
                *due_shared.lock().expect("due lock") = due;
            }
            bar.sync();

            // Snapshot phase (deterministic mode): freeze tick-start
            // loads so placement decisions are interleaving-free.
            if det {
                let bin_chunks = (n as u64).div_ceil(CHUNK);
                for chunk in (w as u64..bin_chunks).step_by(workers) {
                    let (lo, hi) = chunk_range(chunk, n as u64);
                    for b in lo as usize..hi as usize {
                        // ORDERING: Relaxed — exclusive chunk owner;
                        // settled by the barriers around this phase.
                        snapshot[b].store(loads[b].load(Ordering::Relaxed), Ordering::Relaxed);
                    }
                }
            }
            bar.sync();

            // Placement phase: due retries first (global item indices
            // 0..due_len), then fresh arrivals.
            // ORDERING: Relaxed — leader-published tick parameters read
            // after the barrier.
            let due_n = due_len.load(Ordering::Relaxed);
            let fresh = fresh_count.load(Ordering::Relaxed);
            let fallback = fallback_flag.load(Ordering::Relaxed) != 0;
            // ORDERING: Relaxed — same leader-published block.
            let style = match style_kind.load(Ordering::Relaxed) {
                0 => Style::Uniform,
                1 => Style::Below(style_param.load(Ordering::Relaxed)),
                // ORDERING: Relaxed — same leader-published block.
                _ => Style::LeastOf(style_param.load(Ordering::Relaxed)),
            };
            let total_items = due_n + fresh;
            if due_n > 0 {
                due_local.clear();
                due_local.extend_from_slice(&due_shared.lock().expect("due lock"));
            }
            let item_chunks = total_items.div_ceil(CHUNK);
            let mut placed = 0u64;
            let mut shed = 0u64;
            let mut fellback = 0u64;
            let mut samples_spent = 0u64;
            let mut samples_peak = 0u64;
            for chunk in (w as u64..item_chunks).step_by(workers) {
                let (lo, hi) = chunk_range(chunk, total_items);
                let mut stream;
                let crng: &mut dyn Rng64 = match racy_rng.as_mut() {
                    Some(wr) => wr,
                    None => {
                        stream = chunk_stream(engine_seed, "place", tick, chunk);
                        &mut stream
                    }
                };
                for i in lo..hi {
                    let mut ball = if i < due_n {
                        due_local[i as usize]
                    } else {
                        Pending::default()
                    };
                    let mut samples = 0u64;
                    let mut best: Option<(u32, usize)> = None;
                    let mut found = 0u32;
                    let mut landed = false;
                    while samples < budget {
                        let b = crng.range_usize(n);
                        // ORDERING: Relaxed — states change only in the
                        // leader phase, barrier-separated from here.
                        let st = BinState::from_code(states[b].load(Ordering::Relaxed));
                        if !st.accepts() {
                            // A contacted dead/draining bin costs the
                            // probe and forces a re-draw.
                            samples += 1;
                            continue;
                        }
                        samples += st.contact_cost();
                        // ORDERING: Relaxed — deterministic mode reads
                        // the frozen snapshot, racy mode the live loads.
                        let load = if det {
                            snapshot[b].load(Ordering::Relaxed)
                        } else {
                            // ORDERING: Relaxed — racy mode accepts
                            // stale/racing loads by design.
                            loads[b].load(Ordering::Relaxed)
                        };
                        let commit = match style {
                            Style::Uniform => Some(b),
                            Style::Below(t) => (load < t).then_some(b),
                            Style::LeastOf(d) => {
                                if best.is_none_or(|(bl, _)| load < bl) {
                                    best = Some((load, b));
                                }
                                found += 1;
                                (found >= d).then(|| best.expect("candidate").1)
                            }
                        };
                        if let Some(bin) = commit {
                            // ORDERING: Relaxed — commutative placement
                            // tally; the final value is settled by the
                            // end-of-phase barrier.
                            loads[bin].fetch_add(1, Ordering::Relaxed);
                            landed = true;
                            break;
                        }
                    }
                    ball.samples += samples;
                    samples_spent += samples;
                    samples_peak = samples_peak.max(ball.samples);
                    if landed {
                        placed += 1;
                        fellback += u64::from(fallback);
                        local_latency.record(ball.samples);
                    } else {
                        ball.attempts += 1;
                        if ball.attempts >= retry.retry_budget {
                            shed += 1;
                        } else {
                            fails_local.push((i, ball));
                        }
                    }
                }
            }
            // ORDERING: Relaxed — commutative accumulators, read by the
            // leader after the end-of-phase barrier.
            placed_total.fetch_add(placed, Ordering::Relaxed);
            shed_total.fetch_add(shed, Ordering::Relaxed);
            fallback_total.fetch_add(fellback, Ordering::Relaxed);
            // ORDERING: Relaxed — same commutative-accumulator block.
            samples_total.fetch_add(samples_spent, Ordering::Relaxed);
            max_samples.fetch_max(samples_peak, Ordering::Relaxed);
            if !fails_local.is_empty() {
                retry_out
                    .lock()
                    .expect("retry lock")
                    .append(&mut fails_local);
            }
            bar.sync();

            // Departure phase: every resident ball departs with
            // probability p; dead bins freeze. Exclusive chunk
            // ownership makes the plain load/store safe.
            if spec.depart_prob > 0.0 {
                let bin_chunks = (n as u64).div_ceil(CHUNK);
                let mut departed = 0u64;
                for chunk in (w as u64..bin_chunks).step_by(workers) {
                    let (lo, hi) = chunk_range(chunk, n as u64);
                    let mut stream;
                    let crng: &mut dyn Rng64 = match racy_rng.as_mut() {
                        Some(wr) => wr,
                        None => {
                            stream = chunk_stream(engine_seed, "depart", tick, chunk);
                            &mut stream
                        }
                    };
                    for b in lo as usize..hi as usize {
                        // ORDERING: Relaxed — states are frozen outside
                        // the leader phase; loads owned by this chunk.
                        let st = BinState::from_code(states[b].load(Ordering::Relaxed));
                        let load = loads[b].load(Ordering::Relaxed);
                        if st.departs() && load > 0 {
                            let gone: u32 = bib_core::histogram::split_binomial(
                                u64::from(load),
                                spec.depart_prob,
                                crng,
                            )
                            .try_into()
                            .expect("binomial sample bounded by its u32 trial count");
                            if gone > 0 {
                                // ORDERING: Relaxed — exclusive owner.
                                loads[b].store(load - gone, Ordering::Relaxed);
                                departed += u64::from(gone);
                            }
                        }
                    }
                }
                // ORDERING: Relaxed — commutative add, barrier-settled.
                departed_total.fetch_add(departed, Ordering::Relaxed);
            }
            bar.sync();

            if leader {
                let ring = ring.as_mut().expect("leader state");
                // Rebuild the retry ring in global item order so its
                // contents are independent of which worker failed which
                // ball.
                let mut fails = std::mem::take(&mut *retry_out.lock().expect("retry lock"));
                fails.sort_unstable_by_key(|(i, _)| *i);
                for (_, ball) in fails {
                    let delay = (1u64 << (ball.attempts - 1).min(31)).min(ring_len - 1);
                    ring[((tick + delay) % ring_len) as usize].push(ball);
                }
                // Tick record: gap/max over the accepting bins.
                let master = master.as_ref().expect("leader state");
                let (mut min_l, mut max_l) = (u32::MAX, 0u32);
                for (b, s) in master.iter().enumerate() {
                    if s.accepts() {
                        // ORDERING: Relaxed — placements and departures
                        // settled by the barriers above.
                        let l = loads[b].load(Ordering::Relaxed);
                        min_l = min_l.min(l);
                        max_l = max_l.max(l);
                    }
                }
                let (gap, max_load) = if alive_n > 0 {
                    (max_l - min_l, max_l)
                } else {
                    (0, 0)
                };
                // ORDERING: Relaxed — barrier-settled accumulators.
                let placed_c = placed_total.load(Ordering::Relaxed);
                let departed_c = departed_total.load(Ordering::Relaxed);
                let alive_ppm = u32::try_from(alive_n * 1_000_000 / n as u64)
                    .expect("alive fraction in parts-per-million fits u32");
                series_shared.lock().expect("series lock").push(TickStats {
                    tick,
                    in_system: placed_c - departed_c,
                    gap,
                    max_load,
                    alive_ppm,
                    placed: placed_c,
                    departed: departed_c,
                    // ORDERING: Relaxed — barrier-settled accumulators.
                    shed: shed_total.load(Ordering::Relaxed),
                    fallbacks: fallback_total.load(Ordering::Relaxed),
                    samples: samples_total.load(Ordering::Relaxed),
                });
            }
            bar.sync();
        }

        if leader {
            // Balls still waiting for a retry slot are shed.
            let ring = ring.as_mut().expect("leader state");
            let waiting: u64 = ring.iter().map(|s| s.len() as u64).sum();
            // ORDERING: Relaxed — read after the pool joins.
            shed_total.fetch_add(waiting, Ordering::Relaxed);
            alive_final.store(alive_n, Ordering::Relaxed);
        }
        let mut lat = latency_shared.lock().expect("latency lock");
        lat.merge(&local_latency);
    });
    let wall = start.elapsed();

    // ORDERING: the pool has joined — into_inner takes unique ownership.
    let loads: Vec<u32> = loads.into_iter().map(AtomicU32::into_inner).collect();
    let arrivals = arrivals_total.into_inner();
    let departed = departed_total.into_inner();
    let shed = shed_total.into_inner();
    let placed = placed_total.into_inner();
    let outcome = Outcome {
        protocol: name,
        n,
        m: placed - departed,
        total_samples: samples_total.into_inner(),
        max_samples_per_ball: max_samples.into_inner(),
        loads: Loads::from_vec(loads),
        scenario: Scenario::stream(
            spec.ticks,
            arrivals,
            departed,
            shed,
            fallback_total.into_inner(),
            alive_final.into_inner() as f64 / n as f64,
        ),
    };
    outcome.validate();
    StreamReport {
        outcome,
        series: series_shared.into_inner().expect("series lock"),
        latency: latency_shared.into_inner().expect("latency lock"),
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_core::faults::FaultPlan;
    use bib_core::stream::RetryPolicy;

    fn cfg(n: usize, m: u64, threads: usize, racy: bool) -> RunConfig {
        RunConfig::new(n, m).with_threads(threads).with_racy(racy)
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let spec = StreamSpec::new(60, 0.05)
            .with_faults(FaultPlan::mass_failure(20, 0.5, 40, 9))
            .with_retry(RetryPolicy {
                probe_budget: 6,
                retry_budget: 3,
                backoff_cap: 4,
                fallback_alive_frac: 0.6,
            });
        let c = cfg(512, 60 * 128, 1, false);
        let base = serve_concurrent(&spec, Family::Greedy(2), &c, 41);
        for threads in [2usize, 4] {
            let c = cfg(512, 60 * 128, threads, false);
            let run = serve_concurrent(&spec, Family::Greedy(2), &c, 41);
            assert_eq!(run.outcome.loads, base.outcome.loads, "{threads} threads");
            assert_eq!(
                run.outcome.scenario, base.outcome.scenario,
                "{threads} threads"
            );
            assert_eq!(run.outcome.total_samples, base.outcome.total_samples);
            assert_eq!(run.series, base.series, "{threads} threads");
            assert_eq!(run.latency, base.latency, "{threads} threads");
        }
    }

    #[test]
    fn racy_mode_still_degrades_gracefully() {
        let spec = StreamSpec::new(50, 0.05)
            .with_faults(FaultPlan::mass_failure(15, 0.6, 35, 3))
            .with_retry(RetryPolicy {
                probe_budget: 4,
                retry_budget: 2,
                backoff_cap: 4,
                fallback_alive_frac: 0.7,
            });
        let c = cfg(256, 50 * 64, 4, true);
        let report = serve_concurrent(&spec, Family::Adaptive, &c, 5);
        report.outcome.validate();
        let s = &report.outcome.scenario;
        assert!(s.shed + s.fallbacks > 0, "faults left no trace");
        assert_eq!(s.alive_frac, 1.0, "everyone recovered");
    }

    #[test]
    fn fault_free_stream_conserves_and_balances() {
        let spec = StreamSpec::new(40, 0.0).deterministic();
        let c = cfg(128, 40 * 32, 2, false);
        let report = serve_concurrent(&spec, Family::OneChoice, &c, 8);
        assert_eq!(report.outcome.m, 40 * 32);
        assert_eq!(report.outcome.scenario.shed, 0);
        assert_eq!(report.outcome.scenario.label(), "stream");
        assert!(report.ops() >= 40 * 32);
    }
}
