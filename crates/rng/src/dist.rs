//! Distribution samplers built on top of [`Rng64`].
//!
//! Everything here is *exact* (no approximate large-parameter regimes):
//! the cross-validation suite checks each sampler against closed-form
//! pmfs with chi-square / Kolmogorov–Smirnov tests, so approximation
//! error would show up as a failed goodness-of-fit. Where a naive exact
//! method would be slow (binomial), the sampler switches between exact
//! methods by parameter regime instead of switching to an approximation.

use crate::{Rng64, RngExt};

/// A distribution that can draw samples from any [`Rng64`].
///
/// The method is generic (rather than taking `&mut dyn Rng64`) so that
/// monomorphised hot loops pay no virtual dispatch, while trait-object
/// call sites still work because `dyn Rng64` itself implements `Rng64`.
pub trait Distribution {
    /// The sample type.
    type Value;

    /// Draws one sample.
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> Self::Value;
}

/// Bernoulli distribution: `true` with probability `p`.
#[derive(Debug, Clone, Copy)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates the distribution; `p` is clamped to `[0, 1]`.
    pub fn new(p: f64) -> Self {
        Bernoulli {
            p: p.clamp(0.0, 1.0),
        }
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Distribution for Bernoulli {
    type Value = bool;

    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> bool {
        rng.bernoulli(self.p)
    }
}

/// Geometric distribution on `{1, 2, 3, …}`: the number of Bernoulli(`p`)
/// trials up to and including the first success.
///
/// This is the "jump" primitive of the paper's accelerated engines: when
/// a fraction `p = k/n` of bins accept, the number of uniform samples
/// consumed until the first acceptance is exactly `Geometric(p)`.
#[derive(Debug, Clone, Copy)]
pub struct GeometricSampler {
    p: f64,
    /// `ln(1 − p)`, cached; `None` for the degenerate `p = 1` case.
    ln_q: Option<f64>,
}

impl GeometricSampler {
    /// Creates the sampler. Panics unless `0 < p ≤ 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "geometric: p={p} outside (0, 1]");
        let ln_q = if p < 1.0 { Some((-p).ln_1p()) } else { None };
        GeometricSampler { p, ln_q }
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Distribution for GeometricSampler {
    type Value = u64;

    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        match self.ln_q {
            None => 1,
            Some(ln_q) => {
                // Inversion: K = ⌈ln(1−U)/ln(1−p)⌉ with U ∈ [0, 1).
                // `ln_1p(-u)` keeps precision for small u.
                let u = rng.next_f64();
                let k = ((-u).ln_1p() / ln_q).ceil();
                // u = 0 gives k = 0 (⌈0⌉); the support starts at 1.
                (k as u64).max(1)
            }
        }
    }
}

/// Exponential distribution with rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates the distribution. Panics unless `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "exponential: bad rate {rate}"
        );
        Exponential { rate }
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Exponential {
    type Value = f64;

    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inversion of the survival function; ln_1p(-u) is exact at 0.
        -(-rng.next_f64()).ln_1p() / self.rate
    }
}

/// Normal distribution `N(mean, sd²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates the distribution. Panics unless `sd > 0`.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(sd > 0.0 && sd.is_finite(), "normal: bad sd {sd}");
        Normal { mean, sd }
    }
}

impl Distribution for Normal {
    type Value = f64;

    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller. The sampler is stateless (&self), so the second
        // variate of the pair is discarded.
        let u1 = loop {
            let u = rng.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        self.mean + self.sd * r * (std::f64::consts::TAU * u2).cos()
    }
}

/// Poisson distribution with rate `λ`.
///
/// Uses Knuth's product-of-uniforms method, which is exact for every
/// `λ` where `e^{−λ}` is representable (λ ≲ 700 — far beyond the
/// `t/n ≤ O(polylog n)` rates the poissonised analyses need).
#[derive(Debug, Clone, Copy)]
pub struct PoissonSampler {
    lambda: f64,
    exp_neg_lambda: f64,
}

impl PoissonSampler {
    /// Creates the sampler. Panics unless `0 < λ` and `e^{−λ} > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "poisson: bad λ {lambda}"
        );
        let exp_neg_lambda = (-lambda).exp();
        assert!(
            exp_neg_lambda > 0.0,
            "poisson: λ={lambda} too large for the exact sampler"
        );
        PoissonSampler {
            lambda,
            exp_neg_lambda,
        }
    }

    /// The rate parameter `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Distribution for PoissonSampler {
    type Value = u64;

    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut k = 0u64;
        let mut prod = rng.next_f64();
        while prod > self.exp_neg_lambda {
            k += 1;
            prod *= rng.next_f64();
        }
        k
    }
}

/// Binomial distribution `Bin(n, p)`.
///
/// Exact in all regimes: inversion (CDF walk from 0) when the flipped
/// mean `n·min(p, 1−p)` is small, and inversion *centred at the mode*
/// otherwise. Both walk the exact pmf recurrence, so only speed differs:
/// the from-zero walk costs `O(np)` steps, the mode-centred walk
/// `O(√(npq))` expected — what keeps the level-batched allocation
/// engine's multinomial splits cheap at `m = n²` scale.
#[derive(Debug, Clone, Copy)]
pub struct BinomialSampler {
    n: u64,
    p: f64,
}

/// Mean threshold below which the CDF walk is used.
const BINOMIAL_INVERSION_MEAN: f64 = 32.0;

/// `ln(k!)`: direct log-sum below 10 (a cold path — the mode-centred
/// sampler only fires with mean > 32, where every argument is ≥ 32),
/// Stirling series (three correction terms, relative error < 1e-13 for
/// k ≥ 10) above.
fn ln_factorial(k: u64) -> f64 {
    if k < 10 {
        return (2..=k).map(|i| (i as f64).ln()).sum();
    }
    const HALF_LN_TAU: f64 = 0.918_938_533_204_672_7; // ln(2π)/2
    let x = k as f64;
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    (x + 0.5) * x.ln() - x + HALF_LN_TAU + inv * (1.0 / 12.0 - inv2 * (1.0 / 360.0 - inv2 / 1260.0))
}

impl BinomialSampler {
    /// Creates the sampler. Panics unless `p ∈ [0, 1]`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "binomial: p={p} outside [0, 1]");
        BinomialSampler { n, p }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Per-trial success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// CDF inversion for `q ≤ 1/2` with small mean: walk the pmf from
    /// `k = 0` using the recurrence
    /// `pmf(k+1) = pmf(k) · (n−k)/(k+1) · q/(1−q)`.
    ///
    /// Only valid while `(1−q)^n` stays clear of subnormal underflow —
    /// comfortably true in the `n·q ≤ 32` regime [`BinomialSampler::sample`]
    /// routes here, and *not* beyond it (the property suite pins the
    /// boundary). Public so that suite can cross-validate the two
    /// inversion paths on the same parameters; use `sample` (which
    /// picks the regime) otherwise.
    pub fn sample_inversion<R: Rng64 + ?Sized>(n: u64, q: f64, rng: &mut R) -> u64 {
        let ratio = q / (1.0 - q);
        let mut k = 0u64;
        let mut pmf = (1.0 - q).powi(n as i32).max(f64::MIN_POSITIVE);
        let mut cdf = pmf;
        let u = rng.next_f64();
        while u > cdf && k < n {
            pmf *= (n - k) as f64 * ratio / (k + 1) as f64;
            k += 1;
            cdf += pmf;
        }
        k
    }

    /// CDF inversion centred at the mode, for large means: lay the pmf
    /// intervals out in the order `mode, mode−1, mode+1, mode−2, …` and
    /// walk outward until the uniform draw is covered. Exactly
    /// `Bin(n, q)` (each value owns an interval of width `pmf(k)`), with
    /// `O(√(n·q·(1−q)))` expected steps since the mass concentrates
    /// around the mode.
    ///
    /// Public so the property suite can cross-validate the two
    /// inversion paths against each other on the same parameters; use
    /// [`BinomialSampler::sample`] (which picks the regime) otherwise.
    pub fn sample_mode_inversion<R: Rng64 + ?Sized>(n: u64, q: f64, rng: &mut R) -> u64 {
        let mode = (((n + 1) as f64) * q).floor().min(n as f64) as u64;
        let ln_pmf = ln_factorial(n) - ln_factorial(mode) - ln_factorial(n - mode)
            + mode as f64 * q.ln()
            + (n - mode) as f64 * (-q).ln_1p();
        let pmf_mode = ln_pmf.exp();
        let u = rng.next_f64();
        let mut cdf = pmf_mode;
        if u < cdf {
            return mode;
        }
        let ratio = q / (1.0 - q);
        let (mut lo, mut pmf_lo) = (mode, pmf_mode);
        let (mut hi, mut pmf_hi) = (mode, pmf_mode);
        loop {
            let mut advanced = false;
            if lo > 0 {
                // pmf(lo−1) = pmf(lo) · lo / ((n − lo + 1) · ratio).
                pmf_lo *= lo as f64 / ((n - lo + 1) as f64 * ratio);
                lo -= 1;
                cdf += pmf_lo;
                if u < cdf {
                    return lo;
                }
                advanced = true;
            }
            if hi < n {
                // pmf(hi+1) = pmf(hi) · (n − hi) · ratio / (hi + 1).
                pmf_hi *= (n - hi) as f64 * ratio / (hi + 1) as f64;
                hi += 1;
                cdf += pmf_hi;
                if u < cdf {
                    return hi;
                }
                advanced = true;
            }
            if !advanced {
                // The full support is covered; u survived only through
                // floating-point residue. The mode is the safe answer.
                return mode;
            }
        }
    }
}

impl Distribution for BinomialSampler {
    type Value = u64;

    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 0 || self.p <= 0.0 {
            return 0;
        }
        if self.p >= 1.0 {
            return self.n;
        }
        // Work with q = min(p, 1−p) and mirror back if flipped.
        let flipped = self.p > 0.5;
        let q = if flipped { 1.0 - self.p } else { self.p };
        let k = if self.n as f64 * q <= BINOMIAL_INVERSION_MEAN && self.n <= i32::MAX as u64 {
            Self::sample_inversion(self.n, q, rng)
        } else {
            Self::sample_mode_inversion(self.n, q, rng)
        };
        if flipped {
            self.n - k
        } else {
            k
        }
    }
}

/// Walker/Vose alias table: O(n) construction, O(1) sampling from an
/// arbitrary finite discrete distribution given by non-negative weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Normalised weights (the pmf).
    pmf: Vec<f64>,
    /// Acceptance probability per cell.
    prob: Vec<f64>,
    /// Fallback cell when the coin rejects.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from non-negative weights.
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table: empty weight vector");
        let total: f64 = weights.iter().sum();
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "alias table: bad weight {w}");
        }
        assert!(total > 0.0, "alias table: weights sum to zero");

        let n = weights.len();
        let pmf: Vec<f64> = weights.iter().map(|&w| w / total).collect();
        // Scaled weights; cells < 1 are "small", ≥ 1 are "large".
        let mut scaled: Vec<f64> = pmf.iter().map(|&p| p * n as f64).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }

        let mut prob = vec![1.0f64; n];
        let mut alias: Vec<usize> = (0..n).collect();
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] -= 1.0 - scaled[s];
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers (numerical residue) keep prob = 1, alias = self.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }

        AliasTable { pmf, prob, alias }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.pmf.len()
    }

    /// Whether the table is empty (never true: construction requires a
    /// non-empty weight vector).
    pub fn is_empty(&self) -> bool {
        self.pmf.is_empty()
    }

    /// The normalised probability of cell `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        self.pmf[i]
    }
}

impl Distribution for AliasTable {
    type Value = usize;

    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.range_usize(self.pmf.len());
        // Strict `<` guarantees zero-weight cells (prob 0) never win the
        // coin and therefore are never returned directly; they also never
        // appear as an alias because zero scaled weight puts them in the
        // small worklist.
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Zipf distribution on `{1, …, n}` with exponent `s ≥ 0`:
/// `pmf(k) ∝ k^{−s}` (uniform when `s = 0`).
#[derive(Debug, Clone)]
pub struct Zipf {
    /// cdf[k−1] = Pr[X ≤ k].
    cdf: Vec<f64>,
    /// pmf[k−1] = Pr[X = k].
    pmf: Vec<f64>,
}

impl Zipf {
    /// Creates the distribution. Panics unless `n ≥ 1` and `s ≥ 0` and
    /// finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "zipf: empty support");
        assert!(s >= 0.0 && s.is_finite(), "zipf: bad exponent {s}");
        let raw: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        let total: f64 = raw.iter().sum();
        let pmf: Vec<f64> = raw.iter().map(|&w| w / total).collect();
        let mut cdf = pmf.clone();
        for k in 1..n {
            cdf[k] += cdf[k - 1];
        }
        cdf[n - 1] = 1.0;
        Zipf { cdf, pmf }
    }

    /// Support size `n`.
    pub fn n(&self) -> usize {
        self.pmf.len()
    }

    /// `Pr[X = k]` for 1-based `k`; 0 outside the support.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 || k > self.pmf.len() {
            0.0
        } else {
            self.pmf[k - 1]
        }
    }
}

impl Distribution for Zipf {
    type Value = usize;

    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.next_f64();
        // First k with cdf[k−1] ≥ u; partition_point counts the strictly
        // smaller prefix.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn geometric_mean_close_to_inverse_p() {
        let mut rng = SplitMix64::new(1);
        let d = GeometricSampler::new(0.25);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn geometric_p_one_is_constant_one() {
        let mut rng = SplitMix64::new(2);
        let d = GeometricSampler::new(1.0);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn poisson_mean_and_variance() {
        let mut rng = SplitMix64::new(3);
        let d = PoissonSampler::new(4.0);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.08, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn binomial_regimes_agree_on_moments() {
        let mut rng = SplitMix64::new(4);
        // From-zero inversion regime.
        let small = BinomialSampler::new(10_000, 1e-3);
        // Mode-centred regime (flipped to q = 0.3, mean 2100 > threshold).
        let large = BinomialSampler::new(3000, 0.7);
        let n = 20_000;
        let m1: f64 = (0..n).map(|_| small.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        let m2: f64 = (0..n).map(|_| large.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((m1 - 10.0).abs() < 0.15, "inversion mean {m1}");
        assert!((m2 - 2100.0).abs() < 1.0, "count mean {m2}");
    }

    #[test]
    fn ln_factorial_matches_iterative_sum() {
        let mut acc = 0.0f64;
        for k in 1..=300u64 {
            acc += (k as f64).ln();
            let lf = ln_factorial(k);
            assert!(
                (lf - acc).abs() <= 1e-10 * acc.max(1.0),
                "k={k}: {lf} vs {acc}"
            );
        }
    }

    #[test]
    fn binomial_mode_inversion_moments() {
        // Deep in the mode-centred regime: mean 10⁴, sd ≈ 99.5 — the
        // exact shape the level-batched engine draws at m = n².
        let mut rng = SplitMix64::new(41);
        let d = BinomialSampler::new(1_000_000, 0.01);
        let reps = 4_000;
        let xs: Vec<f64> = (0..reps).map(|_| d.sample(&mut rng) as f64).collect();
        let mean = xs.iter().sum::<f64>() / reps as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / reps as f64;
        assert!((mean - 10_000.0).abs() < 10.0, "mean {mean}");
        assert!((var - 9_900.0).abs() < 900.0, "var {var}");
        // Support respected.
        assert!(xs.iter().all(|&x| (0.0..=1_000_000.0).contains(&x)));
    }

    #[test]
    fn binomial_regimes_agree_across_threshold() {
        // Same distribution sampled just below and just above the
        // regime switch must have statistically identical histograms.
        let n_trials = 1000u64;
        let below = BinomialSampler::new(n_trials, 31.0 / n_trials as f64);
        let above = BinomialSampler::new(n_trials, 33.0 / n_trials as f64);
        let reps = 30_000;
        for (d, expect_mean) in [(below, 31.0), (above, 33.0)] {
            let mut rng = SplitMix64::new(42);
            let mean = (0..reps).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / reps as f64;
            assert!(
                (mean - expect_mean).abs() < 0.2,
                "mean {mean} vs {expect_mean}"
            );
        }
    }

    #[test]
    fn binomial_edge_parameters() {
        let mut rng = SplitMix64::new(5);
        assert_eq!(BinomialSampler::new(0, 0.5).sample(&mut rng), 0);
        assert_eq!(BinomialSampler::new(17, 0.0).sample(&mut rng), 0);
        assert_eq!(BinomialSampler::new(17, 1.0).sample(&mut rng), 17);
    }

    #[test]
    fn alias_table_respects_weights() {
        let mut rng = SplitMix64::new(6);
        let t = AliasTable::new(&[1.0, 0.0, 3.0]);
        let n = 40_000;
        let mut counts = [0u64; 3];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight cell sampled");
        let f0 = counts[0] as f64 / n as f64;
        assert!((f0 - 0.25).abs() < 0.02, "f0 {f0}");
        assert!((t.pmf(0) - 0.25).abs() < 1e-12);
        assert!((t.pmf(1) - 0.0).abs() < 1e-12);
        assert!((t.pmf(2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 1..=4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SplitMix64::new(7);
        let d = Exponential::new(2.0);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SplitMix64::new(8);
        let d = Normal::new(-1.0, 2.0);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean + 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn bernoulli_distribution_rate() {
        let mut rng = SplitMix64::new(9);
        let d = Bernoulli::new(0.3);
        let hits = (0..50_000).filter(|_| d.sample(&mut rng)).count();
        assert!((hits as f64 / 50_000.0 - 0.3).abs() < 0.02);
    }
}
