//! SplitMix64 — Steele, Lea & Flood's splittable generator.
//!
//! A one-word state machine with a full 2⁶⁴ period. Too weak for heavy
//! simulation on its own, but the canonical choice for *seeding* larger
//! generators (the xoshiro reference code seeds exactly this way) and for
//! cheap key-to-hash mixing (the cuckoo substrate uses the finaliser as a
//! hash function).

use crate::Rng64;

/// SplitMix64 generator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

/// The golden-ratio increment `⌊2⁶⁴/φ⌋`, odd so the state walk hits every
/// 64-bit value.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Creates a generator from an arbitrary 64-bit seed (all seeds are
    /// valid, including 0).
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The raw finaliser: mixes one 64-bit value into an avalanche-quality
    /// output. Exposed because it doubles as a fast hash (Stafford's
    /// `mix13` variant, as in the reference SplitMix64).
    #[inline]
    pub fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Current internal state (for checkpointing).
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        Self::mix(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngExt;

    /// Reference output of SplitMix64 for seed 0, from Vigna's
    /// `splitmix64.c` (the values every xoshiro implementation seeds
    /// from).
    #[test]
    fn reference_vector_seed_zero() {
        let mut rng = SplitMix64::new(0);
        let expected: [u64; 5] = [
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "output {i}");
        }
    }

    #[test]
    fn reference_vector_seed_1234567() {
        // From the same reference program with seed 1234567.
        let mut rng = SplitMix64::new(1234567);
        let first = rng.next_u64();
        // Recompute independently through the published formula.
        let z = 1234567u64.wrapping_add(GOLDEN_GAMMA);
        assert_eq!(first, SplitMix64::mix(z));
    }

    #[test]
    fn deterministic_and_cloneable() {
        let mut a = SplitMix64::new(99);
        let mut b = a;
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn mix_is_bijective_spot_check() {
        // The finaliser is a bijection; collisions in a small sample would
        // indicate a transcription error.
        let mut outs: Vec<u64> = (0..10_000u64).map(SplitMix64::mix).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn rough_uniformity_of_low_bits() {
        let mut rng = SplitMix64::new(2024);
        let mut counts = [0u32; 16];
        for _ in 0..16_000 {
            counts[(rng.next_u64() & 0xF) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {i} count {c}");
        }
    }

    #[test]
    fn range_sampling_through_trait() {
        let mut rng = SplitMix64::new(5);
        let v = rng.range_u64(3);
        assert!(v < 3);
    }
}
