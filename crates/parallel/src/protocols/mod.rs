//! Round-based *parallel* allocation protocols.
//!
//! These are the synchronous processes from the related-work section of
//! the paper: all currently unplaced balls act simultaneously in a round,
//! bins answer, and the process repeats. The performance currency is
//! *rounds* and *messages* rather than sequential samples.
//!
//! Since the scenario-layer refactor the round protocols are ordinary
//! [`Protocol`](bib_core::protocol::Protocol) implementations: they run
//! through `run_protocol`, boxed [`DynProtocol`] suites and
//! [`replicate_outcomes`](crate::replicate_outcomes) like any sequential
//! scheme, and return the unified
//! [`Outcome`](bib_core::protocol::Outcome) with
//! [`Scenario::rounds`](bib_core::scenario::Scenario) annotations
//! (`rounds`, `messages`).
//!
//! Each protocol has **three execution paths**, selected through the
//! engine in `RunConfig` (the family's resolution rule lives in
//! [`round_occupancy`](self): `Faithful`/`Jump` → per-contact rounds,
//! `Histogram`/`LevelBatched` → round-occupancy, `Concurrent` →
//! sharded multi-thread, `Auto` → `Engine::auto_parallel`, promoted to
//! `Concurrent` when `RunConfig::threads > 1`): the *faithful*
//! per-contact rounds of the published processes; the *round-occupancy
//! engine*, which draws each round's request-multiplicity profile in
//! one shot and resolves acceptance per multiplicity class — `O(max
//! multiplicity · #occupancy classes)` per round, independent of the
//! contact count; and the *sharded concurrent engine*
//! ([`concurrent`](self)), which runs one run across
//! `RunConfig::threads` workers over atomic bin shards, with a
//! bit-reproducible deterministic mode and an explicitly nondeterministic
//! `racy` mode.
//!
//! The mapping onto the sequential record:
//!
//! * `total_samples` = total messages (the family's allocation-time
//!   currency: every ball→bin contact and every bin→ball accept);
//! * `max_samples_per_ball` = the largest number of *contacts* any
//!   single ball sent (exact per protocol; accept messages excluded);
//! * [`Observer::on_stage_end`] fires once per synchronous *round* with
//!   the loads and the number of balls placed so far — a stage here is
//!   a round, not `n` balls; `Observer::on_ball` never fires (balls act
//!   simultaneously, there is no per-ball order).
//!
//! The families:
//!
//! * [`BoundedLoad`] — a Lenzen–Wattenhofer-style protocol \[12\]: bins
//!   accept at most `cap` balls ever (max load ≤ `cap` by construction),
//!   unplaced balls double their contact count each round; ~`log* n`
//!   rounds and O(n) messages at `m = n`, `cap = 2`.
//! * [`Collision`] — an Adler et al.-flavoured collision protocol \[1\]:
//!   each unplaced ball contacts one bin; a bin accepts its requesters
//!   only if at most `c` of them collided there.
//! * [`ParallelGreedy`] — round-restricted parallel `greedy[d]` \[1\]:
//!   balls commit to `d` candidates, negotiate for `r` rounds, and are
//!   force-placed at the end; balance improves with the round budget.
//!
//! [`DynProtocol`]: bib_core::protocol::DynProtocol
//! [`Observer::on_stage_end`]: bib_core::protocol::Observer::on_stage_end

mod bounded_load;
mod collision;
mod concurrent;
mod parallel_greedy;
mod round_occupancy;

pub use bounded_load::BoundedLoad;
pub use collision::Collision;
pub use parallel_greedy::ParallelGreedy;

/// Iterated logarithm `log₂* n` — the paper \[12\]'s round complexity
/// yardstick, used by the `parallel_rounds` experiment.
pub fn log_star(n: f64) -> u32 {
    assert!(n.is_finite(), "log_star of non-finite value");
    let mut x = n;
    let mut iters = 0u32;
    while x > 1.0 {
        x = x.log2();
        iters += 1;
        assert!(iters < 64, "log_star diverged");
    }
    iters
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_core::protocol::{Outcome, Protocol, RunConfig};
    use bib_core::scenario::Scenario;
    use bib_rng::SplitMix64;

    #[test]
    fn log_star_known_values() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
        // 2^65536 territory: anything practical is ≤ 5.
        assert_eq!(log_star(1e30), 5);
    }

    #[test]
    fn outcomes_carry_the_parallel_scenario() {
        let o = Outcome {
            protocol: "x".into(),
            n: 2,
            m: 3,
            total_samples: 9,
            max_samples_per_ball: 3,
            loads: vec![2, 1].into(),
            scenario: Scenario::rounds(2, 9),
        };
        o.validate();
        assert_eq!(o.scenario.label(), "parallel");
        assert_eq!(o.rounds(), 2);
        assert_eq!(o.messages(), 9);
        assert!((o.messages_per_ball() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn round_protocols_flow_through_the_generic_protocol_api() {
        // The point of the refactor: one entry point for every family.
        let cfg = RunConfig::new(64, 64);
        let mut rng = SplitMix64::new(3);
        let out = bib_core::run::run_protocol(&BoundedLoad::new(2), &cfg, 5);
        out.validate();
        assert!(out.rounds() >= 1);
        let out = Collision::new(1).allocate(&cfg, &mut rng, &mut bib_core::protocol::NullObserver);
        out.validate();
        assert_eq!(out.total_samples, out.messages());
    }

    #[test]
    #[should_panic]
    fn validate_catches_bad_mass() {
        Outcome {
            protocol: "x".into(),
            n: 2,
            m: 5,
            total_samples: 5,
            max_samples_per_ball: 1,
            loads: vec![1, 1].into(),
            scenario: Scenario::rounds(1, 5),
        }
        .validate();
    }
}
