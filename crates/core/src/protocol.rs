//! The protocol abstraction: run configuration, outcome record,
//! observers, and the [`Protocol`] trait every allocation scheme
//! implements.

use crate::loads::Loads;
use crate::partitioned::PartitionedBins;
use crate::potential::{
    gap, ln_exponential_potential, ln_exponential_potential_classes, quadratic_potential,
    quadratic_potential_classes, EPSILON,
};
use crate::scenario::Scenario;
use bib_rng::Rng64;

/// Which simulation engine a threshold-style protocol uses.
///
/// `Faithful` and `Jump` produce *identically distributed*
/// `(bin, sample-count)` pairs per ball; see [`crate::sampler`] for the
/// argument and the test suite for the statistical evidence. `Faithful`
/// is the paper's literal process; `Jump` collapses each retry run into
/// one geometric draw so that heavily loaded regimes (`m = n²`,
/// Lemma 4.2) stay tractable.
///
/// `LevelBatched` goes one step further (see [`crate::level_batched`]):
/// it walks constant-threshold segments of the run and splits each
/// accepting group's intake with binomial draws instead of placing balls
/// one at a time. It is distributionally *exact on the final load
/// vector* but does not produce per-ball traces: `Observer::on_ball`
/// never fires, `total_samples` is a CLT-faithful draw rather than a
/// per-ball sum, and `max_samples_per_ball` is only a lower-bound proxy.
///
/// `Histogram` collapses the bin dimension entirely (see
/// [`crate::histogram`]): state is the occupancy histogram
/// `counts[ℓ] = #bins with load ℓ`, rounds advance with binomial splits
/// over occupancy *classes* instead of bins, and the outcome stays
/// **histogram-first**: without a stage-trace observer no concrete load
/// vector is ever built — the [`Outcome`] carries the histogram plus a
/// reconstruction seed ([`crate::loads::Loads`]) and a dense vector is
/// assigned lazily (seeded, cached) only if per-bin loads are demanded.
/// Unlike the other engines it also accelerates the fixed-sample
/// baselines `one-choice` and `greedy[d]` (their landing laws are
/// functions of the histogram CDF) and — as the *round-occupancy*
/// engine in `bib-parallel` — the round-synchronous parallel family,
/// where each round's contacts collapse to a multiplicity profile
/// drawn with the same occupancy machinery; `left[d]`, `memory` and
/// `(1+β)` still ignore the engine entirely.
///
/// `Concurrent` is the multi-thread single-run engine of the parallel
/// round family (`bib-parallel::protocols::concurrent`): bins live in
/// an atomic load array, worker threads process disjoint ball chunks
/// within each synchronous round, and acceptance resolves through
/// atomic read-modify-write operations. It honours
/// [`RunConfig::threads`] and the [`RunConfig::racy`] determinism
/// contract; outside the parallel family it resolves exactly like
/// `Auto` (the sequential families have no concurrent path).
///
/// `Auto` is not an engine of its own: each protocol resolves it to the
/// measured-fastest concrete engine for its `(protocol, n, m)` cell
/// before running (see [`Engine::auto_scheduled`] /
/// [`Engine::auto_fixed`], calibrated against `BENCH_engines.json`).
/// For the parallel family, `Auto` with `threads > 1` resolves to
/// `Concurrent` — a request for threads is a request for the engine
/// that can use them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Faithful sample-by-sample retry loop.
    #[default]
    Faithful,
    /// Geometric-jump equivalent: draw the number of wasted samples in
    /// one shot, then pick an accepting bin uniformly.
    Jump,
    /// Level-batched group placement: binomial intake splits per load
    /// level, exact on final loads, no per-ball trace.
    LevelBatched,
    /// Occupancy-histogram engine: the bin dimension is collapsed to
    /// `counts[load]`; round cost is `O(#distinct loads)`, independent
    /// of `n`. Final loads reconstructed by seeded random assignment.
    Histogram,
    /// Sharded concurrent single-run engine for the parallel round
    /// family: atomic bin shards, per-round worker barriers, CAS-style
    /// acceptance. Sequential families resolve it like `Auto`.
    Concurrent,
    /// Resolve to the measured-fastest concrete engine per
    /// `(protocol, n, m)` at run time.
    Auto,
}

impl Engine {
    /// All *serial* concrete engines, in documentation order. `Auto` is
    /// a selector, not an engine, and is deliberately absent: iterating
    /// `ALL` visits each distinct simulation path exactly once.
    /// `Concurrent` is also absent — it is a deployment mode of the
    /// parallel family (its deterministic mode is distributionally
    /// identical to `Faithful` there, and it aliases `Auto` elsewhere),
    /// so iterating it alongside the serial engines would visit no new
    /// path on a single thread.
    pub const ALL: [Engine; 4] = [
        Engine::Faithful,
        Engine::Jump,
        Engine::LevelBatched,
        Engine::Histogram,
    ];

    /// Canonical CLI / JSON name.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Faithful => "faithful",
            Engine::Jump => "jump",
            Engine::LevelBatched => "level-batched",
            Engine::Histogram => "histogram",
            Engine::Concurrent => "concurrent",
            Engine::Auto => "auto",
        }
    }

    /// Resolves `Auto` for a threshold-scheduled protocol.
    ///
    /// Calibrated against the committed `BENCH_engines.json` (a serial,
    /// single-worker run — see `bench_json --serial`): the histogram
    /// engine is the measured-fastest at every size in the matrix for
    /// every schedule shape (its round cost is independent of `n`), so
    /// the faithful per-ball loop only wins when the run is tiny or `n`
    /// is so large relative to `m` that the engine's `O(n)`
    /// reconstruction and assignment permutation dominate the placement
    /// work itself.
    pub fn auto_scheduled(n: usize, m: u64) -> Engine {
        if m < (1 << 13) || 4 * m < n as u64 {
            Engine::Faithful
        } else {
            Engine::Histogram
        }
    }

    /// Resolves `Auto` for the fixed-sample protocols that have a
    /// histogram fast path (`one-choice`, `greedy[d]`): per-bin
    /// sequential placement while small (its cache-resident loop is hard
    /// to beat), histogram once the run is heavy enough that collapsing
    /// the bin dimension pays — which `BENCH_engines.json` puts at
    /// roughly a million balls.
    pub fn auto_fixed(n: usize, m: u64) -> Engine {
        if m >= (1 << 20) && 4 * m >= n as u64 {
            Engine::Histogram
        } else {
            Engine::Faithful
        }
    }

    /// Resolves `Auto` for the round-synchronous parallel family
    /// (`collision`, `bounded-load`, `parallel-greedy`), which has two
    /// concrete paths: the faithful per-contact round loop and the
    /// round-occupancy engine (`bib-parallel::protocols`), whose
    /// per-round cost is `O(max multiplicity · #occupancy classes)` —
    /// independent of the contact count. The engine still pays one
    /// `O(n)` reconstruction pass at the end, so the faithful loop wins
    /// only when the run is small enough to be cache-resident or `n`
    /// dwarfs `m` (measured in `BENCH_engines.json`,
    /// `scenario = "parallel"` rows).
    pub fn auto_parallel(n: usize, m: u64) -> Engine {
        if m < (1 << 13) || 4 * m < n as u64 {
            Engine::Faithful
        } else {
            Engine::Histogram
        }
    }

    /// Resolves `Auto` for the weighted sequential family, which has two
    /// concrete paths: the faithful per-ball alias loop and the
    /// weight-class histogram engine (`k` = number of weight classes).
    /// The histogram engine's segment count grows with `k·m/n`, so it
    /// needs a few balls per (class, stage) cell to amortise; below that
    /// — and for tiny runs — the cache-resident per-ball loop wins
    /// (measured in `BENCH_engines.json`, `scenario = "weighted"` rows).
    pub fn auto_weighted(n: usize, m: u64, k: usize) -> Engine {
        if m < (1 << 13) || 4 * m < n as u64 || m < 64 * k as u64 {
            Engine::Faithful
        } else {
            Engine::Histogram
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "faithful" | "naive" => Ok(Engine::Faithful),
            "jump" => Ok(Engine::Jump),
            "level-batched" | "batched" | "level_batched" => Ok(Engine::LevelBatched),
            "histogram" | "hist" => Ok(Engine::Histogram),
            "concurrent" | "conc" => Ok(Engine::Concurrent),
            "auto" => Ok(Engine::Auto),
            other => Err(format!(
                "unknown engine {other:?}; expected faithful, jump, level-batched, histogram, \
                 concurrent or auto"
            )),
        }
    }
}

/// Configuration of one allocation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Number of bins `n` (≥ 1).
    pub n: usize,
    /// Number of balls `m`.
    pub m: u64,
    /// Simulation engine. Threshold-style protocols support all four
    /// serial concrete engines; `one-choice`/`greedy[d]`, the weighted
    /// family and the parallel round family each dispatch between their
    /// faithful path and their histogram fast path (each family
    /// documents how the remaining engine names alias onto those two);
    /// the parallel round family additionally has the multi-thread
    /// [`Engine::Concurrent`] path; `left[d]`, `memory` and `(1+β)`
    /// ignore the engine.
    pub engine: Engine,
    /// Worker threads *within one run* (≥ 1). Only the parallel round
    /// family's [`Engine::Concurrent`] path uses it; every serial
    /// engine ignores it. `Engine::Auto` on a parallel protocol
    /// resolves to `Concurrent` when `threads > 1`.
    pub threads: usize,
    /// Determinism contract of the concurrent engine. `false` (the
    /// default) derives per-chunk child RNG streams so the run is
    /// bit-reproducible and independent of `threads`; `true` lets CAS
    /// contention order placements nondeterministically (per-worker
    /// streams, first-arrival acceptance) — distributionally equivalent
    /// to the faithful driver, validated by the chi-square suite.
    /// Ignored by every serial engine.
    pub racy: bool,
}

impl RunConfig {
    /// Creates a configuration with the default (faithful) engine,
    /// one thread, and the deterministic concurrency contract.
    pub fn new(n: usize, m: u64) -> Self {
        assert!(n > 0, "RunConfig: need at least one bin");
        Self {
            n,
            m,
            engine: Engine::Faithful,
            threads: 1,
            racy: false,
        }
    }

    /// Switches to the geometric-jump engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the worker-thread count for a single run (concurrent
    /// engine only; clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Opts in to the racy (nondeterministic placement order)
    /// concurrency contract; see [`RunConfig::racy`].
    pub fn with_racy(mut self, racy: bool) -> Self {
        self.racy = racy;
        self
    }

    /// The target height `⌈m/n⌉ + 1` that both paper protocols guarantee
    /// as a maximum load.
    pub fn max_load_bound(&self) -> u64 {
        self.m.div_ceil(self.n as u64) + 1
    }
}

/// Hooks for instrumenting a run without touching protocol code.
///
/// All methods have no-op defaults. `on_stage_end` fires after every
/// batch of `n` placed balls (the paper's *stages*), and once more at the
/// end if `m` is not a multiple of `n`. Under [`Engine::LevelBatched`]
/// `on_ball` never fires (there is no per-ball event stream), and
/// `on_stage_end` fires only when [`Observer::wants_stage_ends`] returns
/// `true` — the batched driver then caps its segments at stage
/// boundaries so the trace stays exact.
pub trait Observer {
    /// Called after each ball is placed: its 1-based index, the receiving
    /// bin, and how many bin samples it consumed.
    fn on_ball(&mut self, _ball: u64, _bin: usize, _samples: u64) {}

    /// Called at the end of stage `tau` (1-based) with the load vector
    /// and the number of balls placed so far.
    fn on_stage_end(&mut self, _tau: u64, _loads: &[u32], _total: u64) {}

    /// Whether this observer consumes `on_stage_end`. The level-batched
    /// driver asks once per run; returning `false` (as [`NullObserver`]
    /// does) lets it batch across stage boundaries.
    fn wants_stage_ends(&self) -> bool {
        true
    }
}

/// Forwarding impl so observers can be passed down generic call chains
/// by mutable reference (and so `&mut dyn Observer` can re-enter the
/// monomorphized API).
impl<O: Observer + ?Sized> Observer for &mut O {
    fn on_ball(&mut self, ball: u64, bin: usize, samples: u64) {
        (**self).on_ball(ball, bin, samples)
    }
    fn on_stage_end(&mut self, tau: u64, loads: &[u32], total: u64) {
        (**self).on_stage_end(tau, loads, total)
    }
    fn wants_stage_ends(&self) -> bool {
        (**self).wants_stage_ends()
    }
}

/// The do-nothing observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn wants_stage_ends(&self) -> bool {
        false
    }
}

/// Records Ψ, Φ (as ln Φ), and the gap at every stage boundary.
///
/// Drives the smoothness time-series example and the Corollary 3.5 /
/// Lemma 4.2 experiments.
#[derive(Debug, Clone, Default)]
pub struct StageTrace {
    /// Stage indices (1-based, one entry per record).
    pub stages: Vec<u64>,
    /// Quadratic potential at each stage end.
    pub psi: Vec<f64>,
    /// Natural log of the exponential potential at each stage end.
    pub ln_phi: Vec<f64>,
    /// Max−min gap at each stage end.
    pub gaps: Vec<u32>,
}

impl StageTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for StageTrace {
    fn on_stage_end(&mut self, tau: u64, loads: &[u32], total: u64) {
        self.stages.push(tau);
        self.psi.push(quadratic_potential(loads, total));
        self.ln_phi
            .push(ln_exponential_potential(loads, total, EPSILON));
        self.gaps.push(gap(loads));
    }
}

/// Records the per-ball sample counts as a histogram (index = samples−1,
/// saturating at the last cell).
#[derive(Debug, Clone)]
pub struct SampleHistogram {
    /// `counts[k]` = number of balls that used `k+1` samples
    /// (last cell = "that many or more").
    pub counts: Vec<u64>,
}

impl SampleHistogram {
    /// Histogram with `cells` cells.
    pub fn new(cells: usize) -> Self {
        assert!(cells >= 1);
        Self {
            counts: vec![0; cells],
        }
    }
}

impl Observer for SampleHistogram {
    fn on_ball(&mut self, _ball: u64, _bin: usize, samples: u64) {
        let idx = ((samples - 1) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }
}

/// The result of one allocation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Protocol display name.
    pub protocol: String,
    /// Number of bins.
    pub n: usize,
    /// Number of balls placed.
    pub m: u64,
    /// Total number of bin samples drawn — the paper's *allocation time*.
    pub total_samples: u64,
    /// The largest number of samples any single ball needed.
    pub max_samples_per_ball: u64,
    /// Final loads — histogram-first and lazy (see [`Loads`]). Engine
    /// runs without a trace observer carry only the occupancy histogram
    /// plus a reconstruction seed; the dense per-bin vector is built
    /// (then cached) on first per-bin access — slicing, indexing, or
    /// iterating. Every statistic on this record reads the histogram
    /// view in `O(#distinct loads)`, so a no-observer run never pays
    /// the `O(n)` materialization.
    pub loads: Loads,
    /// Scenario annotations: weights for heterogeneous runs, rounds and
    /// messages for parallel runs, the batch for stale-count runs. The
    /// default is the paper's base model (uniform, sequential, online).
    pub scenario: Scenario,
}

impl Outcome {
    /// Total balls accounted for in `loads` (must equal `m`; checked by
    /// [`Outcome::validate`]). `O(#distinct loads)` over the histogram.
    pub fn total_balls(&self) -> u64 {
        if self.loads.is_empty() {
            return 0;
        }
        self.loads.histogram().total_balls()
    }

    /// Maximum final load.
    pub fn max_load(&self) -> u32 {
        if self.loads.is_empty() {
            return 0;
        }
        self.loads.histogram().max_load()
    }

    /// Minimum final load.
    pub fn min_load(&self) -> u32 {
        if self.loads.is_empty() {
            return 0;
        }
        self.loads.histogram().min_load()
    }

    /// Max−min gap.
    pub fn gap(&self) -> u32 {
        self.max_load() - self.min_load()
    }

    /// Allocation time divided by `m` — converges to 1 for `threshold`
    /// (Theorem 4.1) and to a small constant for `adaptive`
    /// (Theorem 3.1).
    pub fn time_ratio(&self) -> f64 {
        if self.m == 0 {
            0.0
        } else {
            self.total_samples as f64 / self.m as f64
        }
    }

    /// Allocation time minus `m` — the excess bounded by
    /// `O(m^{3/4} n^{1/4})` in Theorem 4.1.
    pub fn excess_samples(&self) -> u64 {
        self.total_samples.saturating_sub(self.m)
    }

    /// Final quadratic potential `Ψ_m` (Figure 3(b)) —
    /// `O(#distinct loads)` over the histogram.
    pub fn psi(&self) -> f64 {
        quadratic_potential_classes(self.loads.histogram().levels(), self.n as u64, self.m)
    }

    /// Final exponential potential `Φ_m` at the paper's ε = 1/200.
    pub fn phi(&self) -> f64 {
        self.ln_phi().exp()
    }

    /// `ln Φ_m`, safe for the deep-hole regime of Lemma 4.2 —
    /// `O(#distinct loads)` log-sum-exp over the histogram classes.
    pub fn ln_phi(&self) -> f64 {
        ln_exponential_potential_classes(
            self.loads.histogram().levels(),
            self.n as u64,
            self.m,
            EPSILON,
        )
    }

    /// Bin `j`'s fair share of the `m` balls: `m·w_j/W` for weighted
    /// runs, `m/n` for uniform ones. Zero-weight bins have fair share 0
    /// (no division by their weight is ever performed).
    pub fn fair_share(&self, j: usize) -> f64 {
        if self.scenario.weights.is_empty() {
            self.m as f64 / self.n as f64
        } else {
            let w_total: f64 = self.scenario.weights.iter().sum();
            self.m as f64 * self.scenario.weights[j] / w_total
        }
    }

    /// Per-bin overload `load_j − fair_share(j)` (positive = above fair
    /// share). The weighted max-load guarantee bounds this by ≤ 2
    /// (⌈·⌉ rounding plus the +1 slack). Inherently per-bin, so this
    /// materializes the loads; prefer [`Outcome::max_overload`] /
    /// [`Outcome::weighted_psi`] when only the aggregate is wanted.
    pub fn overloads(&self) -> Vec<f64> {
        // One pass over the weights for the total, not one per bin.
        if self.scenario.weights.is_empty() {
            let fair = self.m as f64 / self.n as f64;
            return self.loads.iter().map(|&l| l as f64 - fair).collect();
        }
        let w_total: f64 = self.scenario.weights.iter().sum();
        self.loads
            .iter()
            .zip(&self.scenario.weights)
            .map(|(&l, &w)| l as f64 - self.m as f64 * w / w_total)
            .collect()
    }

    /// The largest per-bin overload. Uniform runs read it off the
    /// histogram (`max_load − m/n`, `O(#distinct loads)`, no
    /// materialization); weighted runs take one allocation-free pass
    /// over the bins.
    pub fn max_overload(&self) -> f64 {
        if self.scenario.weights.is_empty() {
            if self.loads.is_empty() {
                return f64::NEG_INFINITY;
            }
            return self.max_load() as f64 - self.m as f64 / self.n as f64;
        }
        let w_total: f64 = self.scenario.weights.iter().sum();
        self.loads
            .iter()
            .zip(&self.scenario.weights)
            .map(|(&l, &w)| l as f64 - self.m as f64 * w / w_total)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Weighted quadratic potential `Σ_j (load_j − fair_share_j)²`
    /// (degenerates to Ψ up to the `m/n` centring for uniform runs —
    /// where it is computed over the histogram classes); weighted runs
    /// take one allocation-free pass over the bins.
    pub fn weighted_psi(&self) -> f64 {
        if self.scenario.weights.is_empty() {
            if self.loads.is_empty() {
                return 0.0;
            }
            return self.psi();
        }
        let w_total: f64 = self.scenario.weights.iter().sum();
        self.loads
            .iter()
            .zip(&self.scenario.weights)
            .map(|(&l, &w)| {
                let d = l as f64 - self.m as f64 * w / w_total;
                d * d
            })
            .sum()
    }

    /// Synchronous rounds used (0 for sequential protocols).
    pub fn rounds(&self) -> u32 {
        self.scenario.rounds
    }

    /// Total messages of a parallel run (0 for sequential protocols,
    /// which account cost in [`Outcome::total_samples`]).
    pub fn messages(&self) -> u64 {
        self.scenario.messages
    }

    /// Messages per ball — O(1) is the headline of the bounded-load
    /// related work; 0 for sequential protocols.
    pub fn messages_per_ball(&self) -> f64 {
        if self.m == 0 {
            0.0
        } else {
            self.scenario.messages as f64 / self.m as f64
        }
    }

    /// Balls shed by a streaming run after exhausting their retry
    /// budget (0 for batch runs — they never shed).
    pub fn shed(&self) -> u64 {
        self.scenario.shed
    }

    /// Shed balls as a fraction of arrivals (0 for batch runs).
    pub fn shed_rate(&self) -> f64 {
        self.scenario.shed_rate()
    }

    /// Balls a streaming run placed via the one-choice degradation
    /// fallback (0 for batch runs).
    pub fn fallbacks(&self) -> u64 {
        self.scenario.fallbacks
    }

    /// Accepting fraction of the fleet at the end of the run (1.0 for
    /// batch runs — faults only exist in the streaming scenario).
    pub fn alive_frac(&self) -> f64 {
        self.scenario.alive_frac
    }

    /// Asserts internal consistency: mass conservation, that the sample
    /// count is at least `m` (every ball needs ≥ 1 sample), and that the
    /// scenario annotations are coherent (weights match the bin count
    /// and contain no NaN/negative entry; zero weights are legal and
    /// divide nothing). Runs on every [`crate::run::run_protocol`] call,
    /// so the uniform checks read only the histogram — a lazy outcome
    /// stays lazy through validation (the weighted per-bin check touches
    /// loads, but the weighted family is dense-born).
    pub fn validate(&self) {
        assert_eq!(self.loads.len(), self.n, "loads/n mismatch");
        assert_eq!(self.total_balls(), self.m, "mass not conserved");
        if self.m > 0 {
            assert!(
                self.total_samples >= self.m,
                "fewer samples ({}) than balls ({})",
                self.total_samples,
                self.m
            );
            assert!(self.max_samples_per_ball >= 1);
        }
        if !self.scenario.weights.is_empty() {
            assert_eq!(self.scenario.weights.len(), self.n, "weights/n mismatch");
            let mut w_total = 0.0f64;
            for &w in &self.scenario.weights {
                assert!(w >= 0.0 && w.is_finite(), "bad weight {w}");
                w_total += w;
            }
            assert!(w_total > 0.0, "weights sum to zero");
            // A bin that can never be sampled can never receive a ball.
            for (j, &w) in self.scenario.weights.iter().enumerate() {
                if w == 0.0 {
                    assert_eq!(self.loads[j], 0, "zero-weight bin {j} got balls");
                }
            }
        }
        if self.scenario.rounds > 0 && self.m > 0 {
            assert!(
                self.scenario.messages >= self.m,
                "a parallel run needs at least one message per ball"
            );
        }
        if self.scenario.ticks > 0 {
            // The stream ledger: every arrived ball is resident,
            // departed, or shed — nothing vanishes silently.
            assert_eq!(
                self.scenario.arrivals,
                self.m + self.scenario.departed + self.scenario.shed,
                "stream ledger broken: {} arrivals vs {} resident + {} departed + {} shed",
                self.scenario.arrivals,
                self.m,
                self.scenario.departed,
                self.scenario.shed
            );
            let af = self.scenario.alive_frac;
            assert!((0.0..=1.0).contains(&af), "alive_frac {af} outside [0, 1]");
        }
    }
}

/// An allocation scheme that places `cfg.m` balls into `cfg.n` bins.
///
/// `allocate` is generic over the RNG and the observer, so the whole
/// per-ball hot path — retry loop, distribution draws, observer hooks —
/// monomorphizes and inlines; a [`NullObserver`] run compiles down to
/// pure placement work with zero virtual calls. Code that needs runtime
/// polymorphism (boxed protocol suites, the CLI) goes through the
/// object-safe [`DynProtocol`] wrapper instead.
pub trait Protocol {
    /// Human-readable name (used in tables and outcome records).
    fn name(&self) -> String;

    /// Runs the full allocation, reporting per-ball events to `obs`.
    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized;
}

/// Object-safe view of a [`Protocol`], for heterogeneous suites like
/// [`crate::protocols::table1_suite`].
///
/// Every `Protocol` is a `DynProtocol` (blanket impl below), and
/// `dyn DynProtocol` implements `Protocol` back again by type-erasing
/// the RNG and observer — so `Box<dyn DynProtocol>` flows through the
/// same generic entry points (`run_protocol`, `replicate_outcomes`) as
/// concrete protocols, paying one virtual hop per *run* instead of
/// several per *ball*.
pub trait DynProtocol {
    /// [`Protocol::name`], type-erased.
    fn dyn_name(&self) -> String;

    /// [`Protocol::allocate`], type-erased.
    fn dyn_allocate(&self, cfg: &RunConfig, rng: &mut dyn Rng64, obs: &mut dyn Observer)
        -> Outcome;
}

impl<P: Protocol> DynProtocol for P {
    fn dyn_name(&self) -> String {
        Protocol::name(self)
    }

    fn dyn_allocate(
        &self,
        cfg: &RunConfig,
        rng: &mut dyn Rng64,
        obs: &mut dyn Observer,
    ) -> Outcome {
        self.allocate(cfg, rng, obs)
    }
}

macro_rules! impl_protocol_for_dyn {
    ($($ty:ty),+ $(,)?) => {$(
        impl Protocol for $ty {
            fn name(&self) -> String {
                self.dyn_name()
            }

            fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
            where
                R: Rng64 + ?Sized,
                O: Observer + ?Sized,
            {
                // Re-borrowing through `&mut` gives sized handles that
                // coerce to the trait objects the erased API needs.
                let mut rng = rng;
                let mut obs = obs;
                self.dyn_allocate(cfg, &mut rng, &mut obs)
            }
        }
    )+};
}

impl_protocol_for_dyn!(
    dyn DynProtocol + '_,
    dyn DynProtocol + Send + '_,
    dyn DynProtocol + Sync + '_,
    dyn DynProtocol + Send + Sync + '_,
);

/// Drives the common per-ball loop shared by all sequential protocols:
/// calls `place_one` for each ball, maintains the observer callbacks and
/// sample accounting, and assembles the [`Outcome`].
///
/// `place_one(bins, ball_index, rng) -> (bin, samples)` must place the
/// ball itself (via [`PartitionedBins::place`]) before returning.
pub fn drive_sequential<R, O, F>(
    name: String,
    cfg: &RunConfig,
    rng: &mut R,
    obs: &mut O,
    mut place_one: F,
) -> Outcome
where
    R: Rng64 + ?Sized,
    O: Observer + ?Sized,
    F: FnMut(&mut PartitionedBins, u64, &mut R) -> (usize, u64),
{
    let mut bins = PartitionedBins::new(cfg.n);
    let mut total_samples = 0u64;
    let mut max_samples = 0u64;
    let n64 = cfg.n as u64;
    for ball in 1..=cfg.m {
        let before = bins.total();
        let (bin, samples) = place_one(&mut bins, ball, rng);
        debug_assert_eq!(
            bins.total(),
            before + 1,
            "place_one must place exactly one ball"
        );
        total_samples += samples;
        max_samples = max_samples.max(samples);
        obs.on_ball(ball, bin, samples);
        if ball % n64 == 0 {
            obs.on_stage_end(ball / n64, bins.as_slice(), ball);
        }
    }
    if !cfg.m.is_multiple_of(n64) {
        obs.on_stage_end(cfg.m / n64 + 1, bins.as_slice(), cfg.m);
    }
    Outcome {
        protocol: name,
        n: cfg.n,
        m: cfg.m,
        total_samples,
        max_samples_per_ball: max_samples,
        loads: bins.to_load_vector().into_loads().into(),
        scenario: Scenario::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_rng::{RngExt, SplitMix64};

    /// A trivial protocol for exercising the harness: one uniform choice
    /// per ball.
    struct Trivial;

    impl Protocol for Trivial {
        fn name(&self) -> String {
            "trivial".into()
        }
        fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
        where
            R: Rng64 + ?Sized,
            O: Observer + ?Sized,
        {
            drive_sequential(self.name(), cfg, rng, obs, |bins, _ball, rng| {
                let b = rng.range_usize(bins.n());
                bins.place(b);
                (b, 1)
            })
        }
    }

    #[test]
    fn dyn_wrapper_round_trips() {
        // Boxed protocols flow through the generic API and agree with
        // the direct monomorphized call on the same stream.
        let cfg = RunConfig::new(5, 40);
        let boxed: Box<dyn DynProtocol> = Box::new(Trivial);
        let mut r1 = SplitMix64::new(7);
        let mut r2 = SplitMix64::new(7);
        let a = boxed.allocate(&cfg, &mut r1, &mut NullObserver);
        let b = Trivial.allocate(&cfg, &mut r2, &mut NullObserver);
        assert_eq!(a, b);
        assert_eq!(boxed.name(), "trivial");
    }

    #[test]
    fn run_config_bound() {
        assert_eq!(RunConfig::new(10, 100).max_load_bound(), 11);
        assert_eq!(RunConfig::new(10, 101).max_load_bound(), 12);
        assert_eq!(RunConfig::new(10, 0).max_load_bound(), 1);
    }

    #[test]
    fn drive_sequential_accounts_mass_and_samples() {
        let cfg = RunConfig::new(7, 50);
        let mut rng = SplitMix64::new(1);
        let out = Trivial.allocate(&cfg, &mut rng, &mut NullObserver);
        out.validate();
        assert_eq!(out.total_samples, 50);
        assert_eq!(out.max_samples_per_ball, 1);
        assert_eq!(out.time_ratio(), 1.0);
    }

    #[test]
    fn zero_balls_is_a_valid_run() {
        let cfg = RunConfig::new(3, 0);
        let mut rng = SplitMix64::new(2);
        let out = Trivial.allocate(&cfg, &mut rng, &mut NullObserver);
        out.validate();
        assert_eq!(out.total_samples, 0);
        assert_eq!(out.max_load(), 0);
        assert_eq!(out.time_ratio(), 0.0);
    }

    #[test]
    fn stage_trace_records_every_stage() {
        let cfg = RunConfig::new(5, 23); // 4 full stages + remainder
        let mut rng = SplitMix64::new(3);
        let mut trace = StageTrace::new();
        Trivial.allocate(&cfg, &mut rng, &mut trace);
        assert_eq!(trace.stages, vec![1, 2, 3, 4, 5]);
        assert_eq!(trace.psi.len(), 5);
        assert_eq!(trace.gaps.len(), 5);
        // Potentials are finite and non-negative.
        assert!(trace.psi.iter().all(|&p| p.is_finite() && p >= 0.0));
        assert!(trace.ln_phi.iter().all(|&p| p.is_finite()));
    }

    #[test]
    fn stage_trace_no_duplicate_final_stage_when_divisible() {
        let cfg = RunConfig::new(5, 20);
        let mut rng = SplitMix64::new(4);
        let mut trace = StageTrace::new();
        Trivial.allocate(&cfg, &mut rng, &mut trace);
        assert_eq!(trace.stages, vec![1, 2, 3, 4]);
    }

    #[test]
    fn sample_histogram_totals_balls() {
        let cfg = RunConfig::new(4, 40);
        let mut rng = SplitMix64::new(5);
        let mut hist = SampleHistogram::new(8);
        Trivial.allocate(&cfg, &mut rng, &mut hist);
        assert_eq!(hist.counts.iter().sum::<u64>(), 40);
        assert_eq!(hist.counts[0], 40); // trivial uses exactly 1 sample
    }

    #[test]
    fn outcome_metrics_consistency() {
        let out = Outcome {
            protocol: "x".into(),
            n: 4,
            m: 8,
            total_samples: 10,
            max_samples_per_ball: 3,
            loads: vec![2, 2, 3, 1].into(),
            scenario: Scenario::default(),
        };
        out.validate();
        assert_eq!(out.max_load(), 3);
        assert_eq!(out.min_load(), 1);
        assert_eq!(out.gap(), 2);
        assert_eq!(out.excess_samples(), 2);
        assert!((out.time_ratio() - 1.25).abs() < 1e-12);
        assert!(out.psi() > 0.0);
        assert!(out.phi() > 0.0);
        assert!((out.ln_phi().exp() - out.phi()).abs() < 1e-9 * out.phi());
    }

    #[test]
    #[should_panic]
    fn validate_catches_mass_violation() {
        Outcome {
            protocol: "x".into(),
            n: 2,
            m: 5,
            total_samples: 5,
            max_samples_per_ball: 1,
            loads: vec![1, 1].into(),
            scenario: Scenario::default(),
        }
        .validate();
    }
}
