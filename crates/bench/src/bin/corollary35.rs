//! **E6 — Corollary 3.5**: `adaptive` keeps `E[Φ] = O(n)`, `E[Ψ] = O(n)`
//! and gap `O(log n)`.
//!
//! Sweep `n` at fixed heavy load `ϕ = 32` and report Φ/n, Ψ/n and
//! gap/log₂(n): all three columns should be flat (bounded) as `n` grows,
//! and Φ/n should sit far below the paper's worst-case analytic ceiling
//! (printed for reference from `bib-analysis::paper`).
//!
//! ```text
//! cargo run --release -p bib-bench --bin corollary35 [-- --quick --csv --no-loads]
//! ```
//!
//! With `--no-loads` the sweep runs histogram-only — every statistic
//! comes from the occupancy histogram, each outcome is asserted to
//! never materialize its dense load vector, and the size grid extends
//! to `n = 2²⁷ ≈ 1.3 × 10⁸` and `n = 2³⁰ ≈ 1.1 × 10⁹` bins (memory
//! stays independent of `n`).

use bib_analysis::paper;
use bib_bench::{f, ExpArgs, Table};
use bib_core::prelude::*;
use bib_parallel::replicate::summarize_metric;
use bib_parallel::replicate_outcomes;

fn main() {
    let args = ExpArgs::parse();
    // 16× the pre-monomorphization top size. Engine::Auto resolves the
    // heavy cells to the occupancy-histogram engine (whose stage cost is
    // independent of n — see BENCH_engines.json), replacing the old
    // hardwired faithful default that made n = 2²¹ a few minutes; pass
    // `--engine faithful` to reproduce the exact per-ball process when
    // verifying the smoothness constants rather than sweeping them.
    let mut ns: Vec<usize> = args.pick(
        vec![
            1 << 14,
            1 << 15,
            1 << 16,
            1 << 17,
            1 << 18,
            1 << 19,
            1 << 20,
            1 << 21,
        ],
        vec![1 << 8, 1 << 10],
    );
    if args.no_loads && !args.quick {
        // Histogram-only mode unlocks the giant-n regime: the outcome
        // stays a histogram (memory independent of n), so the sweep
        // extends to n ≈ 10⁸ and 10⁹ bins.
        ns.extend([1 << 27, 1 << 30]);
    }
    let phi_load = 32u64;
    let reps = args.reps_or(20, 5);
    // --no-loads pins the histogram engine outright (Auto resolves the
    // heavy cells there anyway) so the lazy assertion below is a
    // guarantee, not a bet on the resolver.
    let default_engine = if args.no_loads {
        Engine::Histogram
    } else {
        Engine::Auto
    };

    let consts = paper::constants();
    println!("# Corollary 3.5: adaptive smoothness vs n at phi = {phi_load}; {reps} reps");
    println!(
        "# analytic ceiling from the paper's constants: E[Phi]/n <= {}\n",
        f(consts.phi_over_n)
    );

    let mut table = Table::new(vec!["n", "phi/n", "psi/n", "gap", "gap/log2(n)"]);
    for &n in &ns {
        let m = phi_load * n as u64;
        let cfg = RunConfig::new(n, m).with_engine(args.engine_or(default_engine));
        let outs = replicate_outcomes(&Adaptive::paper(), &cfg, &args.replicate_spec(reps));
        for o in &outs {
            args.assert_lazy(o, &format!("adaptive n={n}"));
        }
        let phi = summarize_metric(&outs, |o| o.phi() / n as f64);
        let psi = summarize_metric(&outs, |o| o.psi() / n as f64);
        let gap = summarize_metric(&outs, |o| o.gap() as f64);
        let lg = (n as f64).log2();
        table.row(vec![
            n.to_string(),
            f(phi.mean),
            f(psi.mean),
            f(gap.mean),
            f(gap.mean / lg),
        ]);
    }

    table.print(&args);
    println!("\n# Expected shape: phi/n and psi/n flat in n; gap growing at most like log n");
    println!("# (gap/log2(n) bounded).");
}
