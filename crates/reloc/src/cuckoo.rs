//! Cuckoo hashing with `d` choices and buckets of size `k`.
//!
//! The balls-into-bins view (paper §1, \[8\]): items are balls, buckets are
//! bins of capacity `k`, and when all `d` candidate buckets of a new item
//! are full, a resident item is *reallocated* to one of its own other
//! choices (random-walk eviction). The `cuckoo_thresholds` experiment
//! (E10) measures how the reallocation cost explodes as the load factor
//! approaches the (d, k) threshold — the quantitative version of the
//! paper's remark that reallocations are expensive.
//!
//! Hash functions are SplitMix64 finalisers over `key ⊕ seedᵢ`, mapped to
//! buckets by multiply-shift — real hashing, not per-item stored
//! randomness, so lookups work.

use bib_rng::{Rng64, RngExt, SplitMix64};

/// Reasons an insertion can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// The random-walk eviction chain exceeded the kick budget; the
    /// displaced key was parked in the stash (the table stays lossless).
    /// This is the practical "table is full" signal.
    KickBudgetExhausted {
        /// Evictions performed before giving up.
        kicks: u64,
    },
    /// The key is already present (the table stores a set).
    DuplicateKey,
}

impl std::fmt::Display for InsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        bib_core::error::ProtocolError::from(*self).fmt(f)
    }
}

impl std::error::Error for InsertError {}

/// A cuckoo insertion failure is a [`ProtocolError`] — the CLI and any
/// service caller surface it through the same typed-error path as the
/// bounded-load infeasibility, with a non-zero exit instead of a crash.
///
/// [`ProtocolError`]: bib_core::error::ProtocolError
impl From<InsertError> for bib_core::error::ProtocolError {
    fn from(e: InsertError) -> Self {
        match e {
            InsertError::KickBudgetExhausted { kicks } => {
                bib_core::error::ProtocolError::KickBudgetExhausted { kicks }
            }
            InsertError::DuplicateKey => bib_core::error::ProtocolError::DuplicateKey,
        }
    }
}

/// A cuckoo hash table of `u64` keys with an overflow stash.
///
/// # Examples
///
/// ```
/// use bib_reloc::CuckooTable;
/// use bib_rng::SplitMix64;
///
/// let mut t = CuckooTable::new(64, 2, 2, 42); // 64 buckets × 2 slots, d = 2
/// let mut rng = SplitMix64::new(1);
/// t.insert(1234, &mut rng).unwrap();
/// assert!(t.contains(1234));
/// assert!(!t.contains(999));
/// assert!(t.remove(1234));
/// assert!(t.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct CuckooTable {
    /// `buckets[b]` holds up to `k` keys.
    buckets: Vec<Vec<u64>>,
    /// Keys whose eviction walk ran out of budget. Kept lossless; checked
    /// by `contains`/`remove`. A growing stash means the table is past
    /// its load threshold.
    stash: Vec<u64>,
    seeds: Vec<u64>,
    k: usize,
    len: usize,
    max_kicks: u64,
}

impl CuckooTable {
    /// A table with `nbuckets` buckets of size `k`, `d` hash functions
    /// derived from `seed`, and a default kick budget of 500.
    pub fn new(nbuckets: usize, k: usize, d: usize, seed: u64) -> Self {
        assert!(nbuckets > 0, "need at least one bucket");
        assert!(k >= 1, "bucket size must be ≥ 1");
        assert!(d >= 2, "cuckoo hashing needs d ≥ 2 choices");
        let mut sm = SplitMix64::new(seed);
        let seeds: Vec<u64> = (0..d).map(|_| sm.next_u64()).collect();
        Self {
            buckets: vec![Vec::with_capacity(k); nbuckets],
            stash: Vec::new(),
            seeds,
            k,
            len: 0,
            max_kicks: 500,
        }
    }

    /// Overrides the eviction budget.
    pub fn with_max_kicks(mut self, max_kicks: u64) -> Self {
        self.max_kicks = max_kicks;
        self
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of buckets.
    pub fn nbuckets(&self) -> usize {
        self.buckets.len()
    }

    /// Bucket capacity `k`.
    pub fn bucket_size(&self) -> usize {
        self.k
    }

    /// Number of hash choices `d`.
    pub fn d(&self) -> usize {
        self.seeds.len()
    }

    /// Fraction of slots occupied, `len / (k·nbuckets)`.
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / (self.k * self.buckets.len()) as f64
    }

    /// The `i`-th candidate bucket of `key`.
    pub fn bucket_of(&self, key: u64, i: usize) -> usize {
        let h = SplitMix64::mix(key ^ self.seeds[i]);
        // Multiply-shift onto [0, nbuckets).
        ((h as u128 * self.buckets.len() as u128) >> 64) as usize
    }

    /// Whether `key` is stored (buckets or stash).
    pub fn contains(&self, key: u64) -> bool {
        (0..self.seeds.len()).any(|i| self.buckets[self.bucket_of(key, i)].contains(&key))
            || self.stash.contains(&key)
    }

    /// Number of keys currently parked in the overflow stash.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Inserts `key`, returning the number of evictions ("kicks")
    /// performed. On a duplicate nothing changes. When the kick budget
    /// runs out the key in hand (the last displaced one) is parked in
    /// the stash: the table remains lossless and consistent, and the
    /// error reports how much work was burned.
    pub fn insert<R: Rng64 + ?Sized>(&mut self, key: u64, rng: &mut R) -> Result<u64, InsertError> {
        if self.contains(key) {
            return Err(InsertError::DuplicateKey);
        }
        let d = self.seeds.len();
        let mut cur = key;
        let mut kicks = 0u64;
        loop {
            // Any candidate bucket with room?
            for i in 0..d {
                let b = self.bucket_of(cur, i);
                if self.buckets[b].len() < self.k {
                    self.buckets[b].push(cur);
                    self.len += 1;
                    return Ok(kicks);
                }
            }
            if kicks >= self.max_kicks {
                self.stash.push(cur);
                self.len += 1;
                return Err(InsertError::KickBudgetExhausted { kicks });
            }
            // All full: evict a random resident of a random candidate.
            let i = rng.range_usize(d);
            let b = self.bucket_of(cur, i);
            let slot = rng.range_usize(self.k);
            std::mem::swap(&mut self.buckets[b][slot], &mut cur);
            kicks += 1;
        }
    }

    /// Removes `key` if present; returns whether it was stored.
    pub fn remove(&mut self, key: u64) -> bool {
        for i in 0..self.seeds.len() {
            let b = self.bucket_of(key, i);
            if let Some(pos) = self.buckets[b].iter().position(|&x| x == key) {
                self.buckets[b].swap_remove(pos);
                self.len -= 1;
                return true;
            }
        }
        if let Some(pos) = self.stash.iter().position(|&x| x == key) {
            self.stash.swap_remove(pos);
            self.len -= 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bib_rng::SplitMix64;

    #[test]
    fn insert_contains_remove_round_trip() {
        let mut t = CuckooTable::new(64, 2, 2, 7);
        let mut rng = SplitMix64::new(1);
        for key in 0..50u64 {
            t.insert(key, &mut rng).expect("insert at low load");
        }
        assert_eq!(t.len(), 50);
        for key in 0..50u64 {
            assert!(t.contains(key), "missing {key}");
        }
        assert!(!t.contains(999));
        assert!(t.remove(25));
        assert!(!t.contains(25));
        assert!(!t.remove(25));
        assert_eq!(t.len(), 49);
    }

    #[test]
    fn duplicate_keys_rejected() {
        let mut t = CuckooTable::new(16, 2, 2, 3);
        let mut rng = SplitMix64::new(2);
        t.insert(42, &mut rng).unwrap();
        assert_eq!(t.insert(42, &mut rng), Err(InsertError::DuplicateKey));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn low_load_needs_no_kicks() {
        let mut t = CuckooTable::new(1024, 4, 2, 5);
        let mut rng = SplitMix64::new(3);
        let mut total_kicks = 0u64;
        for key in 0..1024u64 {
            // 25% load factor.
            total_kicks += t.insert(key, &mut rng).unwrap();
        }
        assert!(total_kicks < 64, "kicks {total_kicks} at 25% load");
    }

    #[test]
    fn kicks_explode_near_threshold() {
        // (d=2, k=1) threshold is 50% load. Compare kicks at 40% vs 49%.
        let nbuckets = 4096usize;
        let run_to = |frac: f64, seed: u64| -> u64 {
            let mut t = CuckooTable::new(nbuckets, 1, 2, seed).with_max_kicks(5_000);
            let mut rng = SplitMix64::new(seed);
            let target = (frac * nbuckets as f64) as u64;
            let mut kicks = 0u64;
            for key in 0..target {
                match t.insert(key, &mut rng) {
                    Ok(k) => kicks += k,
                    Err(InsertError::KickBudgetExhausted { kicks: k }) => kicks += k,
                    Err(InsertError::DuplicateKey) => unreachable!(),
                }
            }
            kicks
        };
        let low = run_to(0.40, 11);
        let high = run_to(0.49, 11);
        assert!(
            high > 2 * low.max(1),
            "kicks should blow up near threshold: 40%→{low}, 49%→{high}"
        );
    }

    #[test]
    fn load_factor_accounts_slots() {
        let mut t = CuckooTable::new(10, 2, 2, 9);
        let mut rng = SplitMix64::new(4);
        for key in 0..10u64 {
            t.insert(key, &mut rng).unwrap();
        }
        assert!((t.load_factor() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lookups_use_real_hashes_not_stored_state() {
        // A fresh table with the same seed must agree on bucket_of.
        let a = CuckooTable::new(128, 2, 3, 77);
        let b = CuckooTable::new(128, 2, 3, 77);
        for key in [1u64, 99, 12345] {
            for i in 0..3 {
                assert_eq!(a.bucket_of(key, i), b.bucket_of(key, i));
            }
        }
    }

    #[test]
    #[should_panic]
    fn one_choice_rejected() {
        CuckooTable::new(8, 1, 1, 0);
    }
}
