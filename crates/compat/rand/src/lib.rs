//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors the subset of the `rand 0.8` API that the cross-validation
//! tests in `bib-rng` consume: [`rngs::StdRng`], [`SeedableRng`], and
//! the [`Rng`] methods `gen_range` / `gen_bool`.
//!
//! To keep the cross-validation *meaningful*, `StdRng` is a from-scratch
//! ChaCha12 implementation (the same algorithm family real `rand 0.8`
//! uses for `StdRng`) — a completely different design from the
//! xoshiro/PCG/SplitMix generators under test in `bib-rng`, so
//! distributional agreement between the two stacks is evidence of
//! correctness, not shared code. Exact stream compatibility with
//! upstream `rand` is *not* provided (the tests only compare
//! distributions, never streams).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, as upstream does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 output function (Steele, Lea & Flood 2014).
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Core random-number interface, mirroring the used subset of
/// `rand::Rng` / `rand::RngCore`.
pub trait Rng {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) << 32 | self.next_u32() as u64
    }

    /// Uniform sample from `[range.start, range.end)` without modulo
    /// bias (Lemire's multiply-shift rejection method).
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = range.end - range.start;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut low = m as u64;
        if low < span {
            let t = span.wrapping_neg() % span;
            while low < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                low = m as u64;
            }
        }
        range.start + (m >> 64) as u64
    }

    /// Bernoulli trial returning `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

pub mod rngs {
    //! Concrete generators; only [`StdRng`] is provided.

    use super::{Rng, SeedableRng};

    /// The standard generator: ChaCha12, implemented from RFC 8439's
    /// description of the ChaCha round function with 12 rounds and a
    /// 64-bit block counter.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        /// ChaCha state template: constants, 256-bit key, counter, nonce.
        state: [u32; 16],
        /// Current keystream block.
        block: [u32; 16],
        /// Next unread word in `block`; 16 means "exhausted".
        index: usize,
    }

    impl StdRng {
        fn refill(&mut self) {
            let mut x = self.state;
            for _ in 0..6 {
                // Two rounds per loop iteration: one column, one diagonal.
                quarter(&mut x, 0, 4, 8, 12);
                quarter(&mut x, 1, 5, 9, 13);
                quarter(&mut x, 2, 6, 10, 14);
                quarter(&mut x, 3, 7, 11, 15);
                quarter(&mut x, 0, 5, 10, 15);
                quarter(&mut x, 1, 6, 11, 12);
                quarter(&mut x, 2, 7, 8, 13);
                quarter(&mut x, 3, 4, 9, 14);
            }
            for (b, (&xi, &si)) in self.block.iter_mut().zip(x.iter().zip(&self.state)) {
                *b = xi.wrapping_add(si);
            }
            // 64-bit counter in words 12..14.
            let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
            self.state[12] = counter as u32;
            self.state[13] = (counter >> 32) as u32;
            self.index = 0;
        }
    }

    #[inline]
    fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut state = [0u32; 16];
            // "expand 32-byte k"
            state[0] = 0x6170_7865;
            state[1] = 0x3320_646e;
            state[2] = 0x7962_2d32;
            state[3] = 0x6b20_6574;
            for i in 0..8 {
                state[4 + i] =
                    u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
            }
            // Counter and nonce start at zero.
            StdRng {
                state,
                block: [0; 16],
                index: 16,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= 16 {
                self.refill();
            }
            let w = self.block[self.index];
            self.index += 1;
            w
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn deterministic_and_seed_sensitive() {
            let mut a = StdRng::seed_from_u64(1);
            let mut b = StdRng::seed_from_u64(1);
            let mut c = StdRng::seed_from_u64(2);
            let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
            let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
            let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
            assert_eq!(va, vb);
            assert_ne!(va, vc);
        }

        #[test]
        fn chacha_rfc8439_block() {
            // RFC 8439 §2.3.2 test vector, adapted: run the permutation
            // with the RFC key/nonce/counter but 12 rounds is not covered
            // by the RFC, so instead verify the 20-round keystream by
            // temporarily doing 10 double-rounds here.
            let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
            let mut state = [0u32; 16];
            state[0] = 0x6170_7865;
            state[1] = 0x3320_646e;
            state[2] = 0x7962_2d32;
            state[3] = 0x6b20_6574;
            for i in 0..8 {
                state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
            }
            state[12] = 1;
            state[13] = 0x0900_0000;
            state[14] = 0x4a00_0000;
            state[15] = 0x0000_0000;
            let mut x = state;
            for _ in 0..10 {
                quarter(&mut x, 0, 4, 8, 12);
                quarter(&mut x, 1, 5, 9, 13);
                quarter(&mut x, 2, 6, 10, 14);
                quarter(&mut x, 3, 7, 11, 15);
                quarter(&mut x, 0, 5, 10, 15);
                quarter(&mut x, 1, 6, 11, 12);
                quarter(&mut x, 2, 7, 8, 13);
                quarter(&mut x, 3, 4, 9, 14);
            }
            let out: Vec<u32> = x
                .iter()
                .zip(&state)
                .map(|(a, s)| a.wrapping_add(*s))
                .collect();
            // First words of the RFC 8439 §2.3.2 expected block.
            assert_eq!(out[0], 0xe4e7_f110);
            assert_eq!(out[1], 0x1559_3bd1);
            assert_eq!(out[2], 0x1fdd_0f50);
            assert_eq!(out[3], 0xc471_20a3);
        }

        #[test]
        fn gen_range_bounds() {
            let mut rng = StdRng::seed_from_u64(42);
            for _ in 0..10_000 {
                let v = rng.gen_range(10..47);
                assert!((10..47).contains(&v));
            }
        }

        #[test]
        fn gen_bool_rate() {
            let mut rng = StdRng::seed_from_u64(7);
            let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
            assert!((23_000..27_000).contains(&hits), "got {hits}");
        }
    }
}
