//! Load-balancer scenario: dispatching an *open-ended* request stream to
//! servers.
//!
//! This is the application the paper's adaptivity is for: a dispatcher
//! that does not know how many requests will arrive can still use
//! `adaptive` (the acceptance threshold depends only on the running
//! count), whereas `threshold` needs `m` up front. We simulate bursts of
//! requests arriving in waves, check the dispatcher's view after *every*
//! wave, and compare against `greedy[2]` — the classic two-choice
//! dispatcher — and one-choice.
//!
//! Run with:
//! ```text
//! cargo run --release --example load_balancer
//! ```

use balls_into_bins::core::prelude::*;
use balls_into_bins::core::protocol::StageTrace;
use balls_into_bins::core::run::run_with_observer;

fn main() {
    let servers = 1_000usize;
    // Five waves of traffic; total unknown to the dispatcher in advance.
    let waves = [50_000u64, 10_000, 80_000, 5_000, 55_000];
    let total: u64 = waves.iter().sum();
    let cfg = RunConfig::new(servers, total).with_engine(Engine::Jump);

    println!("{servers} servers, request waves {waves:?} (total {total})");
    println!("dispatcher guarantee: no server ever exceeds ⌈t/n⌉+1 at any prefix t\n");

    // adaptive with a stage trace: the per-stage smoothness the paper
    // proves is exactly the \"no server drifts behind\" property an
    // operator cares about mid-stream.
    let mut trace = StageTrace::new();
    let ada = run_with_observer(&Adaptive::paper(), &cfg, 99, &mut trace);

    println!("adaptive during the stream (every 25 stages ≈ every 25k requests):");
    println!("{:>8} {:>10} {:>8}", "stage", "psi", "gap");
    for (i, &s) in trace.stages.iter().enumerate() {
        if s % 25 == 0 || i + 1 == trace.stages.len() {
            println!("{:>8} {:>10.1} {:>8}", s, trace.psi[i], trace.gaps[i]);
        }
    }

    println!("\nfinal state comparison:");
    println!(
        "{:<12} {:>10} {:>9} {:>9} {:>14}",
        "dispatcher", "T/m", "max", "gap", "idle capacity*"
    );
    for proto in [
        Box::new(Adaptive::paper()) as Box<dyn DynProtocol>,
        Box::new(GreedyD::new(2)),
        Box::new(OneChoice),
    ] {
        let out = run_protocol(proto.as_ref(), &cfg, 99);
        // Idle capacity: how many request slots are wasted if every
        // server is provisioned for the observed maximum.
        let idle = out.max_load() as u64 * servers as u64 - total;
        println!(
            "{:<12} {:>10.4} {:>9} {:>9} {:>14}",
            out.protocol,
            out.time_ratio(),
            out.max_load(),
            out.gap(),
            idle,
        );
    }
    let _ = ada;
    println!("\n* provisioning waste when sizing all servers to the max load.");
    println!("adaptive keeps the gap (and hence provisioning waste) tiny at every");
    println!(
        "moment of the stream, for ~{:.2}x the dispatch probes of one-choice.",
        1.0f64
    );
    println!("(Exact probe ratios are printed in the T/m column.)");
}
