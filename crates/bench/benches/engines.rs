//! Criterion: **E11 engine ablation** — the faithful retry loop, the
//! geometric-jump engine, the level-batched engine and the
//! occupancy-histogram engine, across load levels.
//!
//! The engines agree in distribution on final load vectors (see
//! `bib-core::sampler`, `bib-core::level_batched` and
//! `bib-core::histogram`); this bench quantifies the wall-clock
//! separation that justifies each fast path. The `engines/heavy` group
//! is the acceptance benchmark for the batched engines at
//! `n = 10⁴, m = n²` (Lemma 4.2's regime): `threshold` under
//! level-batching must beat the jump engine by ≥ 5×, and the histogram
//! engine gates the heavy `adaptive` speedup (≥ 20× over the faithful
//! loop's ~1.9 s on the reference machine) plus the first-ever feasible
//! `greedy[2]` run at this size. The `engines/parallel-heavy` group
//! gates the round-occupancy engine at `n = m = 10⁷` for the three
//! parallel round protocols.

use bib_core::prelude::*;
use bib_rng::SeedSequence;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

const ENGINES: [(&str, Engine); 4] = [
    ("faithful", Engine::Faithful),
    ("jump", Engine::Jump),
    ("level-batched", Engine::LevelBatched),
    ("histogram", Engine::Histogram),
];

/// Benches one concrete protocol so the whole allocation stack
/// monomorphizes — the configuration every experiment binary now runs.
fn bench_proto<P: Protocol>(
    group: &mut criterion::BenchmarkGroup<'_>,
    proto: P,
    label: &str,
    cfg: &RunConfig,
) {
    group.bench_with_input(BenchmarkId::new(proto.name(), label), cfg, |b, cfg| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SeedSequence::new(seed).rng();
            proto.allocate(cfg, &mut rng, &mut NullObserver)
        });
    });
}

fn bench_engines(c: &mut Criterion) {
    let n = 2048usize;
    for phi in [1u64, 16, 256] {
        let m = phi * n as u64;
        let mut group = c.benchmark_group(format!("engines/phi={phi}"));
        group.throughput(Throughput::Elements(m));
        for (label, engine) in ENGINES {
            let cfg = RunConfig::new(n, m).with_engine(engine);
            bench_proto(&mut group, Adaptive::paper(), label, &cfg);
            bench_proto(&mut group, Threshold, label, &cfg);
        }
        group.finish();
    }
}

fn bench_heavy(c: &mut Criterion) {
    // Acceptance regime: m = n². Debug builds (the `--test` smoke mode)
    // shrink n so the single smoke iteration stays fast; release
    // measurement uses the full size.
    #[cfg(debug_assertions)]
    let n = 512usize;
    #[cfg(not(debug_assertions))]
    let n = 10_000usize;
    let m = (n as u64) * (n as u64);
    let mut group = c.benchmark_group(format!("engines/heavy n={n} m=n^2"));
    group.throughput(Throughput::Elements(m));
    for (label, engine) in [
        ("jump", Engine::Jump),
        ("level-batched", Engine::LevelBatched),
        ("histogram", Engine::Histogram),
    ] {
        let cfg = RunConfig::new(n, m).with_engine(engine);
        group.bench_with_input(BenchmarkId::new("threshold", label), &cfg, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SeedSequence::new(seed).rng();
                Threshold.allocate(cfg, &mut rng, &mut NullObserver)
            });
        });
    }
    // The acceptance gate for the histogram engine: adaptive's heavy
    // run must stay ≥ 20× under the faithful loop's wall time (the
    // faithful baseline itself lives in BENCH_engines.json — at ~2 s a
    // criterion iteration it is too slow to re-bench on every run).
    let cfg = RunConfig::new(n, m).with_engine(Engine::Histogram);
    group.bench_with_input(BenchmarkId::new("adaptive", "histogram"), &cfg, |b, cfg| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SeedSequence::new(seed).rng();
            Adaptive::paper().allocate(cfg, &mut rng, &mut NullObserver)
        });
    });
    // First-ever feasible greedy[2] at m = n²: d-choice landing classes
    // straight off the histogram CDF.
    group.bench_with_input(
        BenchmarkId::new("greedy[2]", "histogram"),
        &cfg,
        |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SeedSequence::new(seed).rng();
                GreedyD::new(2).allocate(cfg, &mut rng, &mut NullObserver)
            });
        },
    );
    group.finish();
}

fn bench_weighted_heavy(c: &mut Criterion) {
    // The weight-class histogram engine's acceptance regime:
    // n = 10⁴, m = 10⁸ (the weighted analogue of the heavy gate; the
    // faithful per-ball baseline at ~2.5 s/run lives in
    // BENCH_engines.json). Debug smoke shrinks the size.
    #[cfg(debug_assertions)]
    let (n, m) = (512usize, (512 * 128) as u64);
    #[cfg(not(debug_assertions))]
    let (n, m) = (10_000usize, 100_000_000u64);
    let mut group = c.benchmark_group(format!("engines/weighted-heavy n={n}"));
    group.throughput(Throughput::Elements(m));
    let shapes: [(&str, Vec<f64>); 2] = [
        ("near-degenerate", {
            let mut w = vec![1.0f64; n];
            w[0] = 1e-6;
            w
        }),
        (
            "two-class",
            (0..n).map(|j| if j % 4 == 0 { 8.0 } else { 1.0 }).collect(),
        ),
    ];
    for (label, weights) in shapes {
        let proto = WeightedAdaptive::new(weights);
        let cfg = RunConfig::new(n, m).with_engine(Engine::Histogram);
        group.bench_with_input(
            BenchmarkId::new("weighted-adaptive", label),
            &cfg,
            |b, cfg| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = SeedSequence::new(seed).rng();
                    proto.allocate(cfg, &mut rng, &mut NullObserver)
                });
            },
        );
    }
    group.finish();
}

fn bench_parallel_heavy(c: &mut Criterion) {
    // The round-occupancy engine's acceptance regime: n = m = 10⁷
    // (the faithful per-contact baselines at 0.5–10 s/run live in
    // BENCH_engines.json). Debug smoke shrinks the size.
    #[cfg(debug_assertions)]
    let n = 1 << 14;
    #[cfg(not(debug_assertions))]
    let n = 10_000_000usize;
    let m = n as u64;
    let mut group = c.benchmark_group(format!("engines/parallel-heavy n=m={n}"));
    group.throughput(Throughput::Elements(m));
    let cfg = RunConfig::new(n, m).with_engine(Engine::Histogram);
    group.bench_with_input(
        BenchmarkId::new("collision(c=1)", "histogram"),
        &cfg,
        |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SeedSequence::new(seed).rng();
                bib_parallel::protocols::Collision::new(1).allocate(
                    cfg,
                    &mut rng,
                    &mut NullObserver,
                )
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("bounded-load(cap=2)", "histogram"),
        &cfg,
        |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SeedSequence::new(seed).rng();
                bib_parallel::protocols::BoundedLoad::new(2).allocate(
                    cfg,
                    &mut rng,
                    &mut NullObserver,
                )
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("parallel-greedy[2]", "histogram"),
        &cfg,
        |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SeedSequence::new(seed).rng();
                bib_parallel::protocols::ParallelGreedy::new(2, 4, 1).allocate(
                    cfg,
                    &mut rng,
                    &mut NullObserver,
                )
            });
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_engines, bench_heavy, bench_weighted_heavy, bench_parallel_heavy
}
criterion_main!(benches);
