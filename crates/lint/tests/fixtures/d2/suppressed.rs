//! D2 suppressed fixture.
// lint:allow(D2): counts are re-sorted before anything reads them
use std::collections::HashMap;

pub fn tally(keys: &[u32]) -> Vec<(u32, u32)> {
    // lint:allow(D2): counts are sorted below before anything reads them
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
    }
    let mut out: Vec<_> = counts.into_iter().collect();
    out.sort_unstable();
    out
}
