//! The `(d, k)`-memory protocol of Mitzenmacher, Prabhakar & Shah [14].
//!
//! Each ball samples `d` fresh uniform bins and inherits `k` *remembered*
//! bins — the least-loaded candidates left over from the previous ball.
//! It joins the least loaded of the `d + k`, and the `k` least-loaded
//! candidates (post-placement) are remembered for the next ball. With
//! `d = k = 1` and `m = n` the maximum load is
//! `ln ln n / (2 ln Φ₂) + O(1)` — matching Vöcking's lower bound while
//! sampling only one fresh bin per ball, i.e. Θ(m) allocation time.
//!
//! The paper cites this model when noting that `adaptive`'s requirement
//! of knowing the running ball count "is comparable to the (d,k)-memory
//! model, where every ball communicates with the ball that comes right
//! after it".

use crate::protocol::{drive_sequential, Observer, Outcome, Protocol, RunConfig};
use bib_rng::{Rng64, RngExt};

/// The `(d, k)`-memory protocol.
#[derive(Debug, Clone, Copy)]
pub struct Memory {
    d: u32,
    k: u32,
}

impl Memory {
    /// `d` fresh choices, `k` remembered bins; panics unless both ≥ 1.
    pub fn new(d: u32, k: u32) -> Self {
        assert!(d >= 1, "memory(d,k) needs d ≥ 1");
        assert!(k >= 1, "memory(d,k) needs k ≥ 1");
        Self { d, k }
    }

    /// Fresh choices per ball.
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Remembered bins carried between balls.
    pub fn k(&self) -> u32 {
        self.k
    }
}

impl Protocol for Memory {
    fn name(&self) -> String {
        format!("memory({},{})", self.d, self.k)
    }

    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        let d = self.d as usize;
        let k = self.k as usize;
        // The memory cache persists across balls; both buffers are
        // allocated once here and reused for every ball.
        let mut cache: Vec<usize> = Vec::with_capacity(k);
        let mut candidates: Vec<usize> = Vec::with_capacity(d + k);
        drive_sequential(self.name(), cfg, rng, obs, move |bins, _ball, rng| {
            let n = bins.n();
            candidates.clear();
            for _ in 0..d {
                candidates.push(rng.range_usize(n));
            }
            candidates.extend(cache.iter().copied());

            // Place into the least loaded candidate, random tie-break.
            let mut best = candidates[0];
            let mut best_load = bins.load(best);
            let mut ties = 1u64;
            for &c in &candidates[1..] {
                let l = bins.load(c);
                if l < best_load {
                    best = c;
                    best_load = l;
                    ties = 1;
                } else if l == best_load {
                    ties += 1;
                    if rng.range_u64(ties) == 0 {
                        best = c;
                    }
                }
            }
            bins.place(best);

            // Remember the k least-loaded distinct candidates
            // (post-placement loads, ties to the smaller bin index).
            // Dedup and sort in place: a stable library sort here would
            // allocate its merge buffer on every ball.
            let mut distinct = 0usize;
            for i in 0..candidates.len() {
                let c = candidates[i];
                if !candidates[..distinct].contains(&c) {
                    candidates[distinct] = c;
                    distinct += 1;
                }
            }
            candidates.truncate(distinct);
            for i in 1..candidates.len() {
                let mut j = i;
                while j > 0 {
                    let (a, b) = (candidates[j - 1], candidates[j]);
                    if (bins.load(b), b) < (bins.load(a), a) {
                        candidates.swap(j - 1, j);
                        j -= 1;
                    } else {
                        break;
                    }
                }
            }
            cache.clear();
            cache.extend(candidates.iter().take(k).copied());

            (best, d as u64)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::NullObserver;
    use crate::protocols::{GreedyD, OneChoice};
    use bib_rng::SplitMix64;

    #[test]
    fn allocation_time_counts_only_fresh_samples() {
        let cfg = RunConfig::new(16, 160);
        let mut rng = SplitMix64::new(1);
        let out = Memory::new(1, 1).allocate(&cfg, &mut rng, &mut NullObserver);
        out.validate();
        assert_eq!(out.total_samples, 160); // d = 1 fresh sample per ball
    }

    #[test]
    fn memory_beats_one_choice_with_same_sample_budget() {
        // The [14] headline: with Θ(m) samples, memory(1,1) achieves a
        // doubly-logarithmic max load while one-choice is logarithmic.
        let n = 4096usize;
        let cfg = RunConfig::new(n, n as u64);
        let mut rng = SplitMix64::new(2);
        let one = OneChoice.allocate(&cfg, &mut rng, &mut NullObserver);
        let mem = Memory::new(1, 1).allocate(&cfg, &mut rng, &mut NullObserver);
        assert_eq!(mem.total_samples, one.total_samples);
        assert!(
            mem.max_load() < one.max_load(),
            "memory max {} !< one-choice max {}",
            mem.max_load(),
            one.max_load()
        );
    }

    #[test]
    fn memory_competitive_with_greedy2_at_half_the_samples() {
        let n = 4096usize;
        let cfg = RunConfig::new(n, n as u64);
        let mut rng = SplitMix64::new(3);
        let mem = Memory::new(1, 1).allocate(&cfg, &mut rng, &mut NullObserver);
        let g2 = GreedyD::new(2).allocate(&cfg, &mut rng, &mut NullObserver);
        assert_eq!(mem.total_samples * 2, g2.total_samples);
        // [14] proves memory(1,1) is asymptotically *better* than
        // greedy[2]; at finite n allow equality plus one.
        assert!(mem.max_load() <= g2.max_load() + 1);
    }

    #[test]
    fn larger_memory_does_not_hurt() {
        let n = 1024usize;
        let cfg = RunConfig::new(n, 8 * n as u64);
        let mut rng = SplitMix64::new(4);
        let m11 = Memory::new(1, 1).allocate(&cfg, &mut rng, &mut NullObserver);
        let m22 = Memory::new(2, 2).allocate(&cfg, &mut rng, &mut NullObserver);
        m11.validate();
        m22.validate();
        assert!(m22.max_load() <= m11.max_load() + 1);
    }

    #[test]
    #[should_panic]
    fn zero_memory_rejected() {
        Memory::new(1, 0);
    }
}
