//! **E9 — parallel allocation rounds** (Table 1 context: Lenzen &
//! Wattenhofer \[12\], Adler et al. \[1\]).
//!
//! Sweeps `n` (with `m = n`) and reports mean rounds, messages per ball
//! and max load for the bounded-load (cap 2) and collision (c = 1)
//! protocols, next to `log*₂(n)` — the round complexity the paper quotes
//! for \[12\].
//!
//! Since the scenario-layer unification the round protocols are plain
//! [`Protocol`](bib_core::protocol::Protocol)s, so the sweep replicates
//! them through the same parallel machinery
//! ([`replicate_outcomes`](bib_parallel::replicate_outcomes)) as every
//! sequential experiment, honouring `--threads` — and, since the
//! round-occupancy engine, `--engine` (default `faithful`; `histogram`
//! or `auto` run the batched rounds, which makes the full sweep's
//! largest sizes near-instant).
//!
//! With `--reps 1`, `--threads <n>` moves *inside* the run: the sweep
//! routes into the sharded concurrent single-run engine
//! (`--engine concurrent`, or `auto` promoted by the thread count),
//! deterministic by default, contention-ordered with `--racy`. The
//! header names the path taken.
//!
//! ```text
//! cargo run --release -p bib-bench --bin parallel_rounds \
//!     [-- --quick --csv --threads <n> --racy \
//!      --engine <faithful|histogram|auto|concurrent>]
//! ```

use bib_bench::{f, ExpArgs, Table};
use bib_core::prelude::*;
use bib_parallel::protocols::{log_star, BoundedLoad, Collision, ParallelGreedy};
use bib_parallel::replicate::summarize_metric;
use bib_parallel::replicate_outcomes;

fn main() {
    let args = ExpArgs::parse();
    let exps: Vec<u32> = args.pick(vec![8, 10, 12, 14, 16, 18, 20], vec![8, 10, 12]);
    let reps = args.reps_or(10, 3);

    println!("# Parallel protocols at m = n; {reps} reps");
    println!("{}\n", args.round_path_header(reps, Engine::Faithful));
    let mut table = Table::new(vec![
        "scenario",
        "n",
        "log*",
        "bl_rounds",
        "bl_msg/ball",
        "bl_max",
        "col_rounds",
        "col_msg/ball",
        "col_max",
        "pg_r1_max",
        "pg_r4_max",
    ]);

    for &e in &exps {
        let n = 1usize << e;
        let cfg = args.round_run_config(n, n as u64, reps, Engine::Faithful);
        let spec = args.replicate_spec(reps);
        let bl = replicate_outcomes(&BoundedLoad::new(2), &cfg, &spec);
        let co = replicate_outcomes(&Collision::new(1), &cfg, &spec);
        let g1 = replicate_outcomes(&ParallelGreedy::new(2, 1, 1), &cfg, &spec);
        let g4 = replicate_outcomes(&ParallelGreedy::new(2, 4, 1), &cfg, &spec);
        let scenario = bl[0].scenario.label();
        table.row(vec![
            scenario.to_string(),
            n.to_string(),
            log_star(n as f64).to_string(),
            f(summarize_metric(&bl, |o| o.rounds() as f64).mean),
            f(summarize_metric(&bl, |o| o.messages_per_ball()).mean),
            f(summarize_metric(&bl, |o| o.max_load() as f64).mean),
            f(summarize_metric(&co, |o| o.rounds() as f64).mean),
            f(summarize_metric(&co, |o| o.messages_per_ball()).mean),
            f(summarize_metric(&co, |o| o.max_load() as f64).mean),
            f(summarize_metric(&g1, |o| o.max_load() as f64).mean),
            f(summarize_metric(&g4, |o| o.max_load() as f64).mean),
        ]);
    }

    table.print(&args);
    println!("\n# Expected shape: bl_rounds grows like log* (very slowly), bl_max <= 2 always,");
    println!("# messages O(1) per ball; collision finishes in log log-ish rounds with");
    println!(
        "# a larger (but still small) max load. parallel-greedy (d=2, [1]): extra
# negotiation rounds shave the max load (pg_r4 <= pg_r1)."
    );
}
