//! Deterministic PRNG and sampling substrate for the balls-into-bins
//! reproduction.
//!
//! Every allocation protocol in the paper consumes a stream of uniform
//! random bin choices; the experiments average over 100 independent
//! simulations. This crate provides:
//!
//! * fast, well-studied generators ([`SplitMix64`], [`Xoshiro256PlusPlus`],
//!   [`Xoshiro256StarStar`], [`Pcg32`]) implemented from their reference
//!   algorithms,
//! * a [`seed::SeedSequence`] for deriving arbitrarily many decorrelated
//!   per-replicate / per-stream seeds from one master seed, so parallel
//!   replication is reproducible regardless of thread count,
//! * unbiased integer-range sampling (Lemire's method) and a toolbox of
//!   distributions ([`dist`]): Bernoulli, geometric, exponential, Poisson,
//!   binomial, Zipf and Walker/Vose alias tables.
//!
//! The design goal is *determinism first*: all generators are plain
//! `Clone + Eq` state machines, seeds are explicit, and nothing here reads
//! the OS entropy pool. The `rand` crate appears only as a
//! dev-dependency, for cross-validation tests.
//!
//! # Quick example
//!
//! ```
//! use bib_rng::{RngExt, Xoshiro256PlusPlus};
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
//! let bin = rng.range_u64(1000);     // uniform in [0, 1000)
//! assert!(bin < 1000);
//! let p = rng.next_f64();            // uniform in [0, 1)
//! assert!((0.0..1.0).contains(&p));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod pcg;
pub mod seed;
pub mod splitmix;
pub mod xoshiro;

pub use pcg::Pcg32;
pub use seed::SeedSequence;
pub use splitmix::SplitMix64;
pub use xoshiro::{Xoshiro256PlusPlus, Xoshiro256StarStar};

/// A source of 64 random bits per call.
///
/// Object-safe on purpose: the protocol harness in `bib-core` passes
/// `&mut dyn Rng64` so that protocols, observers and engines do not need
/// to be generic over the generator. All derived sampling functionality
/// lives in the [`RngExt`] extension trait, which is implemented for
/// every `Rng64` including trait objects.
pub trait Rng64 {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng64 + ?Sized> Rng64 for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Derived sampling methods available on every [`Rng64`].
pub trait RngExt: Rng64 {
    /// Next 32 uniformly distributed bits (upper half of a 64-bit draw,
    /// which is the higher-quality half for xoshiro-family generators).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53 high bits scaled by 2^-53; the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` using Lemire's multiply-shift method
    /// with rejection — exactly uniform, no modulo bias.
    ///
    /// Panics if `n == 0`.
    #[inline]
    fn range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range_u64: empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            // Rejection threshold: 2^64 mod n.
            let t = n.wrapping_neg() % n;
            while low < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, n)`; see [`RngExt::range_u64`].
    #[inline]
    fn range_usize(&mut self, n: usize) -> usize {
        self.range_u64(n as u64) as usize
    }

    /// Bernoulli trial returning `true` with probability `p`.
    ///
    /// `p` outside `[0, 1]` is clamped (so `bernoulli(1.5)` is always
    /// true), matching the forgiving behaviour protocols want when
    /// probabilities come from floating-point arithmetic.
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }

    /// Uniformly chooses one element of a non-empty slice.
    #[inline]
    fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose: empty slice");
        &items[self.range_usize(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` by Floyd's algorithm,
    /// returned in the (random) order generated.
    ///
    /// Panics if `k > n`.
    fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_distinct: k={k} > n={n}");
        let mut out: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.range_usize(j + 1);
            if out.contains(&t) {
                out.push(j);
            } else {
                out.push(t);
            }
        }
        out
    }
}

impl<R: Rng64 + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_u64_bounds_and_coverage() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.range_u64(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_u64_n_one_is_constant_zero() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..10 {
            assert_eq!(rng.range_u64(1), 0);
        }
    }

    #[test]
    #[should_panic]
    fn range_u64_zero_panics() {
        SplitMix64::new(0).range_u64(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SplitMix64::new(5);
        assert!(rng.bernoulli(1.0));
        assert!(rng.bernoulli(2.0));
        assert!(!rng.bernoulli(0.0));
        assert!(!rng.bernoulli(-1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = SplitMix64::new(13);
        for _ in 0..50 {
            let s = rng.sample_distinct(20, 8);
            assert_eq!(s.len(), 8);
            let mut t = s.clone();
            t.sort_unstable();
            t.dedup();
            assert_eq!(t.len(), 8, "duplicates in {s:?}");
            assert!(s.iter().all(|&x| x < 20));
        }
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut rng = SplitMix64::new(17);
        let mut s = rng.sample_distinct(5, 5);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dyn_rng_works_through_trait_object() {
        let mut rng = SplitMix64::new(23);
        let dyn_rng: &mut dyn Rng64 = &mut rng;
        let v = dyn_rng.range_u64(10);
        assert!(v < 10);
    }
}
