//! **Extensions ablation**: batched (stale-count) adaptive and weighted
//! (heterogeneous-bin) adaptive.
//!
//! Neither is claimed by the paper; both probe how robust its guarantees
//! are when the model's idealisations are relaxed:
//!
//! * **staleness** — adaptive needs the running ball count; how much
//!   allocation time does it cost to synchronise that count only every
//!   `b` balls? (Max load is provably unaffected for `b ≤ n`.)
//! * **heterogeneity** — bins with unequal weights, sampled
//!   proportionally; the per-bin guarantee becomes
//!   `load_j ≤ ⌈m·w_j/W⌉ + 1`.
//!
//! ```text
//! cargo run --release -p bib-bench --bin extensions [-- --quick --csv]
//! ```

use bib_analysis::Welford;
use bib_bench::{f, ExpArgs, Table};
use bib_core::prelude::*;
use bib_core::run::{replicate_seed, run_protocol};

fn main() {
    let args = ExpArgs::parse();
    let n = args.pick(4_096usize, 512usize);
    let phi = 16u64;
    let m = phi * n as u64;
    let reps = args.reps_or(20, 5);

    // --- staleness sweep -------------------------------------------------
    println!("# Extension A: batched adaptive (count synchronised every b balls); n = {n}, phi = {phi}, {reps} reps\n");
    let mut table = Table::new(vec!["batch", "time/m", "gap", "max_excess"]);
    let batches: Vec<u64> = vec![1, 16, 256, n as u64 / 4, n as u64];
    for &b in &batches {
        let cfg = RunConfig::new(n, m).with_engine(args.engine_or(Engine::Jump));
        let proto = BatchedAdaptive::new(b);
        let mut time = Welford::new();
        let mut gap = Welford::new();
        let mut exc = Welford::new();
        for rep in 0..reps {
            let out = run_protocol(&proto, &cfg, replicate_seed(args.seed, &proto.name(), rep));
            time.push(out.time_ratio());
            gap.push(out.gap() as f64);
            exc.push(out.max_load() as f64 - phi as f64);
        }
        table.row(vec![
            b.to_string(),
            f(time.mean()),
            f(gap.mean()),
            f(exc.mean()),
        ]);
    }
    table.print(&args);
    println!("\n# Expected: time/m rises mildly with b; max_excess stays <= 1 for ALL b.\n");

    // --- heterogeneity sweep ---------------------------------------------
    // The weighted family is an ordinary Protocol since the scenario
    // unification: the sweep goes through `run_protocol` (seed
    // discipline included) with the engine resolved per cell by
    // `Engine::Auto` — the weight-class histogram engine at these sizes.
    println!(
        "# Extension B: weighted adaptive vs weighted one-choice; n = {n}, m = {m}, {reps} reps\n"
    );
    let mut table = Table::new(vec![
        "scenario",
        "skew",
        "ada_time/m",
        "ada_max_over",
        "ada_wpsi",
        "one_max_over",
        "one_wpsi",
    ]);
    // Skew s: weights 1..s interleaved.
    for &skew in args.pick(&[1u32, 2, 8, 32][..], &[1u32, 8][..]) {
        let weights: Vec<f64> = (0..n).map(|j| 1.0 + (j as u32 % skew) as f64).collect();
        let ada = WeightedAdaptive::new(weights.clone());
        let one = WeightedOneChoice::new(weights);
        let cfg = RunConfig::new(n, m).with_engine(args.engine_or(Engine::Auto));
        let mut a_time = Welford::new();
        let mut a_over = Welford::new();
        let mut a_psi = Welford::new();
        let mut o_over = Welford::new();
        let mut o_psi = Welford::new();
        for rep in 0..reps {
            let oa = run_protocol(&ada, &cfg, replicate_seed(args.seed, &ada.name(), rep));
            a_time.push(oa.time_ratio());
            a_over.push(oa.max_overload());
            a_psi.push(oa.weighted_psi());
            let oo = run_protocol(&one, &cfg, replicate_seed(args.seed, &one.name(), rep));
            o_over.push(oo.max_overload());
            o_psi.push(oo.weighted_psi());
        }
        table.row(vec![
            "weighted".to_string(),
            skew.to_string(),
            f(a_time.mean()),
            f(a_over.mean()),
            f(a_psi.mean()),
            f(o_over.mean()),
            f(o_psi.mean()),
        ]);
    }
    table.print(&args);
    println!("\n# Expected: weighted adaptive holds max overload <= 2 at every skew while");
    println!("# one-choice's overload and weighted psi blow up; adaptive's time/m grows");
    println!("# only mildly with skew.\n");

    // --- threshold slack sweep -------------------------------------------
    println!("# Extension C: threshold with slack s (accept load < m/n + s); n = {n}, phi = {phi}, {reps} reps\n");
    let mut table = Table::new(vec!["slack", "time/m", "excess_vs_m", "max_load", "gap"]);
    for &s in args.pick(&[1u32, 2, 4, 8][..], &[1u32, 4][..]) {
        let cfg = RunConfig::new(n, m).with_engine(args.engine_or(Engine::Jump));
        let proto = bib_core::protocols::ThresholdSlack::new(s);
        let mut time = Welford::new();
        let mut exc = Welford::new();
        let mut maxl = Welford::new();
        let mut gap = Welford::new();
        for rep in 0..reps {
            let out = run_protocol(&proto, &cfg, replicate_seed(args.seed, &proto.name(), rep));
            time.push(out.time_ratio());
            exc.push(out.excess_samples() as f64 / m as f64);
            maxl.push(out.max_load() as f64);
            gap.push(out.gap() as f64);
        }
        table.row(vec![
            s.to_string(),
            f(time.mean()),
            f(exc.mean()),
            f(maxl.mean()),
            f(gap.mean()),
        ]);
    }
    table.print(&args);
    println!("\n# Expected: each extra unit of slack shrinks the retry excess sharply");
    println!("# (more accepting bins near the end) while max load rises by ~1 per unit —");
    println!("# the time/quality dial the paper's +1 choice sits at one end of.");
}
