//! A minimal self-scheduling parallel map over indexed tasks.
//!
//! `par_map(count, threads, f)` evaluates `f(0), …, f(count−1)` on up to
//! `threads` scoped OS threads and returns the results **in index
//! order**. Work is claimed through one shared atomic counter
//! (self-scheduling), which is optimal for the near-equal-cost tasks the
//! experiment harness produces; results travel back through a crossbeam
//! channel and are reassembled by index, so no `unsafe`, no locks on the
//! hot path, and no output-order dependence on scheduling.

use crossbeam::channel;
use std::num::NonZeroUsize;
// ORDERING: the one atomic here is a work-claim ticket counter; all
// result data flows through the channel, whose send/recv pair carries
// the happens-before edge. See the comments at the use sites.
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default: the machine's available
/// parallelism, or 1 if it cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Evaluates `f` at every index in `0..count` using at most `threads`
/// worker threads, returning results in index order.
///
/// `f` must be `Sync` (shared across workers) and the result `Send`.
/// With `threads <= 1` or `count <= 1` everything runs inline on the
/// caller's thread — handy for debugging and for exact sequential
/// baselines.
///
/// Panics in `f` propagate: the scope joins all workers and re-raises.
///
/// # Examples
///
/// ```
/// use bib_parallel::par_map;
/// let squares = par_map(5, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]); // index order, any threads
/// ```
pub fn par_map<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let workers = threads.max(1).min(count);
    if workers == 1 {
        return (0..count).map(&f).collect();
    }

    // ORDERING: `next` hands out task indices; uniqueness is all that
    // matters, not ordering against other memory, so Relaxed suffices.
    let next = AtomicUsize::new(0);
    let (tx, rx) = channel::bounded::<(usize, T)>(count);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                loop {
                    // ORDERING: Relaxed fetch_add — each worker needs a
                    // unique ticket; the result itself synchronises via
                    // the channel send below.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    // A send can only fail if the receiver dropped, which
                    // cannot happen while the scope is alive.
                    tx.send((i, f(i))).expect("result channel closed early");
                }
            });
        }
        drop(tx);
    });

    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for (i, v) in rx {
        debug_assert!(slots[i].is_none(), "duplicate result for task {i}");
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("missing result for task {i}")))
        .collect()
}

/// Like [`par_map`] but folds the ordered results with `fold` starting
/// from `init` — a convenience for accumulating summaries.
pub fn par_map_reduce<T, A, F, G>(count: usize, threads: usize, f: F, init: A, mut fold: G) -> A
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    G: FnMut(A, T) -> A,
{
    par_map(count, threads, f)
        .into_iter()
        .fold(init, fold_adapter(&mut fold))
}

fn fold_adapter<A, T>(g: &mut impl FnMut(A, T) -> A) -> impl FnMut(A, T) -> A + '_ {
    move |a, t| g(a, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    // ORDERING: tests only count events with a Relaxed counter; the
    // scope join provides the final happens-before for the assert.
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_in_index_order() {
        let out = par_map(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        assert!(par_map(0, 8, |i| i).is_empty());
        assert_eq!(par_map(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn single_thread_is_inline() {
        let out = par_map(10, 1, |i| i);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        // ORDERING: Relaxed is enough — par_map joins its scope before
        // returning, which orders every increment before the load.
        let counter = AtomicUsize::new(0);
        let out = par_map(500, 4, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        // ORDERING: reads after the scope join; Relaxed cannot miss.
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // Tasks are pure functions of the index, so any thread count must
        // produce identical output — the property the replication harness
        // depends on.
        let f = |i: usize| {
            // A small deterministic computation.
            let mut x = i as u64 + 1;
            for _ in 0..10 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            x
        };
        let a = par_map(64, 1, f);
        let b = par_map(64, 3, f);
        let c = par_map(64, 16, f);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn unbalanced_work_self_schedules() {
        // Regression guard for the self-scheduling claim: task 0 blocks
        // until every other task has finished. Under static chunking
        // (worker 0 owns tasks 0..count/2) the tasks stuck behind task 0
        // would never run and this would deadlock; under ticket
        // self-scheduling the other worker drains every remaining task
        // while task 0 waits, so it completes promptly. The spin is
        // capped so a scheduling regression fails loudly instead of
        // hanging the suite.
        const COUNT: usize = 64;
        // ORDERING: Relaxed — the counter is only a progress tally;
        // task 0 needs no data published by the other tasks.
        let finished = AtomicUsize::new(0);
        let out = par_map(COUNT, 2, |i| {
            if i == 0 {
                let mut spins = 0u64;
                // ORDERING: Relaxed — progress tally only.
                while finished.load(Ordering::Relaxed) < COUNT - 1 {
                    std::thread::yield_now();
                    spins += 1;
                    assert!(
                        spins < 10_000_000,
                        "task 0 starved: tasks are not self-scheduled"
                    );
                }
            } else {
                // ORDERING: Relaxed — progress tally only.
                finished.fetch_add(1, Ordering::Relaxed);
            }
            i
        });
        assert_eq!(out, (0..COUNT).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_tasks() {
        let out = par_map(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn map_reduce_sums() {
        let total = par_map_reduce(100, 4, |i| i as u64, 0u64, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn available_threads_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        par_map(8, 4, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
