//! Cross-crate integration tests: the hard invariants every protocol
//! must satisfy on every run, across engines and configurations.

use balls_into_bins::core::prelude::*;
use balls_into_bins::core::protocols::table1_suite;

/// Configurations chosen to hit edge shapes: m < n, m = n, m ≫ n,
/// non-divisible m/n, tiny n.
fn configs() -> Vec<RunConfig> {
    vec![
        RunConfig::new(64, 16),
        RunConfig::new(64, 64),
        RunConfig::new(64, 64 * 32),
        RunConfig::new(7, 23),
        RunConfig::new(2, 1000),
        RunConfig::new(1, 17),
    ]
}

#[test]
fn mass_is_conserved_for_every_protocol_and_config() {
    for cfg in configs() {
        for proto in table1_suite() {
            if proto.name().starts_with("left[2]") && cfg.n < 2 {
                continue; // left[2] requires n ≥ 2 groups
            }
            let out = run_protocol(proto.as_ref(), &cfg, 1);
            out.validate(); // checks Σ loads = m and samples ≥ m
        }
    }
}

#[test]
fn paper_protocols_never_violate_max_load_bound() {
    // The defining property: max load ≤ ⌈m/n⌉ + 1 on EVERY run.
    for cfg in configs() {
        for engine in [Engine::Faithful, Engine::Jump] {
            let cfg = cfg.with_engine(engine);
            for seed in 0..10u64 {
                let a = run_protocol(&Adaptive::paper(), &cfg, seed);
                assert!(
                    a.max_load() as u64 <= cfg.max_load_bound(),
                    "adaptive n={} m={} seed={seed} {engine:?}",
                    cfg.n,
                    cfg.m
                );
                let t = run_protocol(&Threshold, &cfg, seed);
                assert!(
                    t.max_load() as u64 <= cfg.max_load_bound(),
                    "threshold n={} m={} seed={seed} {engine:?}",
                    cfg.n,
                    cfg.m
                );
            }
        }
    }
}

#[test]
fn engines_produce_identically_shaped_results() {
    // Not bit-identical (different random consumption), but the key
    // statistics must agree within noise across engines at equal sizes.
    let n = 512usize;
    let m = 16 * n as u64;
    let reps = 30u64;
    let mut ratios = [0.0f64; 2];
    let mut max_ok = [true; 2];
    for (i, engine) in [Engine::Faithful, Engine::Jump].into_iter().enumerate() {
        let cfg = RunConfig::new(n, m).with_engine(engine);
        let outs = run_replicates(&Threshold, &cfg, 77, reps);
        ratios[i] = outs.iter().map(|o| o.time_ratio()).sum::<f64>() / reps as f64;
        max_ok[i] = outs
            .iter()
            .all(|o| o.max_load() as u64 <= cfg.max_load_bound());
    }
    assert!(max_ok[0] && max_ok[1]);
    assert!(
        (ratios[0] - ratios[1]).abs() < 0.05,
        "naive {} vs jump {}",
        ratios[0],
        ratios[1]
    );
}

#[test]
fn adaptive_does_not_need_m_in_advance() {
    // Operational meaning of adaptivity: running adaptive for m balls and
    // then CONTINUING for another m' balls must be the same process as
    // running it for m + m' balls — the protocol never consults m.
    // We verify via the prefix property on the acceptance bound and by
    // checking a long run's prefix obeys the bound at every prefix.
    let n = 128usize;
    let a = Adaptive::paper();
    for ball in 1..=(10 * n as u64) {
        let t = a.acceptance_bound(n, ball);
        // The bound for ball i depends only on i and n.
        assert_eq!(t as u64, (ball + n as u64).div_ceil(n as u64));
    }
}

#[test]
fn threshold_depends_on_m_adaptive_does_not() {
    use balls_into_bins::core::protocols::Threshold as Thr;
    // threshold's acceptance bound changes with m; adaptive's per-ball
    // bound does not.
    assert_ne!(
        Thr::acceptance_bound(100, 100),
        Thr::acceptance_bound(100, 10_000)
    );
    let a = Adaptive::paper();
    assert_eq!(a.acceptance_bound(100, 5), a.acceptance_bound(100, 5));
}

#[test]
fn outcome_metrics_are_internally_consistent() {
    let cfg = RunConfig::new(100, 1000).with_engine(Engine::Jump);
    let out = run_protocol(&Adaptive::paper(), &cfg, 3);
    assert_eq!(out.total_balls(), 1000);
    assert!(out.gap() == out.max_load() - out.min_load());
    assert!(out.psi() >= 0.0);
    assert!(out.phi() > 0.0);
    assert!(out.time_ratio() >= 1.0);
    assert_eq!(out.excess_samples(), out.total_samples - 1000);
}
