//! **E12 — scenario/engine perf matrix** → `BENCH_engines.json`.
//!
//! Runs the uniform protocols (`threshold`, `adaptive`) under every
//! engine (plus `auto`) at fixed sizes, `one-choice` and `greedy[2]`
//! under their histogram fast path at the heavy size, the *weighted*
//! family (faithful vs weight-class histogram engine, several weight
//! shapes) and the *parallel round* protocols (faithful per-contact
//! rounds vs the round-occupancy engine at `n = m = 10⁷`) — one row per
//! cell, each tagged with its `scenario`
//! (`uniform` | `weighted` | `parallel` | `stream`), and writes a
//! machine-readable JSON record (schema v6) so the perf trajectory is
//! tracked in-repo.
//! The parallel family additionally runs the sharded concurrent
//! single-run engine at 1, 2 and 8 worker threads (deterministic mode)
//! — each row carries `threads`, the worker count *inside* the run.
//! Each row carries `loads_materialized`: whether the outcome ever
//! built its dense per-bin vector, plus the serve-mode degradation
//! ledger `shed_rate`/`alive_frac` (0.0/1.0 for every batch row).
//! Serve-mode (`scenario = stream`) rows run the churn + fault-plan
//! driver — the serial reference at 1 thread and the dense sharded
//! concurrent engine at 2 and 8 threads — with a mid-run mass failure
//! and recovery, so the matrix tracks the sustained-throughput story,
//! not just the batch one. Full (non-smoke) runs add the
//! giant-n histogram-only rows — adaptive and collision at `n = 10⁸`
//! and `10⁹` — which are only possible because the lazy outcome keeps
//! memory independent of `n`. The committed `BENCH_engines.json` at
//! the repo root is a full run on the reference machine; CI re-runs
//! `--quick` to catch engine regressions that break the run itself.
//!
//! The matrix cells are measured in parallel over
//! [`bib_parallel::par_map`] worker threads (one cell per task — cells
//! are independent runs), and the host context that wall-clock numbers
//! depend on (worker threads, rustc version) is recorded in the JSON
//! header. Parallel cells contend for cores, so the *committed*
//! `BENCH_engines.json` — the artifact the `Engine::Auto` cutoffs are
//! calibrated against — must come from a serial run (`--threads 1`, or
//! a single-core host as recorded in `host.threads`).
//!
//! ```text
//! cargo run --release -p bib-bench --bin bench_json \
//!     [-- --quick --out PATH --seed <u64> --threads <n>]
//! ```

use bib_bench::ExpArgs;
use bib_core::prelude::*;
use bib_core::run::run_protocol;
use bib_core::stream::stream_name;
use bib_parallel::protocols::{BoundedLoad, Collision, ParallelGreedy};
use bib_parallel::{available_threads, par_map, serve_concurrent};
use std::fmt::Write as _;
use std::time::Instant;

/// What a matrix cell runs: a one-shot batch protocol, or a serve-mode
/// stream (churn + fault plan) under a placement family.
enum Work {
    Batch(Box<dyn DynProtocol + Send + Sync>),
    Stream(Box<StreamSpec>, Family),
}

/// One cell of the matrix to measure.
struct Spec {
    work: Work,
    cfg: RunConfig,
    reps: u64,
    /// Engine label for the row.
    engine: &'static str,
    /// Display-name override, e.g. `weighted-adaptive[two-class]` —
    /// weighted cells differ only by their weight shape, which must be
    /// readable off the row key.
    name: Option<String>,
}

impl Spec {
    fn batch(
        proto: Box<dyn DynProtocol + Send + Sync>,
        cfg: RunConfig,
        reps: u64,
        engine: &'static str,
        name: Option<String>,
    ) -> Self {
        Spec {
            work: Work::Batch(proto),
            cfg,
            reps,
            engine,
            name,
        }
    }
}

/// One measured cell.
struct Cell {
    protocol: String,
    scenario: &'static str,
    engine: String,
    n: usize,
    m: u64,
    reps: u64,
    /// Worker threads inside each run (1 for every serial engine).
    threads: usize,
    wall_ms_mean: f64,
    wall_ms_best: f64,
    samples_per_ball: f64,
    mballs_per_sec: f64,
    /// Whether the outcome materialized its dense per-bin load vector
    /// (false = lazy histogram outcome; the giant-n rows require it).
    loads_materialized: bool,
    /// Shed fraction of the arrival stream (0.0 for every batch row).
    shed_rate: f64,
    /// Alive bin fraction at the end of the run (1.0 for batch rows).
    alive_frac: f64,
}

fn measure(spec: &Spec, seed: u64) -> Cell {
    // One untimed warm-up rep: page-faults, lazy allocations and branch
    // history belong to the process, not the engine under test. Cells
    // measured with a single rep are multi-second runs where the
    // warm-up would double the cost for no benefit — skip it there.
    let run_once = |rep: u64| -> Outcome {
        let seed = seed.wrapping_add(rep);
        match &spec.work {
            Work::Batch(proto) => run_protocol(proto.as_ref(), &spec.cfg, seed),
            Work::Stream(sspec, family) => {
                let report = if spec.cfg.threads > 1 {
                    serve_concurrent(sspec, *family, &spec.cfg, seed)
                } else {
                    serve(sspec, *family, &spec.cfg, seed)
                };
                report.outcome
            }
        }
    };
    if spec.reps > 1 {
        let _ = run_once(u64::MAX);
    }
    let mut wall_ms = 0.0f64;
    let mut wall_ms_best = f64::MAX;
    let mut samples = 0u64;
    let mut scenario = "uniform";
    let mut loads_materialized = false;
    let mut shed_rate = 0.0f64;
    let mut alive_frac = 1.0f64;
    for rep in 0..spec.reps {
        let start = Instant::now();
        let out = run_once(rep);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        wall_ms += ms;
        wall_ms_best = wall_ms_best.min(ms);
        samples += out.total_samples;
        scenario = out.scenario.label();
        loads_materialized = out.loads.is_materialized();
        shed_rate = out.scenario.shed_rate();
        alive_frac = out.scenario.alive_frac;
    }
    let wall_ms_mean = wall_ms / spec.reps as f64;
    Cell {
        protocol: spec.name.clone().unwrap_or_else(|| match &spec.work {
            Work::Batch(proto) => proto.name(),
            Work::Stream(_, family) => stream_name(*family),
        }),
        scenario,
        engine: spec.engine.to_string(),
        n: spec.cfg.n,
        m: spec.cfg.m,
        reps: spec.reps,
        threads: spec.cfg.threads,
        wall_ms_mean,
        wall_ms_best,
        samples_per_ball: if spec.cfg.m == 0 {
            0.0
        } else {
            samples as f64 / (spec.reps * spec.cfg.m) as f64
        },
        mballs_per_sec: spec.cfg.m as f64 / wall_ms_best / 1e3,
        loads_materialized,
        shed_rate,
        alive_frac,
    }
}

fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// Benchmark weight vectors: the shapes the weighted chi-square suite
/// exercises, at bench scale.
fn weight_vectors(n: usize) -> Vec<(&'static str, Vec<f64>)> {
    vec![
        ("near-degenerate", {
            let mut w = vec![1.0f64; n];
            w[0] = 1e-6;
            w
        }),
        (
            "two-class",
            (0..n).map(|j| if j % 4 == 0 { 8.0 } else { 1.0 }).collect(),
        ),
        (
            "power-law-16",
            (0..n).map(|j| 1.5f64.powi((j % 16) as i32)).collect(),
        ),
    ]
}

fn main() {
    // `--quick` is the old `--smoke`; `--threads 1` is the old
    // `--serial`; `--out`/`--seed` come straight from the shared flags.
    let args = ExpArgs::parse_with(|flag, _| matches!(flag, "--smoke" | "--serial"));
    let smoke = args.quick || std::env::args().any(|a| a == "--smoke");
    let serial = args.threads == Some(1) || std::env::args().any(|a| a == "--serial");
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_engines.json".into());
    let seed = args.seed;

    // (n, phi, reps) grid: light (phi = 16), heavy (phi = 256) and the
    // Lemma 4.2 regime (m = n², phi = n) where the engines separate.
    let sizes: Vec<(usize, u64, u64)> = if smoke {
        vec![(256, 4, 3), (512, 32, 3), (512, 512, 3)]
    } else {
        vec![(4096, 16, 5), (4096, 256, 5), (10_000, 10_000, 5)]
    };

    let mut specs: Vec<Spec> = Vec::new();
    for &(n, phi, reps) in &sizes {
        let m = phi * n as u64;
        for engine in Engine::ALL.into_iter().chain([Engine::Auto]) {
            let cfg = RunConfig::new(n, m).with_engine(engine);
            specs.push(Spec::batch(
                Box::new(Threshold),
                cfg,
                reps,
                engine.name(),
                None,
            ));
            specs.push(Spec::batch(
                Box::new(Adaptive::paper()),
                cfg,
                reps,
                engine.name(),
                None,
            ));
        }
    }
    // Fixed-sample baselines at the heaviest size: the histogram engine
    // is what makes greedy[2] runnable here at all in sane time.
    let &(n_heavy, phi_heavy, _) = sizes.last().unwrap();
    let m_heavy = phi_heavy * n_heavy as u64;
    for engine in [Engine::Faithful, Engine::Histogram, Engine::Auto] {
        let cfg = RunConfig::new(n_heavy, m_heavy).with_engine(engine);
        let reps = if engine == Engine::Faithful && !smoke {
            1 // sequential per-ball at m = n² is seconds per rep
        } else {
            3
        };
        specs.push(Spec::batch(
            Box::new(OneChoice),
            cfg,
            reps,
            engine.name(),
            None,
        ));
        specs.push(Spec::batch(
            Box::new(GreedyD::new(2)),
            cfg,
            reps,
            engine.name(),
            None,
        ));
    }
    // Weighted rows at the heavy size: faithful per-ball vs the
    // weight-class histogram engine, across the weight shapes of the
    // equivalence suite. The engine speedup quoted in the README is
    // wall_ms_best(faithful) / wall_ms_best(histogram) per shape.
    let (n_w, m_w) = if smoke {
        (512usize, 512 * 64u64)
    } else {
        (10_000usize, 100_000_000u64)
    };
    for (shape, weights) in weight_vectors(n_w) {
        for engine in [Engine::Faithful, Engine::Histogram, Engine::Auto] {
            let cfg = RunConfig::new(n_w, m_w).with_engine(engine);
            let reps = if engine == Engine::Faithful && !smoke {
                1
            } else {
                3
            };
            specs.push(Spec::batch(
                Box::new(WeightedAdaptive::new(weights.clone())),
                cfg,
                reps,
                engine.name(),
                Some(format!("weighted-adaptive[{shape}]")),
            ));
        }
        let cfg = RunConfig::new(n_w, m_w).with_engine(Engine::Histogram);
        specs.push(Spec::batch(
            Box::new(WeightedOneChoice::new(weights)),
            cfg,
            3,
            Engine::Histogram.name(),
            Some(format!("weighted-one-choice[{shape}]")),
        ));
    }
    // Parallel-round rows at m = n: faithful per-contact rounds vs the
    // round-occupancy engine. The heavy size (n = m = 10⁷) is the
    // engine's acceptance regime — the faithful path is per-contact and
    // cache-miss-bound there, while the engine's per-round work is
    // independent of the contact count and its residual cost is the
    // O(n) load reconstruction.
    let n_p = if smoke { 1 << 12 } else { 10_000_000 };
    type MakeProto = fn() -> Box<dyn DynProtocol + Send + Sync>;
    let parallel_protos: [MakeProto; 3] = [
        || Box::new(Collision::new(1)),
        || Box::new(BoundedLoad::new(2)),
        || Box::new(ParallelGreedy::new(2, 4, 1)),
    ];
    for make in &parallel_protos {
        for engine in [Engine::Faithful, Engine::Histogram, Engine::Auto] {
            let cfg = RunConfig::new(n_p, n_p as u64).with_engine(engine);
            let reps = if engine == Engine::Faithful && !smoke {
                1 // the faithful rounds are seconds per rep at 10⁷
            } else {
                3
            };
            specs.push(Spec::batch(make(), cfg, reps, engine.name(), None));
        }
        // The concurrent single-run engine (deterministic mode) at 1,
        // 2 and 8 worker threads — the first multi-thread rows in the
        // matrix. Deterministic mode is bit-identical across thread
        // counts, so these rows isolate the scaling of one identical
        // placement.
        for threads in [1usize, 2, 8] {
            let cfg = RunConfig::new(n_p, n_p as u64)
                .with_engine(Engine::Concurrent)
                .with_threads(threads);
            specs.push(Spec::batch(make(), cfg, 3, Engine::Concurrent.name(), None));
        }
    }

    // Giant-n histogram-only rows: with the lazy outcome the engine's
    // state and result are both histograms, so memory is independent
    // of n and the sweep reaches n = 10⁸ and 10⁹ — sizes where merely
    // allocating the dense load vector would cost seconds (or, at
    // 10⁹ bins × 4 B, four gigabytes). One sequential row (adaptive —
    // the paper's protocol — at phi = 16, milliseconds even at
    // 1.6 × 10¹⁰ balls) and one parallel row (collision at m = n) per
    // size.
    if !smoke {
        for n_g in [100_000_000usize, 1_000_000_000] {
            let cfg = RunConfig::new(n_g, 16 * n_g as u64).with_engine(Engine::Histogram);
            specs.push(Spec::batch(
                Box::new(Adaptive::paper()),
                cfg,
                3,
                Engine::Histogram.name(),
                None,
            ));
            let cfg = RunConfig::new(n_g, n_g as u64).with_engine(Engine::Histogram);
            specs.push(Spec::batch(
                Box::new(Collision::new(1)),
                cfg,
                3,
                Engine::Histogram.name(),
                None,
            ));
        }
    }

    // Serve-mode rows: a seeded churn stream with a mid-run mass
    // failure (half the fleet dies, later recovers) under the default
    // retry/backoff policy — the serial reference driver at 1 thread
    // and the dense sharded concurrent engine at 2 and 8 workers. The
    // degradation ledger lands in the row as `shed_rate`/`alive_frac`;
    // `balls-lint --check-bench` requires at least one stream row
    // (full runs: one with threads > 1), so serve mode can never
    // silently drop out of the committed matrix.
    let (n_s, ticks_s) = if smoke {
        (512usize, 40u64)
    } else {
        (100_000usize, 200u64)
    };
    let m_s = ticks_s * if smoke { 400 } else { 50_000 };
    let stream_spec = || {
        Box::new(
            StreamSpec::new(ticks_s, 0.10)
                .with_faults(FaultPlan::mass_failure(
                    ticks_s / 3,
                    0.5,
                    2 * ticks_s / 3,
                    7,
                ))
                .with_retry(RetryPolicy::default()),
        )
    };
    for family in [Family::Greedy(2), Family::Adaptive] {
        specs.push(Spec {
            work: Work::Stream(stream_spec(), family),
            cfg: RunConfig::new(n_s, m_s),
            reps: 3,
            engine: "stream",
            name: None,
        });
    }
    for stream_threads in if smoke { vec![2usize] } else { vec![2usize, 8] } {
        specs.push(Spec {
            work: Work::Stream(stream_spec(), Family::Greedy(2)),
            cfg: RunConfig::new(n_s, m_s).with_threads(stream_threads),
            reps: 3,
            engine: Engine::Concurrent.name(),
            name: None,
        });
    }

    let threads = if serial {
        1
    } else {
        args.threads_or_available()
    };
    let cells: Vec<Cell> = par_map(specs.len(), threads, |i| measure(&specs[i], seed));

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"bib-bench/engines/v6\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(
        json,
        "  \"host\": {{\"threads\": {threads}, \"available_threads\": {}, \"rustc\": \"{}\"}},",
        available_threads(),
        rustc_version()
    );
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"protocol\": \"{}\", \"scenario\": \"{}\", \"engine\": \"{}\", \
             \"n\": {}, \"m\": {}, \"reps\": {}, \"threads\": {}, \"wall_ms_mean\": {:.3}, \
             \"wall_ms_best\": {:.3}, \"samples_per_ball\": {:.6}, \"mballs_per_sec\": {:.3}, \
             \"loads_materialized\": {}, \"shed_rate\": {:.6}, \"alive_frac\": {:.6}}}",
            c.protocol,
            c.scenario,
            c.engine,
            c.n,
            c.m,
            c.reps,
            c.threads,
            c.wall_ms_mean,
            c.wall_ms_best,
            c.samples_per_ball,
            c.mballs_per_sec,
            c.loads_materialized,
            c.shed_rate,
            c.alive_frac
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));

    // Human-readable echo.
    println!(
        "# wrote {out_path} ({} cells, {} worker threads)",
        cells.len(),
        threads
    );
    println!(
        "{:<20} {:<10} {:>14} {:>11} {:>13} {:>4} {:>12} {:>12} {:>14} {:>12} {:>6} {:>9} {:>7}",
        "protocol",
        "scenario",
        "engine",
        "n",
        "m",
        "thr",
        "wall_mean",
        "wall_best",
        "samples/ball",
        "Mballs/s",
        "lazy",
        "shed",
        "alive"
    );
    for c in &cells {
        println!(
            "{:<20} {:<10} {:>14} {:>11} {:>13} {:>4} {:>12.3} {:>12.3} {:>14.4} {:>12.2} {:>6} {:>9.5} {:>7.3}",
            c.protocol,
            c.scenario,
            c.engine,
            c.n,
            c.m,
            c.threads,
            c.wall_ms_mean,
            c.wall_ms_best,
            c.samples_per_ball,
            c.mballs_per_sec,
            if c.loads_materialized { "no" } else { "yes" },
            c.shed_rate,
            c.alive_frac
        );
    }
}
