//! The `threshold` protocol (Czumaj–Stemann [7]; Figure 2 of the paper).
//!
//! Every ball re-samples uniform bins until it finds one with load
//! strictly less than `m/n + 1`, so `m` must be known in advance. Maximum
//! load is `⌈m/n⌉ + 1` by construction; Theorem 4.1 shows the allocation
//! time is `m + O(m^{3/4} n^{1/4})` w.h.p. for all `m ≥ n`, and Lemma 4.2
//! shows the final distribution is *rough*: at `m = n²` the quadratic
//! potential is `Ω(n^{9/8})` and the gap `Ω(n^{1/8})`.

use crate::level_batched::{allocate_scheduled, ThresholdSchedule};
use crate::protocol::{Observer, Outcome, Protocol, RunConfig};
use bib_rng::Rng64;

/// The static-threshold protocol. Stateless: the acceptance threshold is
/// derived from the run configuration.
///
/// # Examples
///
/// ```
/// use bib_core::prelude::*;
///
/// let cfg = RunConfig::new(100, 10_000).with_engine(Engine::Jump);
/// let out = run_protocol(&Threshold, &cfg, 7);
/// assert!(out.max_load() as u64 <= cfg.max_load_bound());
/// // Theorem 4.1: the excess over m is sublinear.
/// assert!((out.excess_samples() as f64) < 0.5 * cfg.m as f64);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Threshold;

impl Threshold {
    /// The integer acceptance bound: a bin accepts iff `load < t`, where
    /// `t` is the smallest integer with `load < t ⟺ load < m/n + 1` for
    /// integer loads, i.e. `t = ⌈(m + n)/n⌉`.
    pub fn acceptance_bound(n: usize, m: u64) -> u32 {
        debug_assert!(n > 0);
        u32::try_from((m + n as u64).div_ceil(n as u64))
            .expect("acceptance bound ⌈(m+n)/n⌉ exceeds u32 — loads are u32 workspace-wide")
    }
}

impl ThresholdSchedule for Threshold {
    fn bound(&self, cfg: &RunConfig, _ball: u64) -> u32 {
        Self::acceptance_bound(cfg.n, cfg.m)
    }

    fn segment_end(&self, cfg: &RunConfig, _ball: u64) -> u64 {
        // The bound is global: the whole run is one segment.
        cfg.m
    }
}

impl Protocol for Threshold {
    fn name(&self) -> String {
        "threshold".into()
    }

    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        allocate_scheduled(self, cfg, rng, obs)
    }
}

/// `threshold` with a generalised additive slack: accept
/// `load < m/n + s`. The paper's protocol is `s = 1`; larger slack
/// trades maximum load (`⌈m/n⌉ + s`) for fewer retries — the
/// `extensions` experiment quantifies the trade.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdSlack {
    slack: u32,
}

impl ThresholdSlack {
    /// Slack `s ≥ 1` (`s = 0` would deadlock: the last ball of a full
    /// layer finds no accepting bin once all bins reach `m/n`).
    pub fn new(slack: u32) -> Self {
        assert!(slack >= 1, "threshold slack must be ≥ 1");
        Self { slack }
    }

    /// The configured slack.
    pub fn slack(&self) -> u32 {
        self.slack
    }

    /// Integer acceptance bound: smallest `t` with
    /// `load < t ⟺ load < m/n + s`, i.e. `t = ⌈(m + s·n)/n⌉`.
    pub fn acceptance_bound(&self, n: usize, m: u64) -> u32 {
        u32::try_from((m + self.slack as u64 * n as u64).div_ceil(n as u64))
            .expect("acceptance bound ⌈m/n⌉ + slack exceeds u32 — loads are u32 workspace-wide")
    }
}

impl ThresholdSchedule for ThresholdSlack {
    fn bound(&self, cfg: &RunConfig, _ball: u64) -> u32 {
        self.acceptance_bound(cfg.n, cfg.m)
    }

    fn segment_end(&self, cfg: &RunConfig, _ball: u64) -> u64 {
        cfg.m
    }
}

impl Protocol for ThresholdSlack {
    fn name(&self) -> String {
        format!("threshold(+{})", self.slack)
    }

    fn allocate<R, O>(&self, cfg: &RunConfig, rng: &mut R, obs: &mut O) -> Outcome
    where
        R: Rng64 + ?Sized,
        O: Observer + ?Sized,
    {
        allocate_scheduled(self, cfg, rng, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Engine, NullObserver};
    use bib_rng::SplitMix64;

    #[test]
    fn acceptance_bound_values() {
        // m = ϕn: load < ϕ + 1, i.e. t = ϕ + 1.
        assert_eq!(Threshold::acceptance_bound(10, 100), 11);
        // m = 0: load < 1.
        assert_eq!(Threshold::acceptance_bound(10, 0), 1);
        // Non-divisible: m = 5, n = 3 ⇒ load < 5/3 + 1 = 8/3 ⇒ t = 3.
        assert_eq!(Threshold::acceptance_bound(3, 5), 3);
        // m = 6, n = 3 ⇒ load < 3 ⇒ t = 3.
        assert_eq!(Threshold::acceptance_bound(3, 6), 3);
    }

    #[test]
    fn max_load_bound_holds_always() {
        for seed in 0..5u64 {
            for engine in [Engine::Faithful, Engine::Jump] {
                let cfg = RunConfig::new(16, 100).with_engine(engine);
                let mut rng = SplitMix64::new(seed);
                let out = Threshold.allocate(&cfg, &mut rng, &mut NullObserver);
                out.validate();
                assert!(
                    out.max_load() as u64 <= cfg.max_load_bound(),
                    "seed={seed} {engine:?}: max {} > bound {}",
                    out.max_load(),
                    cfg.max_load_bound()
                );
            }
        }
    }

    #[test]
    fn m_less_than_n_works() {
        let cfg = RunConfig::new(50, 10);
        let mut rng = SplitMix64::new(7);
        let out = Threshold.allocate(&cfg, &mut rng, &mut NullObserver);
        out.validate();
        // m < n ⇒ threshold is load < 10/50 + 1, i.e. only empty bins
        // accept… bound says t = ⌈60/50⌉ = 2, so max load ≤ 2.
        assert!(out.max_load() <= 2);
    }

    #[test]
    fn single_bin_takes_everything() {
        let cfg = RunConfig::new(1, 25);
        let mut rng = SplitMix64::new(8);
        let out = Threshold.allocate(&cfg, &mut rng, &mut NullObserver);
        out.validate();
        assert_eq!(out.loads, vec![25]);
        assert_eq!(out.total_samples, 25);
    }

    #[test]
    fn allocation_time_close_to_m_at_moderate_size() {
        // Theorem 4.1 shape: T/m → 1. At n = 256, m = 64n the excess is
        // O(m^{3/4} n^{1/4}) ≈ small; just check the ratio is < 1.5.
        let cfg = RunConfig::new(256, 64 * 256).with_engine(Engine::Jump);
        let mut rng = SplitMix64::new(9);
        let out = Threshold.allocate(&cfg, &mut rng, &mut NullObserver);
        assert!(out.time_ratio() < 1.5, "ratio {}", out.time_ratio());
        assert!(out.time_ratio() >= 1.0);
    }

    #[test]
    fn slack_one_equals_paper_threshold() {
        let cfg = RunConfig::new(32, 321).with_engine(Engine::Jump);
        let mut r1 = SplitMix64::new(3);
        let mut r2 = SplitMix64::new(3);
        let a = ThresholdSlack::new(1).allocate(&cfg, &mut r1, &mut NullObserver);
        let b = Threshold.allocate(&cfg, &mut r2, &mut NullObserver);
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.total_samples, b.total_samples);
    }

    #[test]
    fn larger_slack_trades_load_for_time() {
        let n = 512usize;
        let cfg = RunConfig::new(n, 32 * n as u64).with_engine(Engine::Jump);
        let mean = |s: u32| -> (f64, f64) {
            let mut t = 0.0;
            let mut ml = 0.0;
            for seed in 0..10u64 {
                let out = crate::run::run_protocol(&ThresholdSlack::new(s), &cfg, seed);
                out.validate();
                assert!(out.max_load() as u64 <= 32 + s as u64, "slack {s}");
                t += out.time_ratio() / 10.0;
                ml += out.max_load() as f64 / 10.0;
            }
            (t, ml)
        };
        let (t1, m1) = mean(1);
        let (t4, m4) = mean(4);
        assert!(t4 < t1, "slack 4 time {t4} should beat slack 1 time {t1}");
        assert!(m4 >= m1, "slack 4 max load {m4} below slack 1 {m1}?");
    }

    #[test]
    #[should_panic]
    fn zero_slack_rejected() {
        ThresholdSlack::new(0);
    }

    #[test]
    fn engines_give_same_max_load_guarantee_and_similar_time() {
        let cfg_naive = RunConfig::new(128, 128 * 16);
        let cfg_jump = cfg_naive.with_engine(Engine::Jump);
        let mut r1 = SplitMix64::new(10);
        let mut r2 = SplitMix64::new(11);
        let a = Threshold.allocate(&cfg_naive, &mut r1, &mut NullObserver);
        let b = Threshold.allocate(&cfg_jump, &mut r2, &mut NullObserver);
        a.validate();
        b.validate();
        let (ra, rb) = (a.time_ratio(), b.time_ratio());
        assert!((ra - rb).abs() < 0.2, "naive {ra} vs jump {rb}");
    }
}
