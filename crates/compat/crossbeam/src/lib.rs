//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the crossbeam API that `bib-parallel`
//! actually uses:
//!
//! * multi-producer/single-consumer channels created with
//!   [`channel::bounded`] (clonable senders, an iterable receiver);
//! * [`atomic::AtomicCell`], a lock-free cell over the primitive
//!   integer/bool types, in the spirit of `crossbeam_utils`'s cell
//!   (every operation is `SeqCst`, like the original);
//! * [`pool::scoped`], a scoped worker pool with a per-round barrier
//!   ([`pool::Rounds`]) for round-synchronous supersteps — the shape
//!   the concurrent single-run engine in `bib-parallel` needs.
//!
//! The implementations delegate to `std::sync` (`mpsc`, `atomic`,
//! `Barrier`, `thread::scope`), which provide the same semantics for
//! these usage patterns. Swapping in the real crossbeam later only
//! requires deleting this crate from the workspace and pointing
//! `[workspace.dependencies]` at the registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic {
    //! Lock-free cells over primitive types, mirroring the
    //! `crossbeam_utils::atomic::AtomicCell` API subset the workspace
    //! uses. All operations are `SeqCst`, matching the original's
    //! contract — callers that can justify weaker orderings use
    //! `std::sync::atomic` directly (see `bib-parallel`'s concurrent
    //! engine, where every ordering carries its argument).

    // ORDERING: SeqCst everywhere in this module — the cell's contract.
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

    mod sealed {
        pub trait Sealed {}
    }

    /// A primitive type with a native lock-free atomic representation.
    ///
    /// Sealed: exactly `u32`, `u64`, `usize` and `bool` — the types the
    /// workspace's concurrent code stores in shared cells.
    pub trait Primitive: sealed::Sealed + Copy {
        /// The backing `std::sync::atomic` type.
        type Repr;
        /// Wraps a value.
        fn into_repr(self) -> Self::Repr;
        /// Atomically loads (`SeqCst`).
        fn load(repr: &Self::Repr) -> Self;
        /// Atomically stores (`SeqCst`).
        fn store(repr: &Self::Repr, v: Self);
        /// Atomically swaps (`SeqCst`), returning the previous value.
        fn swap(repr: &Self::Repr, v: Self) -> Self;
        /// Atomic compare-exchange. ORDERING: `SeqCst` on both edges.
        /// RETRY: a single attempt, not a loop — [`AtomicCell::fetch_update`]
        /// owns the retry loop and its termination argument.
        fn compare_exchange(repr: &Self::Repr, current: Self, new: Self) -> Result<Self, Self>;
        /// Consumes the cell, returning the inner value.
        fn into_inner(repr: Self::Repr) -> Self;
    }

    macro_rules! impl_primitive {
        ($($ty:ty => $atomic:ty),+ $(,)?) => {$(
            impl sealed::Sealed for $ty {}
            impl Primitive for $ty {
                type Repr = $atomic;
                fn into_repr(self) -> $atomic {
                    <$atomic>::new(self)
                }
                fn load(repr: &$atomic) -> $ty {
                    // ORDERING: SeqCst across the board — AtomicCell
                    // mirrors crossbeam's strongest-by-default contract
                    // so callers never reason about ordering here.
                    repr.load(Ordering::SeqCst)
                }
                fn store(repr: &$atomic, v: $ty) {
                    // ORDERING: SeqCst; see `load`.
                    repr.store(v, Ordering::SeqCst)
                }
                fn swap(repr: &$atomic, v: $ty) -> $ty {
                    // ORDERING: SeqCst; see `load`.
                    repr.swap(v, Ordering::SeqCst)
                }
                // RETRY: a single attempt, not a loop — `fetch_update`
                // owns the retry loop and its termination argument.
                // ORDERING: SeqCst on both edges; see the body.
                fn compare_exchange(
                    repr: &$atomic,
                    current: $ty,
                    new: $ty,
                ) -> Result<$ty, $ty> {
                    // ORDERING: SeqCst on success and failure; see
                    // `load`. RETRY: single attempt (no loop).
                    repr.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }
                fn into_inner(repr: $atomic) -> $ty {
                    repr.into_inner()
                }
            }
        )+};
    }

    // ORDERING: SeqCst — the macro body above pins every operation.
    impl_primitive!(u32 => AtomicU32, u64 => AtomicU64, usize => AtomicUsize, bool => AtomicBool);

    /// A thread-safe mutable cell, lock-free for the supported
    /// [`Primitive`] types. ORDERING: every operation is `SeqCst`.
    pub struct AtomicCell<T: Primitive> {
        repr: T::Repr,
    }

    // ORDERING: SeqCst throughout — delegated to [`Primitive`].
    impl<T: Primitive> AtomicCell<T> {
        /// Creates a cell initialized to `value`.
        pub fn new(value: T) -> Self {
            Self {
                repr: value.into_repr(),
            }
        }

        /// Loads the current value.
        pub fn load(&self) -> T {
            T::load(&self.repr)
        }

        /// Stores `value`.
        pub fn store(&self, value: T) {
            T::store(&self.repr, value)
        }

        /// Swaps in `value`, returning the previous value.
        pub fn swap(&self, value: T) -> T {
            T::swap(&self.repr, value)
        }

        /// Compare-exchange: replaces `current` with `new`, returning
        /// `Ok(previous)` on success and `Err(actual)` on mismatch.
        /// ORDERING: `SeqCst` both edges. RETRY: a single attempt, not
        /// a loop — [`Self::fetch_update`] owns the retry loop.
        pub fn compare_exchange(&self, current: T, new: T) -> Result<T, T> {
            T::compare_exchange(&self.repr, current, new)
        }

        /// CAS retry loop: applies `f` to the observed value until the
        /// exchange lands or `f` returns `None`. Returns the *previous*
        /// value on success, the last observed value on `None`.
        // RETRY: terminates because each failed compare_exchange returns
        // the freshly observed value, so the loop only repeats while
        // other threads make progress (lock-free, not wait-free — the
        // standard fetch_update contract); `None` exits immediately.
        // ORDERING: SeqCst via the delegated cell operations.
        pub fn fetch_update<F>(&self, mut f: F) -> Result<T, T>
        where
            F: FnMut(T) -> Option<T>,
        {
            let mut observed = self.load();
            while let Some(new) = f(observed) {
                // RETRY: see the contract above. ORDERING: SeqCst.
                match self.compare_exchange(observed, new) {
                    Ok(prev) => return Ok(prev),
                    Err(actual) => observed = actual,
                }
            }
            Err(observed)
        }

        /// Consumes the cell, returning the inner value.
        pub fn into_inner(self) -> T {
            T::into_inner(self.repr)
        }
    }

    // ORDERING: SeqCst load via the cell's contract.
    impl<T: Primitive + std::fmt::Debug> std::fmt::Debug for AtomicCell<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicCell").field(&self.load()).finish()
        }
    }

    // ORDERING: no shared state yet — constructs a fresh cell.
    impl<T: Primitive + Default> Default for AtomicCell<T> {
        fn default() -> Self {
            Self::new(T::default())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn load_store_swap() {
            // ORDERING: SeqCst — the cell's fixed contract.
            let c = AtomicCell::new(5u64);
            assert_eq!(c.load(), 5);
            c.store(9);
            assert_eq!(c.swap(11), 9);
            assert_eq!(c.into_inner(), 11);
        }

        #[test]
        fn fetch_update_bounded_increment() {
            // ORDERING: SeqCst cell. RETRY: the counter saturates at 2,
            // after which the closure returns None and the loop exits.
            let c = AtomicCell::new(0u32);
            // Saturating-at-2 counter: two successes, then rejection.
            let bump = |c: &AtomicCell<u32>| c.fetch_update(|v| (v < 2).then_some(v + 1));
            assert_eq!(bump(&c), Ok(0));
            assert_eq!(bump(&c), Ok(1));
            assert_eq!(bump(&c), Err(2));
            assert_eq!(c.load(), 2);
        }

        #[test]
        fn contended_fetch_update_counts_exactly() {
            // ORDERING: SeqCst cell.
            let c = AtomicCell::new(0usize);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for _ in 0..1000 {
                            // ORDERING: SeqCst cell. RETRY: lock-free —
                            // each failure means a competing increment
                            // landed; 3999 competitors bound the retries.
                            c.fetch_update(|v| Some(v + 1)).unwrap();
                        }
                    });
                }
            });
            assert_eq!(c.load(), 4000);
        }

        #[test]
        fn bool_cell_compare_exchange() {
            // ORDERING: SeqCst cell. RETRY: single attempts, no loop.
            let c = AtomicCell::new(false);
            assert_eq!(c.compare_exchange(false, true), Ok(false));
            assert_eq!(c.compare_exchange(false, true), Err(true));
        }
    }
}

pub mod pool {
    //! A scoped worker pool with a per-round barrier, for
    //! round-synchronous supersteps: every worker runs the same closure,
    //! and [`Rounds::sync`] separates the phases of a round so that all
    //! writes before the barrier are visible to every worker after it.
    //!
    //! # Panic propagation
    //!
    //! The barrier is *poisonable*: when any worker panics, every other
    //! worker parked (or later arriving) at [`Rounds::sync`] is released
    //! by unwinding instead of waiting for a round that can never
    //! complete, and the first panic's original payload is re-raised on
    //! the calling thread after the scope joins. Without this, a
    //! `std::sync::Barrier` would strand the surviving workers forever
    //! (the scope join waits on them, they wait on the dead worker).

    use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
    use std::sync::{Condvar, Mutex, MutexGuard};

    /// Private unwind payload used to release workers parked at a
    /// poisoned barrier; never surfaced to callers (the *original*
    /// panic payload is what propagates).
    struct BarrierPoisoned;

    struct BarrierState {
        count: usize,
        generation: u64,
        poisoned: bool,
    }

    /// The per-round synchronization handle passed to every worker.
    pub struct Rounds {
        lock: Mutex<BarrierState>,
        cvar: Condvar,
        workers: usize,
    }

    impl Rounds {
        fn new(workers: usize) -> Self {
            Self {
                lock: Mutex::new(BarrierState {
                    count: 0,
                    generation: 0,
                    poisoned: false,
                }),
                cvar: Condvar::new(),
                workers,
            }
        }

        /// The barrier's own mutex poisoning is impossible by
        /// construction (no caller panics while holding the guard), but
        /// recovering the inner state keeps the release path alive even
        /// if that invariant is ever broken.
        fn state(&self) -> MutexGuard<'_, BarrierState> {
            self.lock.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Blocks until every worker has called `sync`. All memory
        /// writes sequenced before any worker's `sync` happen-before
        /// everything sequenced after the matching `sync` in every
        /// other worker (mutex release/acquire on the shared barrier
        /// state) — this is the only inter-phase ordering the round
        /// engines rely on.
        ///
        /// # Panics
        ///
        /// Unwinds (with a private sentinel payload) if the barrier was
        /// poisoned by a panicking worker; [`scoped`] catches the
        /// sentinel and re-raises the original panic on the caller.
        pub fn sync(&self) {
            let mut st = self.state();
            if st.poisoned {
                drop(st);
                panic_any(BarrierPoisoned);
            }
            let gen = st.generation;
            st.count += 1;
            if st.count == self.workers {
                st.count = 0;
                st.generation += 1;
                self.cvar.notify_all();
                return;
            }
            // RETRY: condvar wait loop; exits when the round completes
            // (generation bump) or the barrier is poisoned — both are
            // one-way transitions, so the loop terminates.
            while st.generation == gen && !st.poisoned {
                st = self.cvar.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.poisoned && st.generation == gen {
                // Released by poison, not by a completed round: this
                // round can never complete, so unwind out of the phase.
                drop(st);
                panic_any(BarrierPoisoned);
            }
        }

        /// Marks the barrier dead and releases every parked worker.
        fn poison(&self) {
            let mut st = self.state();
            st.poisoned = true;
            self.cvar.notify_all();
        }

        /// Number of workers in the pool.
        pub fn workers(&self) -> usize {
            self.workers
        }
    }

    /// Runs `f(worker_id, rounds)` on `workers` workers (ids
    /// `0..workers`) inside one `std::thread::scope`. Worker 0 runs on
    /// the calling thread, so a single-worker pool spawns nothing and a
    /// multi-worker pool keeps the caller busy instead of parked.
    ///
    /// # Panics
    ///
    /// If any worker panics, the pool poisons the barrier (releasing
    /// workers parked at [`Rounds::sync`]), joins every worker, and
    /// re-raises the **first** panic's original payload on the calling
    /// thread.
    pub fn scoped<F>(workers: usize, f: F)
    where
        F: Fn(usize, &Rounds) + Sync,
    {
        let workers = workers.max(1);
        let rounds = Rounds::new(workers);
        if workers == 1 {
            f(0, &rounds);
            return;
        }
        // First panic's payload; later (sentinel-released) unwinds are
        // collateral and dropped.
        let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let run = |w: usize| {
            // AssertUnwindSafe: on unwind the shared state is either
            // poisoned (and every observer unwinds too) or untouched by
            // this worker; nothing is observed in a broken state.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(w, &rounds))) {
                if !payload.is::<BarrierPoisoned>() {
                    let mut slot = first_panic.lock().unwrap_or_else(|e| e.into_inner());
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
                rounds.poison();
            }
        };
        std::thread::scope(|s| {
            let run = &run;
            for w in 1..workers {
                s.spawn(move || run(w));
            }
            run(0);
        });
        if let Some(payload) = first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
            resume_unwind(payload);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        // ORDERING: each use below carries its own argument.
        use std::sync::atomic::{AtomicU64, Ordering};

        #[test]
        fn single_worker_runs_inline() {
            // ORDERING: Relaxed-only tally; see the increment below.
            let hits = AtomicU64::new(0);
            scoped(1, |w, r| {
                assert_eq!(w, 0);
                assert_eq!(r.workers(), 1);
                r.sync(); // must not block with one worker
                          // ORDERING: Relaxed — single increment, checked after
                          // `scoped` returns (sequenced on this thread).
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 1);
        }

        #[test]
        fn barrier_separates_phases() {
            // Phase A: every worker contributes; phase B: every worker
            // must observe the full phase-A total — only true if sync()
            // is a real barrier with release/acquire semantics.
            // ORDERING: Relaxed adds; the barrier publishes.
            let total = AtomicU64::new(0);
            scoped(4, |_, rounds| {
                for round in 1..=8u64 {
                    // ORDERING: Relaxed — the barrier below publishes.
                    total.fetch_add(round, Ordering::Relaxed);
                    rounds.sync();
                    // ORDERING: Relaxed — the barrier above ordered all
                    // phase-A adds before this read.
                    assert_eq!(total.load(Ordering::Relaxed) % 4, 0);
                    rounds.sync(); // keep rounds aligned across workers
                }
            });
            // ORDERING: Relaxed — read after the scope joins.
            assert_eq!(total.load(Ordering::Relaxed), 4 * 36);
        }

        #[test]
        fn worker_ids_cover_the_pool() {
            // ORDERING: Relaxed-only bitmask; see the union below.
            let seen = AtomicU64::new(0);
            scoped(3, |w, _| {
                // ORDERING: Relaxed — bitmask union, read after join.
                seen.fetch_or(1 << w, Ordering::Relaxed);
            });
            assert_eq!(seen.load(Ordering::Relaxed), 0b111);
        }

        #[test]
        fn spawned_worker_panic_releases_the_barrier_and_propagates() {
            // The strand-on-panic regression: worker 2 dies before its
            // sync() while the others park at the barrier. Without
            // poisoning, the survivors wait forever and the scope join
            // never returns; with it, the pool unwinds with the dead
            // worker's original payload.
            let caught = std::panic::catch_unwind(|| {
                scoped(4, |w, rounds| {
                    if w == 2 {
                        panic!("worker 2 injected failure");
                    }
                    rounds.sync();
                });
            });
            let payload = caught.expect_err("panic must propagate");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .expect("original payload type preserved");
            assert_eq!(msg, "worker 2 injected failure");
        }

        #[test]
        fn caller_worker_panic_releases_spawned_workers() {
            // Same strand, other direction: worker 0 (the caller) dies
            // while spawned workers park at the barrier.
            let caught = std::panic::catch_unwind(|| {
                scoped(3, |w, rounds| {
                    if w == 0 {
                        panic!("caller died");
                    }
                    rounds.sync();
                });
            });
            let payload = caught.expect_err("panic must propagate");
            assert_eq!(payload.downcast_ref::<&str>(), Some(&"caller died"));
        }

        #[test]
        fn panic_after_rounds_still_propagates() {
            // A worker that dies *between* barriers (others already past
            // the round) must still poison and propagate.
            let caught = std::panic::catch_unwind(|| {
                scoped(4, |w, rounds| {
                    rounds.sync(); // round 1 completes on all workers
                    if w == 1 {
                        panic!("late failure");
                    }
                    rounds.sync(); // round 2 can never complete
                });
            });
            let payload = caught.expect_err("panic must propagate");
            assert_eq!(payload.downcast_ref::<&str>(), Some(&"late failure"));
        }
    }
}

pub mod channel {
    //! MPMC-style channels; see the crate docs for the supported subset.

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Sending half of a channel. Clonable, like crossbeam's.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error returned by [`Sender::send`] when the receiver has hung up.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is delivered or the channel disconnects.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of a channel.
    ///
    /// Unlike `std::sync::mpsc::Receiver`, crossbeam receivers are
    /// `Sync + Clone`; the `Arc<Mutex<_>>` wrapper preserves that
    /// contract for callers that share one receiver across scoped
    /// threads.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .expect("receiver mutex poisoned")
                .recv()
                .map_err(|_| RecvError)
        }

        /// Iterates over received messages until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over a receiver; ends when all senders drop.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Owning blocking iterator over a receiver.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_from_clones() {
            let (tx, rx) = bounded::<usize>(64);
            std::thread::scope(|s| {
                for t in 0..4 {
                    let tx = tx.clone();
                    s.spawn(move || {
                        for i in 0..16 {
                            tx.send(t * 16 + i).unwrap();
                        }
                    });
                }
                drop(tx);
            });
            let mut got: Vec<usize> = rx.into_iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..64).collect::<Vec<_>>());
        }

        #[test]
        fn recv_err_after_disconnect() {
            let (tx, rx) = bounded::<u8>(1);
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
