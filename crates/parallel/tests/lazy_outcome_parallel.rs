//! The lazy-outcome contract for the parallel round family (see
//! `bib_core::loads` and `bib_parallel::protocols::round_occupancy`):
//! a no-observer `Engine::Histogram` run skips the final identity
//! reconstruction entirely and returns a virtual load vector, while
//! every histogram-expressible statistic still matches a dense
//! recomputation once the vector is materialized.

use bib_core::potential::{gap as dense_gap, quadratic_potential};
use bib_core::prelude::*;
use bib_core::run::run_protocol;
use bib_parallel::protocols::{BoundedLoad, Collision, ParallelGreedy};

fn round_protocols() -> Vec<(&'static str, Box<dyn DynProtocol + Send + Sync>)> {
    vec![
        ("collision[1]", Box::new(Collision::new(1))),
        ("collision[2]", Box::new(Collision::new(2))),
        ("bounded-load[2]", Box::new(BoundedLoad::new(2))),
        ("parallel-greedy", Box::new(ParallelGreedy::new(2, 3, 1))),
    ]
}

#[test]
fn round_engine_runs_stay_virtual_through_every_statistic() {
    for (n, m) in [(256usize, 256u64), (1024, 512)] {
        let cfg = RunConfig::new(n, m).with_engine(Engine::Histogram);
        for (tag, proto) in round_protocols() {
            let out = run_protocol(proto.as_ref(), &cfg, 13);
            assert!(
                !out.loads.is_materialized(),
                "{tag} n={n}: born materialized"
            );
            out.validate();
            let _ = (
                out.total_balls(),
                out.max_load(),
                out.min_load(),
                out.gap(),
                out.psi(),
                out.ln_phi(),
                out.rounds(),
                out.messages(),
            );
            assert_eq!(out.loads.len(), n, "{tag}: len");
            assert!(
                !out.loads.is_materialized(),
                "{tag} n={n}: a statistic materialized the loads"
            );
        }
    }
}

#[test]
fn round_engine_statistics_match_dense_recomputation() {
    let cfg = RunConfig::new(512, 400).with_engine(Engine::Histogram);
    for (tag, proto) in round_protocols() {
        let out = run_protocol(proto.as_ref(), &cfg, 29);
        let gap = out.gap();
        let psi = out.psi();
        let dense = out.loads.to_vec();
        assert!(out.loads.is_materialized(), "{tag}: to_vec materializes");
        assert_eq!(
            out.total_balls(),
            dense.iter().map(|&l| l as u64).sum::<u64>(),
            "{tag}: mass"
        );
        assert_eq!(gap, dense_gap(&dense), "{tag}: gap");
        assert_eq!(
            out.max_load(),
            dense.iter().copied().max().unwrap(),
            "{tag}: max"
        );
        let dense_psi = quadratic_potential(&dense, out.m);
        assert!(
            (psi - dense_psi).abs() <= 1e-9 * dense_psi.max(1.0),
            "{tag}: psi {psi} vs dense {dense_psi}"
        );
    }
}

#[test]
fn round_engine_materialization_is_deterministic() {
    let cfg = RunConfig::new(2048, 2048).with_engine(Engine::Histogram);
    for (tag, proto) in round_protocols() {
        let a = run_protocol(proto.as_ref(), &cfg, 71);
        let b = run_protocol(proto.as_ref(), &cfg, 71);
        // Statistics first on one replicate, straight to dense on the
        // other: materialization must not depend on observation order.
        let _ = (a.gap(), a.psi(), a.max_overload());
        assert_eq!(a.loads.to_vec(), b.loads.to_vec(), "{tag}");
        assert_eq!(a.loads.as_slice(), a.loads.as_slice(), "{tag}: twice");
    }
}

#[test]
fn faithful_round_runs_stay_dense_born() {
    let cfg = RunConfig::new(64, 64).with_engine(Engine::Faithful);
    for (tag, proto) in round_protocols() {
        let out = run_protocol(proto.as_ref(), &cfg, 5);
        assert!(out.loads.is_materialized(), "{tag}: faithful is dense-born");
        out.validate();
    }
}
